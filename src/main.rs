//! `healers` — the command-line front end to the HEALERS pipeline.
//!
//! ```text
//! healers analyze <function>...        print generated declarations (Figure 2 XML)
//! healers wrap [--out FILE]            emit the C wrapper library for all 86 targets
//! healers ballista [--mode M] [--cap N]  run the Figure 6 evaluation (M: unwrapped|full|semi|all)
//! healers extract                      run the §3 prototype-extraction statistics
//! healers tour <function>...           show discovered robust argument types
//! ```

use std::process::ExitCode;

use healers::ballista::{ballista_targets, Ballista, Mode};
use healers::core::{analyze, decls_to_xml, emit_checks_header, emit_wrapper_source};
use healers::corpus::{generate::CorpusConfig, pipeline::recover_all};
use healers::inject::FaultInjector;
use healers::libc::Libc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  healers analyze <function>...\n  healers wrap [--out FILE]\n  \
         healers ballista [--mode unwrapped|full|semi|all] [--cap N]\n  healers extract\n  \
         healers tour <function>..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "analyze" => cmd_analyze(&args[1..]),
        "wrap" => cmd_wrap(&args[1..]),
        "ballista" => cmd_ballista(&args[1..]),
        "extract" => cmd_extract(),
        "tour" => cmd_tour(&args[1..]),
        _ => usage(),
    }
}

fn cmd_analyze(functions: &[String]) -> ExitCode {
    if functions.is_empty() {
        eprintln!("analyze: name at least one function");
        return ExitCode::from(2);
    }
    let libc = Libc::standard();
    for f in functions {
        if libc.get(f).is_none() {
            eprintln!("analyze: {f} is not exported by the library");
            return ExitCode::FAILURE;
        }
    }
    let names: Vec<&str> = functions.iter().map(|s| s.as_str()).collect();
    let decls = analyze(&libc, &names);
    print!("{}", decls_to_xml(&decls));
    ExitCode::SUCCESS
}

fn cmd_wrap(rest: &[String]) -> ExitCode {
    let out = match rest {
        [] => None,
        [flag, path] if flag == "--out" => Some(path.clone()),
        _ => return usage(),
    };
    let libc = Libc::standard();
    eprintln!("analyzing {} functions…", ballista_targets().len());
    let decls = analyze(&libc, &ballista_targets());
    let source = emit_wrapper_source(&decls);
    let header = emit_checks_header(&decls);
    match out {
        Some(path) => {
            let header_path = format!("{path}.checks.h");
            if let Err(e) = std::fs::write(&path, &source) {
                eprintln!("wrap: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(&header_path, &header) {
                eprintln!("wrap: cannot write {header_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} lines to {path} and {} lines to {header_path}",
                source.lines().count(),
                header.lines().count()
            );
        }
        None => {
            print!("{header}");
            print!("{source}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_ballista(rest: &[String]) -> ExitCode {
    let mut mode = "all".to_string();
    let mut cap = 180usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => match it.next() {
                Some(m) => mode = m.clone(),
                None => return usage(),
            },
            "--cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(c) => cap = c,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let modes: Vec<Mode> = match mode.as_str() {
        "unwrapped" => vec![Mode::Unwrapped],
        "full" => vec![Mode::FullAuto],
        "semi" => vec![Mode::SemiAuto],
        "all" => vec![Mode::Unwrapped, Mode::FullAuto, Mode::SemiAuto],
        other => {
            eprintln!("ballista: unknown mode {other:?}");
            return ExitCode::from(2);
        }
    };
    let ballista = Ballista::new().with_cap(cap);
    let libc = Libc::standard();
    eprintln!("analyzing 86 functions…");
    let decls = ballista.analyze_targets(&libc);
    for m in modes {
        let report = ballista.run_with_decls(&libc, m, decls.clone());
        println!("{}", report.render());
        let failing = report.functions_with_failures();
        if !failing.is_empty() {
            println!("    still failing: {}", failing.join(", "));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_extract() -> ExitCode {
    let corpus = CorpusConfig::default().generate();
    let report = recover_all(&corpus);
    println!(
        "symbols {} | internal {:.1}% | man-page coverage {:.1}% | wrong headers {:.1}% | found {:.1}%",
        corpus.symbols.symbols.len(),
        100.0 * report.internal_fraction(),
        100.0 * report.manpage_coverage(),
        100.0 * report.manpage_wrong_headers_fraction(),
        100.0 * report.found_fraction(),
    );
    ExitCode::SUCCESS
}

fn cmd_tour(functions: &[String]) -> ExitCode {
    let libc = Libc::standard();
    let names: Vec<String> = if functions.is_empty() {
        ballista_targets().iter().map(|s| s.to_string()).collect()
    } else {
        functions.to_vec()
    };
    for name in names {
        let Some(injector) = FaultInjector::new(&libc, &name) else {
            eprintln!("tour: {name} is not exported");
            return ExitCode::FAILURE;
        };
        let report = injector.run();
        let types: Vec<String> = report
            .args
            .iter()
            .map(|a| a.robust.robust.notation())
            .collect();
        println!(
            "{:<14} {:<7} ⟨{}⟩",
            report.function,
            if report.safe { "safe" } else { "unsafe" },
            types.join(", ")
        );
    }
    ExitCode::SUCCESS
}
