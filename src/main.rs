//! `healers` — the command-line front end to the HEALERS pipeline.
//!
//! ```text
//! healers [--seed N] analyze <function>...   print generated declarations (Figure 2 XML)
//! healers [--seed N] wrap [--out FILE] [--on-violation M]  emit the C wrapper library for all 86 targets
//! healers [--seed N] ballista [--mode M] [--cap N]  run the Figure 6 evaluation
//! healers [--seed N] campaign [--jobs N] [--cache DIR] [--journal FILE] [--trace FILE]
//!                             [--mode M] [--cap N] [--out FILE] [--progress] [<function>...]
//!                                            parallel orchestrated analysis/evaluation
//! healers [--seed N] report [--mode M] [--cap N] [--jobs N] [--json] [--timings]
//!                           [<function>...]  deterministic telemetry report of one evaluation
//! healers [--seed N] fuzz run [--budget N] [--jobs N] [--max-len N] [--mode full|semi] [--threads]
//!                             [--journal FILE] [--trace FILE] [--pins DIR] [<function>...]
//!                                            coverage-guided API-sequence fuzzing
//! healers fuzz replay [--flight-dump FILE] <file>...
//!                                            replay pinned regression tests
//! healers fuzz shrink <file> [--out FILE]    shrink a seed file's first finding
//! healers explain <function>...              replay a declaration's lattice walk with
//!                                            per-case fault provenance
//! healers serve daemon --socket PATH [--workers N] [--queue N] [--cache DIR] [--repair-hints] [<function>...]
//!                                            long-lived hardening-as-a-service daemon
//! healers serve exec --script FILE [--workers N] [--raw-out FILE] [--cache DIR] [--repair-hints] [<function>...]
//!                                            replay a request script against an in-process daemon
//! healers serve send --socket PATH --script FILE [--raw-out FILE]
//!                                            replay a request script against a running daemon
//! healers serve stats --socket PATH [--prom | --deterministic] [--timings] [--watch]
//!                                            scrape a running daemon's live stats
//! healers bench serve [--fast] [--clients N] [--workers N] [--frames N] [--batch N]
//!                     [--json FILE] [--baseline FILE]
//!                                            serve-daemon load bench with regression gate
//! healers extract                            run the §3 prototype-extraction statistics
//! healers tour <function>...                 show discovered robust argument types
//! healers help                               this listing
//! ```
//!
//! Every subcommand returns `Result<(), healers::Error>`; [`main`] is
//! the single place errors become process exit codes (usage errors
//! exit 2, runtime failures exit 1). Mode strings are parsed once,
//! through [`Mode`]'s `FromStr` — the same tokens the bench binaries
//! accept.

use std::path::PathBuf;
use std::process::ExitCode;

use healers::ballista::{ballista_targets, Ballista, Mode};
use healers::campaign::json::JsonObject;
use healers::campaign::{Campaign, CampaignConfig, Journal};
use healers::core::{
    analyze, decls_to_xml, emit_checks_header, emit_wrapper_source_as, ViolationAction,
    WrapperStats,
};
use healers::corpus::{generate::CorpusConfig, pipeline::recover_all};
use healers::fuzz::{FuzzConfig, FuzzEvent, Pin, PinMode};
use healers::inject::FaultInjector;
use healers::libc::Libc;
use healers::typesys::{robust_type_traced, SelectionCriterion};
use healers::Error;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  healers [--seed N] analyze <function>...\n  \
         healers [--seed N] wrap [--out FILE] [--on-violation abort|error|repair]\n  \
         healers [--seed N] ballista [--mode unwrapped|full|semi|all] [--cap N]\n  \
         \x20                        [--on-violation abort|error|repair]\n  \
         healers [--seed N] campaign [--jobs N] [--cache DIR] [--journal FILE]\n  \
         \x20                        [--trace FILE] [--mode decls|unwrapped|full|semi|all]\n  \
         \x20                        [--cap N] [--out FILE] [--progress]\n  \
         \x20                        [--on-violation abort|error|repair] [<function>...]\n  \
         healers [--seed N] report [--mode unwrapped|full|semi] [--cap N] [--jobs N]\n  \
         \x20                      [--json] [--timings]\n  \
         \x20                      [--on-violation abort|error|repair] [<function>...]\n  \
         healers [--seed N] fuzz run [--budget N] [--jobs N] [--max-len N]\n  \
         \x20                        [--mode full|semi] [--threads] [--journal FILE]\n  \
         \x20                        [--trace FILE] [--pins DIR]\n  \
         \x20                        [--on-violation abort|error|repair] [<function>...]\n  \
         healers fuzz replay [--flight-dump FILE] <file>...\n  \
         healers fuzz shrink <file> [--out FILE] [--mode full|semi]\n  \
         \x20                [--on-violation abort|error|repair]\n  \
         healers explain <function>...\n  \
         healers serve daemon --socket PATH [--workers N] [--queue N] [--cache DIR] [--repair-hints] [<function>...]\n  \
         healers serve exec --script FILE [--workers N] [--raw-out FILE] [--cache DIR] [--repair-hints] [<function>...]\n  \
         healers serve send --socket PATH --script FILE [--raw-out FILE]\n  \
         healers serve stats --socket PATH [--prom | --deterministic] [--timings] [--watch]\n  \
         healers bench serve [--fast] [--clients N] [--workers N] [--frames N] [--batch N]\n  \
         \x20                  [--json FILE] [--baseline FILE]\n  \
         healers extract\n  \
         healers tour <function>...\n  \
         healers help"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(Error::Usage) => usage(),
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(err.exit_code())
        }
    }
}

fn run() -> Result<(), Error> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Global flags precede the subcommand.
    let mut seed: Option<u64> = None;
    while args.first().is_some_and(|a| a.starts_with("--")) {
        match args[0].as_str() {
            "--seed" => {
                let value = args
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or(Error::Usage)?;
                seed = Some(value);
                args.drain(..2);
            }
            _ => return Err(Error::Usage),
        }
    }

    let command = args.first().ok_or(Error::Usage)?;
    match command.as_str() {
        "analyze" => cmd_analyze(&args[1..]),
        "wrap" => cmd_wrap(&args[1..]),
        "ballista" => cmd_ballista(&args[1..], seed),
        "campaign" => cmd_campaign(&args[1..], seed),
        "report" => cmd_report(&args[1..], seed),
        "fuzz" => cmd_fuzz(&args[1..], seed),
        "explain" => cmd_explain(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "extract" => cmd_extract(),
        "tour" => cmd_tour(&args[1..]),
        _ => Err(Error::Usage), // includes `help`: print the listing, exit 2
    }
}

/// Parse a `--mode` token into the list of modes to run: `all`
/// expands to every mode in Figure 6 order, anything else must be a
/// single [`Mode`] token.
fn parse_modes(command: &'static str, token: &str) -> Result<Vec<Mode>, Error> {
    if token == "all" {
        return Ok(Mode::ALL.to_vec());
    }
    token
        .parse::<Mode>()
        .map(|m| vec![m])
        .map_err(|e| Error::BadArgument(format!("{command}: {e}")))
}

/// Parse an `--on-violation` token into a [`ViolationAction`]. Every
/// subcommand that takes the flag funnels through here so the token
/// set and the error message stay identical across the CLI.
fn parse_action(command: &'static str, token: &str) -> Result<ViolationAction, Error> {
    token
        .parse::<ViolationAction>()
        .map_err(|e| Error::BadArgument(format!("{command}: {e}")))
}

/// Reject any function name the library does not export, with the
/// historic `cmd: name is not exported by the library` message.
fn require_exported(command: &'static str, libc: &Libc, names: &[String]) -> Result<(), Error> {
    for f in names {
        if libc.get(f).is_none() {
            return Err(Error::NotExported {
                command,
                function: f.clone(),
            });
        }
    }
    Ok(())
}

fn cmd_analyze(functions: &[String]) -> Result<(), Error> {
    if functions.iter().any(|a| a.starts_with("--")) {
        return Err(Error::Usage);
    }
    if functions.is_empty() {
        return Err(Error::BadArgument(
            "analyze: name at least one function".into(),
        ));
    }
    let libc = Libc::standard();
    require_exported("analyze", &libc, functions)?;
    let names: Vec<&str> = functions.iter().map(|s| s.as_str()).collect();
    let decls = analyze(&libc, &names);
    print!("{}", decls_to_xml(&decls));
    Ok(())
}

fn cmd_wrap(rest: &[String]) -> Result<(), Error> {
    let mut out: Option<String> = None;
    let mut action = ViolationAction::ReturnError;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or(Error::Usage)?.clone()),
            "--on-violation" => action = parse_action("wrap", it.next().ok_or(Error::Usage)?)?,
            _ => return Err(Error::Usage),
        }
    }
    let libc = Libc::standard();
    eprintln!("analyzing {} functions…", ballista_targets().len());
    let decls = analyze(&libc, &ballista_targets());
    let source = emit_wrapper_source_as(&decls, action);
    let header = emit_checks_header(&decls);
    match out {
        Some(path) => {
            let header_path = format!("{path}.checks.h");
            std::fs::write(&path, &source)
                .map_err(|e| Error::io(format!("wrap: cannot write {path}"), e))?;
            std::fs::write(&header_path, &header)
                .map_err(|e| Error::io(format!("wrap: cannot write {header_path}"), e))?;
            eprintln!(
                "wrote {} lines to {path} and {} lines to {header_path}",
                source.lines().count(),
                header.lines().count()
            );
        }
        None => {
            print!("{header}");
            print!("{source}");
        }
    }
    Ok(())
}

fn cmd_ballista(rest: &[String], seed: Option<u64>) -> Result<(), Error> {
    let mut mode = "all".to_string();
    let mut cap = 180usize;
    let mut action: Option<ViolationAction> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => mode = it.next().ok_or(Error::Usage)?.clone(),
            "--cap" => {
                cap = it.next().and_then(|v| v.parse().ok()).ok_or(Error::Usage)?;
            }
            "--on-violation" => {
                action = Some(parse_action("ballista", it.next().ok_or(Error::Usage)?)?);
            }
            _ => return Err(Error::Usage),
        }
    }
    let modes = parse_modes("ballista", &mode)?;
    let mut ballista = Ballista::new().with_cap(cap);
    if let Some(action) = action {
        ballista = ballista.with_action(action);
    }
    if let Some(seed) = seed {
        ballista = ballista.with_seed(seed);
    }
    let libc = Libc::standard();
    eprintln!("analyzing 86 functions…");
    let decls = ballista.analyze_targets(&libc);
    for m in modes {
        let report = ballista.run_with_decls(&libc, m, decls.clone());
        println!("{}", report.render());
        let failing = report.functions_with_failures();
        if !failing.is_empty() {
            println!("    still failing: {}", failing.join(", "));
        }
    }
    Ok(())
}

fn cmd_campaign(rest: &[String], seed: Option<u64>) -> Result<(), Error> {
    let mut jobs = 1usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut mode = "decls".to_string();
    let mut cap = 180usize;
    let mut out: Option<PathBuf> = None;
    let mut progress = false;
    let mut action: Option<ViolationAction> = None;
    let mut functions: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(j) if j >= 1 => jobs = j,
                _ => return Err(Error::Usage),
            },
            "--cache" => cache_dir = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--journal" => journal_path = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--trace" => trace_path = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--mode" => mode = it.next().ok_or(Error::Usage)?.clone(),
            "--cap" => {
                cap = it.next().and_then(|v| v.parse().ok()).ok_or(Error::Usage)?;
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--progress" => progress = true,
            "--on-violation" => {
                action = Some(parse_action("campaign", it.next().ok_or(Error::Usage)?)?);
            }
            flag if flag.starts_with("--") => return Err(Error::Usage),
            name => functions.push(name.to_string()),
        }
    }
    // `decls` (analysis only, XML out) is a campaign-specific pseudo
    // mode on top of the shared Mode tokens.
    let modes: Vec<Mode> = if mode == "decls" {
        Vec::new()
    } else {
        parse_modes("campaign", &mode)?
    };

    let libc = Libc::standard();
    let names: Vec<String> = if functions.is_empty() {
        ballista_targets().iter().map(|s| s.to_string()).collect()
    } else {
        functions
    };
    require_exported("campaign", &libc, &names)?;
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();

    // The `--progress` heartbeat: a monitor thread samples the
    // process-global metrics registry and the flight recorder every
    // 500 ms and reports on stderr — workers never synchronize with
    // it, so the campaign output stays byte-identical with it on.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let monitor = progress.then(|| {
        let stop = std::sync::Arc::clone(&stop);
        let total = names.len() as u64;
        std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            let registry = healers::trace::metrics::global();
            let heartbeat = |label: &str| {
                eprintln!(
                    "{label}: analyzed {}/{total} | evaluated {} | faults {} | flight {}",
                    registry.counter("campaign_analyzed_total").get(),
                    registry.counter("campaign_evaluated_total").get(),
                    registry.counter("campaign_faults_total").get(),
                    healers::trace::recorder::flight().len(),
                );
            };
            while !stop.load(Ordering::Relaxed) {
                heartbeat("progress");
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
            heartbeat("progress final");
        })
    });

    let journaling = journal_path.is_some();
    let tracing = trace_path.clone();
    let campaign = Campaign::new(&CampaignConfig {
        jobs,
        cache_dir,
        journal_path,
        trace_path,
    })
    .map_err(|e| Error::io("campaign", e))?;

    // The declarations feed both the XML output and the wrapped
    // evaluation modes; a pure-unwrapped run skips injection entirely.
    let needs_decls = mode == "decls" || modes.iter().any(|m| !matches!(m, Mode::Unwrapped));
    let mut decls = Vec::new();
    if needs_decls {
        let (d, metrics) = campaign
            .analyze(&libc, &name_refs)
            .map_err(|e| Error::io("campaign: cache write failed", e))?;
        eprintln!("{metrics}");
        decls = d;
    }
    if mode == "decls" {
        let xml = decls_to_xml(&decls);
        match &out {
            Some(path) => {
                std::fs::write(path, &xml).map_err(|e| {
                    Error::io(format!("campaign: cannot write {}", path.display()), e)
                })?;
            }
            None => print!("{xml}"),
        }
    }

    let mut ballista = Ballista::new().with_functions(&name_refs).with_cap(cap);
    if let Some(seed) = seed {
        ballista = ballista.with_seed(seed);
    }
    if let Some(action) = action {
        ballista = ballista.with_action(action);
    }
    for m in modes {
        let (report, metrics) = campaign.evaluate(&libc, &ballista, m, decls.clone());
        println!("{}", report.render());
        eprintln!("{metrics}");
    }

    if let Some(handle) = monitor {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }

    let lines = campaign
        .finish()
        .map_err(|e| Error::io("campaign: journal write failed", e))?;
    if journaling {
        eprintln!("journal: {lines} events");
    }
    if let Some(path) = tracing {
        eprintln!("trace: wrote {}", path.display());
    }
    Ok(())
}

/// `healers report` — one evaluation run rendered as a telemetry
/// report. The default output is **deterministic**: identical seeds
/// produce byte-identical output regardless of `--jobs`, because only
/// logical counters are printed (test outcomes, check-kind tallies,
/// wrapper counters) — never wall-clock data. `--timings` opts into
/// the gated latency histograms (p50/p99 per function), which are
/// explicitly excluded from that guarantee.
fn cmd_report(rest: &[String], seed: Option<u64>) -> Result<(), Error> {
    let mut mode = "full".to_string();
    let mut cap = 40usize;
    let mut jobs = 1usize;
    let mut json = false;
    let mut timings = false;
    let mut action: Option<ViolationAction> = None;
    let mut functions: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => mode = it.next().ok_or(Error::Usage)?.clone(),
            "--cap" => {
                cap = it.next().and_then(|v| v.parse().ok()).ok_or(Error::Usage)?;
            }
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(j) if j >= 1 => jobs = j,
                _ => return Err(Error::Usage),
            },
            "--json" => json = true,
            "--timings" => timings = true,
            "--on-violation" => {
                action = Some(parse_action("report", it.next().ok_or(Error::Usage)?)?);
            }
            flag if flag.starts_with("--") => return Err(Error::Usage),
            name => functions.push(name.to_string()),
        }
    }
    let mode: Mode = mode
        .parse()
        .map_err(|e| Error::BadArgument(format!("report: {e}")))?;
    if timings {
        healers::trace::set_enabled(true);
    }

    let libc = Libc::standard();
    let names: Vec<String> = if functions.is_empty() {
        ballista_targets().iter().map(|s| s.to_string()).collect()
    } else {
        functions
    };
    require_exported("report", &libc, &names)?;
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();

    let campaign = Campaign::new(&CampaignConfig {
        jobs,
        ..CampaignConfig::default()
    })
    .map_err(|e| Error::io("report", e))?;
    let decls = if matches!(mode, Mode::Unwrapped) {
        Vec::new()
    } else {
        analyze(&libc, &name_refs)
    };
    let mut ballista = Ballista::new().with_functions(&name_refs).with_cap(cap);
    if let Some(seed) = seed {
        ballista = ballista.with_seed(seed);
    }
    if let Some(action) = action {
        ballista = ballista.with_action(action);
    }
    let report_seed = ballista.seed();
    let (report, _metrics, stats) = campaign.evaluate_traced(&libc, &ballista, mode, decls);
    campaign.finish().map_err(|e| Error::io("report", e))?;

    if json {
        print!(
            "{}",
            render_report_json(&report, &stats, report_seed, timings)
        );
    } else {
        print!(
            "{}",
            render_report_text(&report, &stats, report_seed, timings)
        );
    }
    Ok(())
}

fn render_report_text(
    report: &healers::ballista::BallistaReport,
    stats: &WrapperStats,
    seed: u64,
    timings: bool,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "healers report — {} (seed {seed})", report.label);
    let _ = writeln!(out, "{}", report.render());
    let failing = report.functions_with_failures();
    if !failing.is_empty() {
        let _ = writeln!(out, "  still failing: {}", failing.join(", "));
    }
    let _ = writeln!(
        out,
        "wrapper: calls={} wrapped={} checks={} violations={} repairs={} cache-hits={}",
        stats.calls,
        stats.wrapped_calls,
        stats.checks,
        stats.violations,
        stats.repairs,
        stats.check_cache_hits
    );
    let _ = writeln!(out, "checks by claim kind:");
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>8} {:>8}",
        "kind", "passed", "failed", "repaired"
    );
    for (kind, passed, failed, repaired) in stats.check_outcomes.iter() {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>8} {:>8}",
            kind.label(),
            passed,
            failed,
            repaired
        );
    }
    if timings {
        let _ = writeln!(
            out,
            "latency per function (wall clock; excluded from the determinism guarantee):"
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>8} {:>10} {:>10}",
            "function", "calls", "p50(ns)", "p99(ns)"
        );
        for (name, t) in &stats.per_function {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>10} {:>10}",
                name,
                t.calls,
                t.latency_ns.percentile(50.0),
                t.latency_ns.percentile(99.0)
            );
        }
    }
    out
}

fn render_report_json(
    report: &healers::ballista::BallistaReport,
    stats: &WrapperStats,
    seed: u64,
    timings: bool,
) -> String {
    let totals = report.totals();
    let wrapper = JsonObject::new()
        .u64("calls", stats.calls)
        .u64("wrapped_calls", stats.wrapped_calls)
        .u64("checks", stats.checks)
        .u64("violations", stats.violations)
        .u64("repairs", stats.repairs)
        .u64("cache_hits", stats.check_cache_hits)
        .finish();
    let mut checks = JsonObject::new();
    for (kind, passed, failed, repaired) in stats.check_outcomes.iter() {
        let entry = JsonObject::new()
            .u64("passed", passed)
            .u64("failed", failed)
            .u64("repaired", repaired)
            .finish();
        checks = checks.raw(kind.label(), &entry);
    }
    let mut doc = JsonObject::new()
        .str("mode", &report.label)
        .u64("seed", seed)
        .u64("tests", totals.tests as u64)
        .u64("crashes", totals.crashes as u64)
        .u64("aborts", totals.aborts as u64)
        .u64("hangs", totals.hangs as u64)
        .u64("errno_set", totals.errno_set as u64)
        .u64("silent", totals.silent as u64)
        .raw("wrapper", &wrapper)
        .raw("checks", &checks.finish());
    if timings {
        let mut latency = JsonObject::new();
        for (name, t) in &stats.per_function {
            let entry = JsonObject::new()
                .u64("calls", t.calls)
                .u64("p50_ns", t.latency_ns.percentile(50.0))
                .u64("p99_ns", t.latency_ns.percentile(99.0))
                .finish();
            latency = latency.raw(name, &entry);
        }
        doc = doc.raw("latency", &latency.finish());
    }
    let mut text = doc.finish();
    text.push('\n');
    text
}

/// `healers fuzz` — coverage-guided API-sequence fuzzing with
/// automatic shrinking and crash-to-regression-test pinning. The
/// default subcommand is `run`; `replay` re-executes committed pins
/// and `shrink` minimizes a seed file's first finding.
fn cmd_fuzz(rest: &[String], seed: Option<u64>) -> Result<(), Error> {
    match rest.first().map(String::as_str) {
        Some("replay") => cmd_fuzz_replay(&rest[1..]),
        Some("shrink") => cmd_fuzz_shrink(&rest[1..]),
        Some("run") => cmd_fuzz_run(&rest[1..], seed),
        _ => cmd_fuzz_run(rest, seed),
    }
}

/// Parse a `--mode full|semi` token for the fuzzer's wrapper
/// configuration.
fn parse_pin_mode(token: &str) -> Result<PinMode, Error> {
    match token {
        "full" => Ok(PinMode::Full),
        "semi" => Ok(PinMode::Semi),
        other => Err(Error::BadArgument(format!(
            "fuzz: unknown mode {other:?} (expected full or semi)"
        ))),
    }
}

fn cmd_fuzz_run(rest: &[String], seed: Option<u64>) -> Result<(), Error> {
    let mut config = FuzzConfig::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    let mut journal_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut pins_dir: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // `--seed` is accepted here too (not just globally) so a
            // fuzz invocation is self-contained in scripts and CI.
            "--seed" => {
                config.seed = it.next().and_then(|v| v.parse().ok()).ok_or(Error::Usage)?;
            }
            "--budget" => {
                config.budget = it.next().and_then(|v| v.parse().ok()).ok_or(Error::Usage)?;
            }
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(j) if j >= 1 => config.jobs = j,
                _ => return Err(Error::Usage),
            },
            "--max-len" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.max_len = n,
                _ => return Err(Error::Usage),
            },
            "--mode" => config.mode = parse_pin_mode(it.next().ok_or(Error::Usage)?)?,
            "--on-violation" => {
                config.action = parse_action("fuzz", it.next().ok_or(Error::Usage)?)?;
            }
            "--threads" => config.threads = true,
            "--journal" => journal_path = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--trace" => trace_path = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--pins" => pins_dir = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            flag if flag.starts_with("--") => return Err(Error::Usage),
            name => config.functions.push(name.to_string()),
        }
    }
    let libc = Libc::standard();
    require_exported("fuzz", &libc, &config.functions)?;
    let pool_size = if config.functions.is_empty() {
        ballista_targets().len()
    } else {
        config.functions.len()
    };

    let sink: Option<Box<dyn std::io::Write + Send>> = match &journal_path {
        Some(path) => Some(Box::new(std::fs::File::create(path).map_err(|e| {
            Error::io(format!("fuzz: cannot write {}", path.display()), e)
        })?)),
        None => None,
    };
    let mut journal: Journal<FuzzEvent> = match (sink, trace_path.is_some()) {
        (None, false) => Journal::disabled(),
        (sink, true) => Journal::start_recording(sink),
        (Some(sink), false) => Journal::start(sink),
    };

    let outcome = healers::fuzz::run(&libc, &config, &journal.sender());
    let tail = journal
        .shutdown()
        .map_err(|e| Error::io("fuzz: journal write failed", e))?;
    if journal_path.is_some() {
        eprintln!("journal: {} events", tail.lines);
    }
    if let Some(path) = &trace_path {
        let doc = healers::fuzz::chrome_trace(&tail.events).render();
        std::fs::write(path, doc)
            .map_err(|e| Error::io(format!("fuzz: cannot write {}", path.display()), e))?;
        eprintln!("trace: wrote {}", path.display());
    }

    // The summary is part of the determinism guarantee: only logical
    // counters, in BTree order — byte-identical for any --jobs value.
    println!(
        "healers fuzz — seed {} budget {} mode {}{} pool {pool_size}",
        config.seed,
        config.budget,
        match config.mode {
            PinMode::Full => "full",
            PinMode::Semi => "semi",
        },
        if config.threads { " threads" } else { "" }
    );
    println!("coverage: {} keys", outcome.coverage.len());
    println!("corpus: {} sequences", outcome.corpus_len);
    println!("findings: {}", outcome.findings.len());
    for report in &outcome.findings {
        println!(
            "  {}: {} -> {} steps ({} probes)",
            report.key,
            report.original.len(),
            report.shrunk.len(),
            report.stats.probes
        );
    }
    if let Some(dir) = &pins_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("fuzz: cannot create {}", dir.display()), e))?;
        for report in &outcome.findings {
            let pin_path = dir.join(report.pin.file_name());
            std::fs::write(&pin_path, report.pin.render())
                .map_err(|e| Error::io(format!("fuzz: cannot write {}", pin_path.display()), e))?;
            let seed_path = dir.join(format!("{}.seed", report.key));
            std::fs::write(&seed_path, report.shrunk.render())
                .map_err(|e| Error::io(format!("fuzz: cannot write {}", seed_path.display()), e))?;
        }
        eprintln!(
            "pins: wrote {} file(s) to {}",
            2 * outcome.findings.len(),
            dir.display()
        );
    }
    Ok(())
}

/// The functions a sequence calls, sorted and deduplicated, each
/// checked against the library's export list.
fn fuzz_decls_for(
    command: &'static str,
    libc: &Libc,
    seq: &healers::fuzz::Sequence,
) -> Result<Vec<healers::core::FunctionDecl>, Error> {
    let mut functions: Vec<String> = seq.steps.iter().map(|s| s.function.clone()).collect();
    functions.sort_unstable();
    functions.dedup();
    require_exported(command, libc, &functions)?;
    let refs: Vec<&str> = functions.iter().map(String::as_str).collect();
    Ok(analyze(libc, &refs))
}

fn cmd_fuzz_replay(rest: &[String]) -> Result<(), Error> {
    let mut flight_dump: Option<PathBuf> = None;
    let mut files: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flight-dump" => flight_dump = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            flag if flag.starts_with("--") => return Err(Error::Usage),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return Err(Error::BadArgument(
            "fuzz replay: name at least one pin file".into(),
        ));
    }
    let libc = Libc::standard();
    let mut failures = 0usize;
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| Error::io(format!("fuzz replay: cannot read {file}"), e))?;
        let pin = Pin::parse(&text)
            .map_err(|e| Error::BadArgument(format!("fuzz replay: {file}: {e}")))?;
        let decls = fuzz_decls_for("fuzz replay", &libc, &pin.seq)?;
        match pin.replay(&libc, &decls) {
            Ok(()) => println!("replay {file}: ok ({})", pin.finding),
            Err(e) => {
                failures += 1;
                println!("replay {file}: FAILED\n{e}");
            }
        }
    }
    // Dump before the divergence check: the flight recorder is most
    // valuable exactly when a replay crashed or diverged.
    if let Some(path) = &flight_dump {
        let flight = healers::trace::recorder::flight();
        std::fs::write(path, flight.to_jsonl())
            .map_err(|e| Error::io(format!("fuzz replay: cannot write {}", path.display()), e))?;
        eprintln!(
            "flight recorder: wrote {} event(s) to {}",
            flight.len(),
            path.display()
        );
    }
    if failures > 0 {
        return Err(Error::Msg(format!(
            "fuzz replay: {failures} pin(s) diverged"
        )));
    }
    Ok(())
}

fn cmd_fuzz_shrink(rest: &[String]) -> Result<(), Error> {
    let mut file: Option<&String> = None;
    let mut out: Option<PathBuf> = None;
    let mut mode = PinMode::Full;
    let mut action = ViolationAction::ReturnError;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--mode" => mode = parse_pin_mode(it.next().ok_or(Error::Usage)?)?,
            "--on-violation" => {
                action = parse_action("fuzz shrink", it.next().ok_or(Error::Usage)?)?;
            }
            flag if flag.starts_with("--") => return Err(Error::Usage),
            _ if file.is_none() => file = Some(arg),
            _ => return Err(Error::Usage),
        }
    }
    let file = file.ok_or(Error::BadArgument("fuzz shrink: name a seed file".into()))?;
    let text = std::fs::read_to_string(file)
        .map_err(|e| Error::io(format!("fuzz shrink: cannot read {file}"), e))?;
    let seq = healers::fuzz::Sequence::parse(&text)
        .map_err(|e| Error::BadArgument(format!("fuzz shrink: {file}: {e}")))?;
    let libc = Libc::standard();
    let decls = fuzz_decls_for("fuzz shrink", &libc, &seq)?;

    let execute_pair = |s: &healers::fuzz::Sequence| {
        let mut config = mode.config();
        config.action = action;
        let wrapped = healers::fuzz::execute(
            &libc,
            s,
            healers::fuzz::ExecMode::Wrapped {
                decls: &decls,
                config,
            },
        );
        let unwrapped = healers::fuzz::execute_unwrapped(&libc, s);
        (wrapped, unwrapped)
    };
    let (wrapped, unwrapped) = execute_pair(&seq);
    let findings = healers::fuzz::detect(&wrapped, &unwrapped);
    let Some(finding) = findings.first() else {
        return Err(Error::Msg(
            "fuzz shrink: the sequence exhibits no finding (no check violation, \
             wrapped crash, or divergence)"
                .into(),
        ));
    };
    let oracle = |s: &healers::fuzz::Sequence, f: &healers::fuzz::Finding| {
        let (w, u) = execute_pair(s);
        healers::fuzz::finding::reproduces(f, &w, &u)
    };
    let (shrunk, stats) = healers::fuzz::shrink(&seq, finding, &oracle);
    eprintln!(
        "shrink: {} — {} -> {} steps ({} probes)",
        finding.key(),
        seq.len(),
        shrunk.len(),
        stats.probes
    );
    let (wrapped, _) = execute_pair(&shrunk);
    let pin = Pin {
        finding: finding.key(),
        mode,
        action,
        seq: shrunk,
        expect: healers::fuzz::Expectation::from_result(&wrapped),
    };
    match &out {
        Some(path) => {
            std::fs::write(path, pin.render()).map_err(|e| {
                Error::io(format!("fuzz shrink: cannot write {}", path.display()), e)
            })?;
            eprintln!("shrink: wrote {}", path.display());
        }
        None => print!("{}", pin.render()),
    }
    Ok(())
}

/// `healers explain` — replay the fault-injection campaign for each
/// function and show *why* each argument got its robust type: the
/// lattice walk (must-admit set, crashing set, admissible candidates,
/// chosen type, and the boundary justification for every rejected
/// supertype) plus fault provenance for the crashing test cases (the
/// faulting page run and the heap block it is attributed to).
fn cmd_explain(functions: &[String]) -> Result<(), Error> {
    if functions.iter().any(|a| a.starts_with("--")) {
        return Err(Error::Usage);
    }
    if functions.is_empty() {
        return Err(Error::BadArgument(
            "explain: name at least one function".into(),
        ));
    }
    let libc = Libc::standard();
    for name in functions {
        let injector = FaultInjector::new(&libc, name).ok_or_else(|| Error::NotExported {
            command: "explain",
            function: name.clone(),
        })?;
        let report = injector.run();
        println!(
            "{} — {} ({} calls, {} adaptive retries)",
            report.function,
            if report.safe { "safe" } else { "unsafe" },
            report.calls,
            report.adaptive_retries
        );
        println!("  prototype: extern {};", report.proto);
        for (i, arg) in report.args.iter().enumerate() {
            let (robust, trace) = robust_type_traced(
                &arg.universe,
                &arg.observations,
                SelectionCriterion::SuccessfulReturns,
            );
            println!("  arg {i} ({}):", arg.generator);
            let notations = |ts: &[healers::typesys::TypeExpr]| {
                ts.iter()
                    .map(|t| t.notation())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("    must admit: [{}]", notations(&trace.must_admit));
            println!("    crashing:   [{}]", notations(&trace.crashing));
            println!(
                "    admissible: {} of {} candidates, best admits {} crashing type(s)",
                trace.admissible.len(),
                arg.universe.len(),
                trace.min_crashes
            );
            println!(
                "    robust type: {}{}",
                robust.robust.notation(),
                if robust.safe { " (safe)" } else { "" }
            );
            for (sup, crash) in &trace.boundary {
                println!(
                    "      ↳ {} rejected: would admit crashing {}",
                    sup.notation(),
                    crash.notation()
                );
            }
            let faults: Vec<_> = report
                .records
                .iter()
                .filter(|r| r.arg_index == Some(i))
                .filter_map(|r| r.provenance.as_ref().map(|site| (r, site)))
                .collect();
            for (r, site) in faults.iter().take(4) {
                println!("    fault [{}]: {site}", r.label);
            }
            if faults.len() > 4 {
                println!("    … and {} more faulting case(s)", faults.len() - 4);
            }
        }
    }
    // The flight recorder saw every resolved fault of the campaigns
    // above; its tail is the cross-function event timeline, printed
    // after the per-argument provenance so existing output stays a
    // prefix of the new output.
    let flight = healers::trace::recorder::flight();
    if !flight.is_empty() {
        println!(
            "flight recorder ({} of {} event(s) retained):",
            flight.len(),
            flight.recorded()
        );
        for e in flight.snapshot() {
            println!("  [{}] {} {} — {}", e.seq, e.kind, e.function, e.detail);
        }
    }
    Ok(())
}

/// `healers serve` — hardening-as-a-service. `daemon` binds a Unix
/// socket and serves until a `shutdown` request; `exec` replays a
/// request script against an in-process daemon (no socket, CI's
/// determinism workhorse); `send` replays a script against a running
/// daemon. All three build the wrapper plans once, up front — with
/// `--cache` pointing at a warm declaration cache the startup performs
/// zero injected calls.
fn cmd_serve(rest: &[String]) -> Result<(), Error> {
    match rest.first().map(String::as_str) {
        Some("daemon") => cmd_serve_daemon(&rest[1..]),
        Some("exec") => cmd_serve_exec(&rest[1..]),
        Some("send") => cmd_serve_send(&rest[1..]),
        Some("stats") => cmd_serve_stats(&rest[1..]),
        _ => Err(Error::Usage),
    }
}

/// Build the Arc-shared plan set for a serve invocation, reporting the
/// campaign metrics (cache hits, injected calls) on stderr.
fn build_serve_plans(
    functions: Vec<String>,
    cache_dir: Option<PathBuf>,
    jobs: usize,
    repair_hints: bool,
) -> Result<std::sync::Arc<healers::serve::ServePlans>, Error> {
    let libc = Libc::standard();
    let config = healers::serve::PlanConfig {
        functions,
        cache_dir,
        jobs,
        repair_hints,
    };
    let (plans, metrics) = healers::serve::ServePlans::build(&libc, &config)?;
    eprintln!("{metrics}");
    Ok(std::sync::Arc::new(plans))
}

fn cmd_serve_daemon(rest: &[String]) -> Result<(), Error> {
    let mut socket: Option<PathBuf> = None;
    let mut workers = 4usize;
    let mut queue = 16usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut repair_hints = false;
    let mut functions: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return Err(Error::Usage),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => queue = n,
                _ => return Err(Error::Usage),
            },
            "--cache" => cache_dir = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--repair-hints" => repair_hints = true,
            flag if flag.starts_with("--") => return Err(Error::Usage),
            name => functions.push(name.to_string()),
        }
    }
    let socket = socket
        .ok_or_else(|| Error::BadArgument("serve daemon: --socket PATH is required".into()))?;

    let plans = build_serve_plans(functions, cache_dir, workers, repair_hints)?;
    let listener = healers::serve::daemon::UnixSocketListener::bind(&socket)
        .map_err(|e| Error::io(format!("serve daemon: cannot bind {}", socket.display()), e))?;
    eprintln!(
        "serving {} function plan(s) on {} ({workers} worker(s), queue {queue})",
        plans.functions().len(),
        socket.display()
    );
    let daemon = healers::serve::Daemon::spawn(
        Box::new(listener),
        plans,
        healers::serve::DaemonConfig {
            workers,
            queue_depth: queue,
            limits: healers::serve::Limits::default(),
        },
    );
    let counters = daemon.counters();
    let result = daemon.join();
    let _ = std::fs::remove_file(&socket);
    result.map_err(|e| Error::io("serve daemon: accept loop failed", e))?;
    for (name, value) in counters.snapshot() {
        eprintln!("  {name:<16} {value}");
    }
    Ok(())
}

/// Replay `script` over `conn`, print the rendered replies, and
/// optionally dump the exact reply bytes (the determinism artifact).
fn replay_script(
    conn: &mut (impl std::io::Read + std::io::Write),
    script: &healers::serve::Script,
    raw_out: Option<&PathBuf>,
) -> Result<(), Error> {
    let replies = healers::serve::run_script(conn, script, &healers::serve::Limits::default())
        .map_err(|e| Error::Msg(e.to_string()))?;
    if let Some(path) = raw_out {
        std::fs::write(path, &replies.raw)
            .map_err(|e| Error::io(format!("serve: cannot write {}", path.display()), e))?;
        eprintln!(
            "raw replies: wrote {} byte(s) to {}",
            replies.raw.len(),
            path.display()
        );
    }
    print!("{}", healers::serve::client::render(&replies.frames));
    Ok(())
}

fn cmd_serve_exec(rest: &[String]) -> Result<(), Error> {
    let mut script_path: Option<PathBuf> = None;
    let mut workers = 4usize;
    let mut raw_out: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut repair_hints = false;
    let mut functions: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--script" => script_path = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return Err(Error::Usage),
            },
            "--raw-out" => raw_out = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--cache" => cache_dir = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--repair-hints" => repair_hints = true,
            flag if flag.starts_with("--") => return Err(Error::Usage),
            name => functions.push(name.to_string()),
        }
    }
    let script_path = script_path
        .ok_or_else(|| Error::BadArgument("serve exec: --script FILE is required".into()))?;
    let text = std::fs::read_to_string(&script_path).map_err(|e| {
        Error::io(
            format!("serve exec: cannot read {}", script_path.display()),
            e,
        )
    })?;
    let script = healers::serve::Script::parse(&text)
        .map_err(|e| Error::BadArgument(format!("serve exec: {e}")))?;

    let plans = build_serve_plans(functions, cache_dir, workers, repair_hints)?;
    let (dial, listener) = healers::serve::daemon::PipeListener::new();
    let daemon = healers::serve::Daemon::spawn(
        Box::new(listener),
        plans,
        healers::serve::DaemonConfig {
            workers,
            queue_depth: workers + 1,
            limits: healers::serve::Limits::default(),
        },
    );
    let (mut local, remote) = healers::serve::duplex(64 * 1024);
    dial.send(remote)
        .map_err(|_| Error::Msg("serve exec: daemon accept loop died".into()))?;
    let result = replay_script(&mut local, &script, raw_out.as_ref());
    drop(local); // EOF ends the session even without a shutdown request
    drop(dial);
    daemon.trigger_shutdown();
    daemon
        .join()
        .map_err(|e| Error::io("serve exec: daemon failed", e))?;
    result
}

fn cmd_serve_send(rest: &[String]) -> Result<(), Error> {
    let mut socket: Option<PathBuf> = None;
    let mut script_path: Option<PathBuf> = None;
    let mut raw_out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--script" => script_path = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--raw-out" => raw_out = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            _ => return Err(Error::Usage),
        }
    }
    let socket =
        socket.ok_or_else(|| Error::BadArgument("serve send: --socket PATH is required".into()))?;
    let script_path = script_path
        .ok_or_else(|| Error::BadArgument("serve send: --script FILE is required".into()))?;
    let text = std::fs::read_to_string(&script_path).map_err(|e| {
        Error::io(
            format!("serve send: cannot read {}", script_path.display()),
            e,
        )
    })?;
    let script = healers::serve::Script::parse(&text)
        .map_err(|e| Error::BadArgument(format!("serve send: {e}")))?;
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).map_err(|e| {
        Error::io(
            format!("serve send: cannot connect to {}", socket.display()),
            e,
        )
    })?;
    replay_script(&mut stream, &script, raw_out.as_ref())
}

/// `healers serve stats` — scrape a running daemon's live stats over
/// its socket. The default view shows everything, including the
/// scheduling-dependent sections; `--deterministic` restricts the
/// output to the worker-count-invariant subset (what the CI stats-smoke
/// job byte-diffs) and `--prom` renders the Prometheus text exposition
/// format. `--timings` asks the daemon for its gated latency
/// percentiles; `--watch` re-polls every second on the same connection
/// until the daemon goes away.
fn cmd_serve_stats(rest: &[String]) -> Result<(), Error> {
    let mut socket: Option<PathBuf> = None;
    let mut prom = false;
    let mut deterministic = false;
    let mut timings = false;
    let mut watch = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--prom" => prom = true,
            "--deterministic" => deterministic = true,
            "--timings" => timings = true,
            "--watch" => watch = true,
            _ => return Err(Error::Usage),
        }
    }
    if prom && deterministic {
        return Err(Error::BadArgument(
            "serve stats: --prom and --deterministic are mutually exclusive".into(),
        ));
    }
    let socket = socket
        .ok_or_else(|| Error::BadArgument("serve stats: --socket PATH is required".into()))?;
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).map_err(|e| {
        Error::io(
            format!("serve stats: cannot connect to {}", socket.display()),
            e,
        )
    })?;
    let script = healers::serve::Script {
        frames: vec![vec![healers::serve::Request::Stats { timings }]],
    };
    loop {
        let replies =
            healers::serve::run_script(&mut stream, &script, &healers::serve::Limits::default())
                .map_err(|e| Error::Msg(format!("serve stats: {e}")))?;
        let Some(healers::serve::Response::Stats(s)) =
            replies.frames.first().and_then(|f| f.first())
        else {
            return Err(Error::Msg(
                "serve stats: the daemon did not return a stats reply".into(),
            ));
        };
        let text = if prom {
            healers::serve::client::render_stats_prometheus(s)
        } else if deterministic {
            healers::serve::client::render_stats_deterministic(s)
        } else {
            healers::serve::client::render_stats(s)
        };
        print!("{text}");
        if !watch {
            return Ok(());
        }
        println!();
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}

/// `healers bench serve` — the in-process load generator plus the
/// `BENCH_serve.json` regression gate: aggregate validate throughput
/// must clear the 1M requests/s floor and stay within 20 % of the
/// committed baseline.
fn cmd_bench(rest: &[String]) -> Result<(), Error> {
    if rest.first().map(String::as_str) != Some("serve") {
        return Err(Error::Usage);
    }
    let mut config = healers::serve::BenchConfig::default();
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => config = healers::serve::BenchConfig::fast(),
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.clients = n,
                _ => return Err(Error::Usage),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => return Err(Error::Usage),
            },
            "--frames" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.frames = n,
                _ => return Err(Error::Usage),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.batch = n,
                _ => return Err(Error::Usage),
            },
            "--json" => json_out = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            "--baseline" => baseline = Some(PathBuf::from(it.next().ok_or(Error::Usage)?)),
            _ => return Err(Error::Usage),
        }
    }

    let functions = healers::serve::bench::BENCH_FUNCTIONS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let plans = build_serve_plans(functions, None, 1, false)?;
    let report = healers::serve::bench::run(plans, &config);
    print!("{}", report.render());
    if let Some(path) = &json_out {
        std::fs::write(path, report.to_json())
            .map_err(|e| Error::io(format!("bench serve: cannot write {}", path.display()), e))?;
        eprintln!("json: wrote {}", path.display());
    }
    let baseline_doc =
        match &baseline {
            Some(path) => Some(std::fs::read_to_string(path).map_err(|e| {
                Error::io(format!("bench serve: cannot read {}", path.display()), e)
            })?),
            None => None,
        };
    match report.gate(1_000_000.0, baseline_doc.as_deref()) {
        Ok(summary) => {
            println!("OK: {}", summary.replace('\n', "; "));
            Ok(())
        }
        Err(why) => Err(Error::Msg(format!("bench serve: FAIL: {why}"))),
    }
}

fn cmd_extract() -> Result<(), Error> {
    let corpus = CorpusConfig::default().generate();
    let report = recover_all(&corpus);
    println!(
        "symbols {} | internal {:.1}% | man-page coverage {:.1}% | wrong headers {:.1}% | found {:.1}%",
        corpus.symbols.symbols.len(),
        100.0 * report.internal_fraction(),
        100.0 * report.manpage_coverage(),
        100.0 * report.manpage_wrong_headers_fraction(),
        100.0 * report.found_fraction(),
    );
    Ok(())
}

fn cmd_tour(functions: &[String]) -> Result<(), Error> {
    if functions.iter().any(|a| a.starts_with("--")) {
        return Err(Error::Usage);
    }
    let libc = Libc::standard();
    let names: Vec<String> = if functions.is_empty() {
        ballista_targets().iter().map(|s| s.to_string()).collect()
    } else {
        functions.to_vec()
    };
    for name in names {
        let injector = FaultInjector::new(&libc, &name).ok_or_else(|| Error::NotExported {
            command: "tour",
            function: name.clone(),
        })?;
        let report = injector.run();
        let types: Vec<String> = report
            .args
            .iter()
            .map(|a| a.robust.robust.notation())
            .collect();
        println!(
            "{:<14} {:<7} ⟨{}⟩",
            report.function,
            if report.safe { "safe" } else { "unsafe" },
            types.join(", ")
        );
    }
    Ok(())
}
