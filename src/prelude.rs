//! One-stop imports for driving the HEALERS pipeline.
//!
//! The facade crates are fine-grained; most programs want the same
//! dozen names. `use healers::prelude::*;` brings in everything needed
//! to analyze a library, build a wrapper, contain faulty calls, and
//! run a Ballista evaluation or a parallel campaign:
//!
//! ```
//! use healers::prelude::*;
//!
//! let libc = Libc::standard();
//! let decls = analyze(&libc, &["strlen"]);
//! let mut wrapper = WrapperBuilder::new()
//!     .decls(decls)
//!     .config(WrapperConfig::full_auto())
//!     .build();
//! let mut world = World::new();
//! let r = wrapper
//!     .call(&libc, &mut world, "strlen", &[SimValue::NULL])
//!     .unwrap();
//! assert_eq!(r, SimValue::Int(-1));
//! ```

pub use healers_ballista::{ballista_targets, Ballista, BallistaReport, Mode, ParseModeError};
pub use healers_campaign::{Campaign, CampaignConfig, CampaignMetrics};
pub use healers_core::{
    analyze, decls_from_xml, decls_to_xml, semi_auto_overrides, FunctionDecl,
    ParseViolationActionError, Repair, RobustnessWrapper, Verdict, ViolationAction, WrapperBuilder,
    WrapperConfig, WrapperStats,
};
pub use healers_inject::FaultInjector;
pub use healers_libc::{Libc, World};
pub use healers_simproc::{run_in_child, Containment, CowStats, SimValue, WorldSnapshot};

pub use crate::error::Error;
