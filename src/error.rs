//! The unified error type of the `healers` front end.
//!
//! Every subcommand returns `Result<(), Error>`; `main` turns the
//! error into its user-facing report and process exit code in exactly
//! one place. The variants encode the CLI's two failure classes:
//!
//! * **usage errors** (exit 2) — the invocation itself is malformed:
//!   an unknown flag, a missing flag value, an unparseable `--mode`;
//! * **runtime errors** (exit 1) — the invocation was well-formed but
//!   the work failed: a function the library does not export, or an
//!   I/O failure writing an artifact.

use std::fmt;

use healers_ballista::ParseModeError;

/// Everything that can go wrong in the `healers` CLI.
#[derive(Debug)]
pub enum Error {
    /// The invocation is malformed in a way best answered by the
    /// usage listing (unknown subcommand, unknown flag, missing flag
    /// value). Exit 2.
    Usage,
    /// A flag value failed to parse; the message names the flag and
    /// value. Exit 2.
    BadArgument(String),
    /// A named function is not exported by the simulated library.
    /// Exit 1.
    NotExported {
        /// The subcommand that rejected the name (for the `cmd: …`
        /// message prefix).
        command: &'static str,
        /// The offending function name.
        function: String,
    },
    /// An artifact could not be read or written. Exit 1.
    Io {
        /// What was being attempted, e.g. `cannot write figure6.xml`.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Any other runtime failure, already formatted. Exit 1.
    Msg(String),
}

impl Error {
    /// Shorthand for an [`Error::Io`] with a formatted context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// The process exit code this error maps to: 2 for usage errors,
    /// 1 for runtime failures — mirroring the original CLI behaviour.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Usage | Error::BadArgument(_) => 2,
            Error::NotExported { .. } | Error::Io { .. } | Error::Msg(_) => 1,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage => write!(f, "invalid usage"),
            Error::BadArgument(msg) => write!(f, "{msg}"),
            Error::NotExported { command, function } => {
                write!(f, "{command}: {function} is not exported by the library")
            }
            Error::Io { context, source } => write!(f, "{context}: {source}"),
            Error::Msg(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ParseModeError> for Error {
    fn from(e: ParseModeError) -> Self {
        Error::BadArgument(e.to_string())
    }
}

impl From<healers_campaign::CacheError> for Error {
    fn from(e: healers_campaign::CacheError) -> Self {
        Error::Msg(e.to_string())
    }
}

impl From<healers_serve::plans::BuildError> for Error {
    fn from(e: healers_serve::plans::BuildError) -> Self {
        match e {
            healers_serve::plans::BuildError::NotExported(function) => Error::NotExported {
                command: "serve",
                function,
            },
            other => Error::Msg(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime_failures() {
        assert_eq!(Error::Usage.exit_code(), 2);
        assert_eq!(Error::BadArgument("bad".into()).exit_code(), 2);
        assert_eq!(
            Error::NotExported {
                command: "analyze",
                function: "nope".into()
            }
            .exit_code(),
            1
        );
        assert_eq!(
            Error::io("cannot write x", std::io::Error::other("disk")).exit_code(),
            1
        );
        assert_eq!(Error::Msg("boom".into()).exit_code(), 1);
    }

    #[test]
    fn parse_mode_errors_become_usage_class_errors() {
        let err: Error = "sideways"
            .parse::<healers_ballista::Mode>()
            .unwrap_err()
            .into();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("sideways"));
    }

    #[test]
    fn not_exported_messages_match_the_historic_cli_format() {
        let err = Error::NotExported {
            command: "report",
            function: "frobnicate".into(),
        };
        assert_eq!(
            err.to_string(),
            "report: frobnicate is not exported by the library"
        );
    }
}
