//! HEALERS — automated robustness wrappers for C libraries.
//!
//! Facade crate re-exporting the full HEALERS pipeline. See the individual
//! crates for detail:
//!
//! * [`healers_ctypes`] — C type model, prototype parser, target layout
//! * [`healers_simproc`] — simulated process (memory, heap, faults, sandbox)
//! * [`healers_os`] — simulated kernel (filesystem, fds, directories, ttys)
//! * [`healers_libc`] — the simulated C library under test
//! * [`healers_typesys`] — the extensible robust-argument type system
//! * [`healers_corpus`] — header/man-page corpus and prototype recovery
//! * [`healers_inject`] — adaptive fault injectors and test-case generators
//! * [`healers_core`] — function declarations and wrapper generation
//! * [`healers_ballista`] — Ballista-style robustness evaluation
//! * [`healers_campaign`] — parallel campaign orchestration, declaration cache, event journal
//! * [`healers_fuzz`] — coverage-guided API-sequence fuzzer with shrinking and pinning
//! * [`healers_serve`] — hardening-as-a-service daemon: framed binary protocol over Arc-shared wrapper plans
//! * [`healers_trace`] — telemetry core: latency histograms, span collection, Chrome trace export

pub mod error;
pub mod prelude;

pub use error::Error;

pub use healers_ballista as ballista;
pub use healers_campaign as campaign;
pub use healers_core as core;
pub use healers_corpus as corpus;
pub use healers_ctypes as ctypes;
pub use healers_fuzz as fuzz;
pub use healers_inject as inject;
pub use healers_libc as libc;
pub use healers_os as os;
pub use healers_serve as serve;
pub use healers_simproc as simproc;
pub use healers_trace as trace;
pub use healers_typesys as typesys;
