//! CLI contract tests for `healers serve` and `healers bench serve`:
//! `serve exec` replays a script deterministically (byte-identical raw
//! reply streams across `--workers`), warm cache startups report zero
//! injected calls, and misuse exits with status 2.

use std::path::PathBuf;
use std::process::{Command, Output};

fn healers(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_healers"))
        .args(args)
        .output()
        .expect("spawn healers")
}

fn smoke_script() -> String {
    serve_script("smoke")
}

fn serve_script(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(format!("tests/serve_scripts/{name}.txt"))
        .display()
        .to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("healers-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn serve_exec_reply_bytes_are_identical_across_worker_counts() {
    let script = smoke_script();
    let dir = temp_dir("det");
    std::fs::create_dir_all(&dir).unwrap();
    let raw1 = dir.join("w1.bin");
    let raw4 = dir.join("w4.bin");

    let mut outputs = Vec::new();
    for (workers, raw) in [("1", &raw1), ("4", &raw4)] {
        let out = healers(&[
            "serve",
            "exec",
            "--script",
            &script,
            "--workers",
            workers,
            "--raw-out",
            &raw.display().to_string(),
            "strlen",
            "strcpy",
            "abs",
            "memset",
        ]);
        assert!(
            out.status.success(),
            "serve exec --workers {workers} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "rendered replies diverge");

    let bytes1 = std::fs::read(&raw1).unwrap();
    let bytes4 = std::fs::read(&raw4).unwrap();
    assert!(!bytes1.is_empty());
    assert_eq!(bytes1, bytes4, "raw reply streams diverge across workers");

    // The rendered transcript names the interesting verdicts.
    let text = String::from_utf8(outputs[0].clone()).unwrap();
    assert!(text.contains("pong"), "{text}");
    assert!(text.contains("validated: admit"), "{text}");
    assert!(text.contains("validated: reject arg 0"), "{text}");
    assert!(text.contains("unknown function"), "{text}");
    assert!(text.contains("reported:"), "{text}");
    assert!(text.contains("bye"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_exec_warm_cache_reports_zero_injected_calls() {
    let script = smoke_script();
    let cache = temp_dir("warm");
    let run = |label: &str| {
        let out = healers(&[
            "serve",
            "exec",
            "--script",
            &script,
            "--cache",
            &cache.display().to_string(),
            "strlen",
            "strcpy",
            "abs",
            "memset",
        ]);
        assert!(
            out.status.success(),
            "{label} run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, String::from_utf8(out.stderr).unwrap())
    };

    let (cold_stdout, cold_stderr) = run("cold");
    let (warm_stdout, warm_stderr) = run("warm");

    // The startup summary on stderr carries the campaign trace
    // counters: a warm start must hit the cache for every function and
    // perform zero injected calls.
    assert!(
        cold_stderr.contains("cache 0 hit / 4 miss"),
        "{cold_stderr}"
    );
    assert!(
        warm_stderr.contains("cache 4 hit / 0 miss"),
        "{warm_stderr}"
    );
    assert!(
        warm_stderr.contains("0 injected calls"),
        "warm start must not inject: {warm_stderr}"
    );
    // And warm vs cold plans answer identically.
    assert_eq!(cold_stdout, warm_stdout);
    std::fs::remove_dir_all(&cache).unwrap();
}

/// Kill the daemon child even when an assertion unwinds the test.
struct DaemonGuard(std::process::Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_stats_scrapes_a_live_daemon_in_all_three_views() {
    let dir = temp_dir("stats");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("healers.sock");
    let sock = socket.display().to_string();
    let mut daemon = DaemonGuard(
        Command::new(env!("CARGO_BIN_EXE_healers"))
            .args([
                "serve",
                "daemon",
                "--socket",
                &sock,
                "--workers",
                "2",
                "strlen",
                "abs",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn daemon"),
    );
    // The daemon binds the socket only after the plans are built.
    for _ in 0..400 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(socket.exists(), "daemon never bound {sock}");

    let traffic = healers(&[
        "serve",
        "send",
        "--socket",
        &sock,
        "--script",
        &serve_script("traffic"),
    ]);
    assert!(
        traffic.status.success(),
        "traffic failed:\n{}",
        String::from_utf8_lossy(&traffic.stderr)
    );

    // Deterministic view: exactly the worker-count-invariant subset.
    let det = healers(&["serve", "stats", "--socket", &sock, "--deterministic"]);
    assert!(
        det.status.success(),
        "{}",
        String::from_utf8_lossy(&det.stderr)
    );
    let det = String::from_utf8(det.stdout).unwrap();
    assert!(det.contains("validates 3"), "{det}");
    assert!(
        det.contains("fn strlen admitted 1 rejected 1 unchecked 0"),
        "{det}"
    );
    assert!(
        det.contains("fn abs admitted 0 rejected 0 unchecked 1"),
        "{det}"
    );
    assert!(!det.contains("worker"), "live sections leaked: {det}");

    // Prometheus view: parseable text exposition format.
    let prom = healers(&["serve", "stats", "--socket", &sock, "--prom"]);
    assert!(prom.status.success());
    let prom = String::from_utf8(prom.stdout).unwrap();
    assert!(
        prom.contains("# TYPE healers_serve_validates counter"),
        "{prom}"
    );
    assert!(
        prom.contains(
            "healers_serve_validate_outcomes_total{function=\"strlen\",outcome=\"rejected\"} 1"
        ),
        "{prom}"
    );

    // Full view: the live sections appear.
    let full = healers(&["serve", "stats", "--socket", &sock]);
    assert!(full.status.success());
    let full = String::from_utf8(full.stdout).unwrap();
    assert!(full.contains("workers:"), "{full}");
    assert!(full.contains("queue highwater:"), "{full}");

    let bye = healers(&[
        "serve",
        "send",
        "--socket",
        &sock,
        "--script",
        &serve_script("shutdown"),
    ]);
    assert!(bye.status.success());
    let _ = daemon.0.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_misuse_exits_2() {
    for args in [
        &["serve"][..],
        &["serve", "frobnicate"][..],
        &["serve", "exec"][..],             // missing --script
        &["serve", "daemon"][..],           // missing --socket
        &["serve", "exec", "--script"][..], // missing the value
        &["serve", "stats"][..],            // missing --socket
        &[
            "serve",
            "stats",
            "--socket",
            "/tmp/x",
            "--prom",
            "--deterministic",
        ][..],
        &["serve", "stats", "--frob"][..],
        &["bench"][..],
        &["bench", "frobnicate"][..],
    ] {
        let out = healers(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn serve_exec_rejects_unknown_functions_at_startup() {
    let script = smoke_script();
    let out = healers(&["serve", "exec", "--script", &script, "frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

#[test]
fn bench_serve_fast_reports_throughput_and_percentiles() {
    let out = healers(&[
        "bench",
        "serve",
        "--fast",
        "--clients",
        "2",
        "--workers",
        "2",
    ]);
    // The 1M requests/sec floor is a release-build CI gate; an
    // unoptimized test build may legitimately fail it (exit 1). Either
    // way the report itself must have been produced — only usage
    // errors (exit 2) or a missing report fail this test.
    assert!(
        matches!(out.status.code(), Some(0) | Some(1)),
        "bench serve --fast: {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("throughput"), "{text}");
    assert!(text.contains("frame p50"), "{text}");
    assert!(text.contains("frame p99"), "{text}");
}
