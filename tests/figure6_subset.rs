//! A fast Figure 6 slice: the three-configuration Ballista comparison
//! over a representative subset of the 86 functions. (The full run is
//! `cargo run -p healers-bench --bin fig6_ballista --release`.)

use healers::ballista::{Ballista, Mode};
use healers::libc::Libc;

/// One representative per family: string copy, string scan, stdio
/// stream, stdio open, time struct, termios, dirent, conversion, plus
/// two of the never-crashing scalars.
const SUBSET: &[&str] = &[
    "strcpy",
    "strlen",
    "fgetc",
    "fopen",
    "asctime",
    "cfsetospeed",
    "closedir",
    "strtol",
    "lseek",
    "abs",
];

#[test]
fn wrapper_configurations_are_strictly_ordered() {
    let ballista = Ballista::new().with_functions(SUBSET).with_cap(120);
    let libc = Libc::standard();
    let decls = ballista.analyze_targets(&libc);

    let unwrapped = ballista.run_with_decls(&libc, Mode::Unwrapped, decls.clone());
    let full = ballista.run_with_decls(&libc, Mode::FullAuto, decls.clone());
    let semi = ballista.run_with_decls(&libc, Mode::SemiAuto, decls);

    let u = unwrapped.totals();
    let f = full.totals();
    let s = semi.totals();

    // All three configurations ran the same tests.
    assert_eq!(u.tests, f.tests);
    assert_eq!(f.tests, s.tests);

    // The paper's trajectory: each configuration strictly reduces
    // failures, and the semi-automatic wrapper eliminates them.
    assert!(u.failures() > f.failures(), "full-auto must help");
    assert!(f.failures() >= s.failures(), "semi-auto must not be worse");
    assert_eq!(
        s.failures(),
        0,
        "semi-auto must eliminate all failures: {semi:?}"
    );

    // Prevented failures become errno returns, not silent successes.
    assert!(f.errno_set > u.errno_set);
    assert!(s.errno_set >= f.errno_set);
}

#[test]
fn never_crashing_functions_stay_clean_in_every_configuration() {
    let ballista = Ballista::new()
        .with_functions(&["lseek", "abs"])
        .with_cap(80);
    let libc = Libc::standard();
    let decls = ballista.analyze_targets(&libc);
    for mode in [Mode::Unwrapped, Mode::FullAuto, Mode::SemiAuto] {
        let report = ballista.run_with_decls(&libc, mode, decls.clone());
        assert_eq!(report.totals().failures(), 0, "{mode:?}");
    }
}

#[test]
fn results_are_deterministic() {
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "fgetc"])
        .with_cap(60);
    let libc = Libc::standard();
    let decls = ballista.analyze_targets(&libc);
    let a = ballista.run_with_decls(&libc, Mode::FullAuto, decls.clone());
    let b = ballista.run_with_decls(&libc, Mode::FullAuto, decls);
    assert_eq!(a.totals(), b.totals());
    for (name, outcomes) in a.iter() {
        assert_eq!(Some(outcomes), b.function(name));
    }
}

#[test]
fn seed_changes_sampling_but_not_the_headline() {
    // For a function whose cross product exceeds the cap, different
    // seeds sample different vectors — but semi-auto stays at zero.
    let libc = Libc::standard();
    for seed in [1u64, 2, 3] {
        let ballista = Ballista::new()
            .with_functions(&["fread", "strncpy"])
            .with_cap(60)
            .with_seed(seed);
        let decls = ballista.analyze_targets(&libc);
        let semi = ballista.run_with_decls(&libc, Mode::SemiAuto, decls);
        assert_eq!(semi.totals().failures(), 0, "seed {seed}");
    }
}
