//! End-to-end reproduction of the paper's running example: the
//! `asctime` pipeline from Figure 2 (declaration) through Figure 5
//! (wrapper code) to crash prevention.

use healers::core::{analyze, decls_from_xml, decls_to_xml, WrapperBuilder, WrapperConfig};
use healers::libc::{Libc, World};
use healers::simproc::{SimValue, INVALID_PTR};
use healers::typesys::TypeExpr;

#[test]
fn figure_2_declaration_is_discovered() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &["asctime"]);
    let d = &decls[0];
    assert_eq!(d.robust_args, vec![Some(TypeExpr::RArrayNull(44))]);
    assert_eq!(d.error_value, Some(SimValue::NULL));
    assert_eq!(d.errno_value, 22); // EINVAL
    assert!(d.is_unsafe());
}

#[test]
fn declaration_survives_the_xml_roundtrip_and_still_generates_the_wrapper() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &["asctime"]);
    // Serialize to the Figure 2 format, parse back, and build the
    // wrapper from the parsed declarations — the editing workflow.
    let xml = decls_to_xml(&decls);
    let parsed = decls_from_xml(&xml).expect("roundtrip");
    let mut wrapper = WrapperBuilder::new()
        .decls(parsed)
        .config(WrapperConfig::full_auto())
        .build();

    let mut world = World::new();
    let r = wrapper
        .call(&libc, &mut world, "asctime", &[SimValue::Ptr(INVALID_PTR)])
        .expect("wrapper must not crash");
    assert_eq!(r, SimValue::NULL);
    assert_eq!(world.proc.errno(), 22);
}

#[test]
fn figure_5_wrapper_source_is_generated_verbatim() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &["asctime"]);
    let source = healers::core::emit::emit_function(&decls[0]).unwrap();
    for line in [
        "char* asctime (const struct tm* a1)",
        "    if (in_flag) {",
        "        return (*libc_asctime) (a1);",
        "    in_flag = 1 ;",
        "    if (!check_R_ARRAY_NULL(a1,44)) {",
        "        errno = EINVAL ;",
        "        ret = (char*) NULL;",
        "        goto PostProcessing;",
        "    ret = (*libc_asctime) (a1);",
        "PostProcessing: ;",
        "    in_flag = 0 ;",
        "    return ret;",
    ] {
        assert!(source.contains(line), "missing line {line:?} in:\n{source}");
    }
}

#[test]
fn the_wrapped_function_still_works_for_valid_inputs() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &["asctime", "gmtime", "time"]);
    let mut wrapper = WrapperBuilder::new()
        .decls(decls)
        .config(WrapperConfig::full_auto())
        .build();
    let mut world = World::new();

    // time() -> gmtime() -> asctime(): a correct program, wrapped.
    let now = wrapper
        .call(&libc, &mut world, "time", &[SimValue::NULL])
        .unwrap();
    assert!(now.as_int() > 0);
    let t = world.alloc_buf(4);
    world.proc.mem.write_i32(t, now.as_int() as i32).unwrap();
    let tm = wrapper
        .call(&libc, &mut world, "gmtime", &[SimValue::Ptr(t)])
        .unwrap();
    assert_ne!(tm, SimValue::NULL);
    let text = wrapper.call(&libc, &mut world, "asctime", &[tm]).unwrap();
    let s = world.read_cstr_lossy(text.as_ptr()).unwrap();
    assert!(s.ends_with('\n'), "asctime output {s:?}");
    assert!(s.len() >= 24);
    assert_eq!(wrapper.stats.violations, 0);
}
