//! The §2 trade-off, measured: "a process with root privilege may use
//! our wrapper to detect buffer overflow attacks … a process owned by
//! an ordinary user may use only a minimal wrapper to prevent system
//! crashes without much performance overhead." Each configuration must
//! be at least as protective as the weaker ones.

use healers::ballista::pools::{param_kind, prepare, ParamKind};
use healers::ballista::Ballista;
use healers::core::{analyze, WrapperBuilder, WrapperConfig};
use healers::libc::{Libc, World};
use healers::simproc::SimValue;

const SUBSET: &[&str] = &["strcpy", "strlen", "asctime", "fgetc", "mktime", "gets"];

fn failures_with(config: WrapperConfig) -> usize {
    let libc = Libc::standard();
    let decls = analyze(&libc, SUBSET);
    let mut wrapper = Some(WrapperBuilder::new().decls(decls).config(config).build());
    let mut world = World::new();
    world.proc.set_fuel_budget(300_000);
    let pools = prepare(&libc, &mut wrapper, &mut world);

    let mut failures = 0;
    for name in SUBSET {
        let proto = libc.get(name).unwrap().proto.clone();
        let kinds: Vec<ParamKind> = proto.params.iter().map(param_kind).collect();
        // Vary one argument at a time over its pool with the others at
        // the first valid value — a small deterministic probe suite.
        for vary in 0..kinds.len() {
            for value in pools.for_kind(kinds[vary]) {
                let args: Vec<SimValue> = kinds
                    .iter()
                    .enumerate()
                    .map(|(i, k)| {
                        if i == vary {
                            value.value
                        } else {
                            pools.for_kind(*k).iter().find(|v| v.valid).unwrap().value
                        }
                    })
                    .collect();
                let mut child = world.clone();
                let mut w = wrapper.clone().unwrap();
                if w.call(&libc, &mut child, name, &args).is_err() {
                    failures += 1;
                }
            }
        }
    }
    failures
}

#[test]
fn stronger_configurations_never_fail_more() {
    let minimal = failures_with(WrapperConfig::minimal());
    let full = failures_with(WrapperConfig::full_auto());
    let semi = failures_with(WrapperConfig::semi_auto());
    assert!(
        full <= minimal,
        "full-auto ({full}) worse than minimal ({minimal})"
    );
    assert!(
        semi <= full,
        "semi-auto ({semi}) worse than full-auto ({full})"
    );
    assert_eq!(semi, 0, "semi-auto must eliminate the probe-suite failures");
}

#[test]
fn per_function_wrapping_only_protects_the_chosen_functions() {
    // §2: "a system developer could decide which functions should be
    // wrapped". Wrapping only strcpy leaves strlen exposed — and the
    // Ballista comparison shows exactly that.
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen"])
        .with_cap(60);
    let decls = ballista.analyze_targets(&libc);

    let config = WrapperConfig {
        enabled: Some(["strcpy".to_string()].into_iter().collect()),
        ..WrapperConfig::full_auto()
    };
    let wrapper = WrapperBuilder::new()
        .decls(decls.clone())
        .config(config)
        .build();
    // Hand-run the Ballista subset through the partial wrapper.
    let mut world = World::new();
    let mut opt = Some(wrapper);
    let pools = prepare(&libc, &mut opt, &mut world);
    let wrapper = opt.unwrap();

    let strlen_arg = pools.for_kind(ParamKind::CString);
    let null = strlen_arg.iter().find(|v| v.label == "NULL").unwrap();
    // strlen is not wrapped: NULL crashes.
    let mut child = world.clone();
    let mut w = wrapper.clone();
    assert!(w.call(&libc, &mut child, "strlen", &[null.value]).is_err());
    // strcpy is wrapped: NULL destination is caught.
    let mut child = world.clone();
    let mut w = wrapper.clone();
    let src = pools
        .for_kind(ParamKind::CString)
        .iter()
        .find(|v| v.label == "short string")
        .unwrap();
    let r = w
        .call(&libc, &mut child, "strcpy", &[null.value, src.value])
        .unwrap();
    assert_eq!(r, SimValue::NULL);
}
