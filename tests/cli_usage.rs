//! CLI contract tests: the usage listing enumerates every subcommand,
//! misuse exits with status 2, and `healers report` output is
//! byte-identical across worker counts.

use std::collections::BTreeSet;
use std::process::{Command, Output};

fn healers(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_healers"))
        .args(args)
        .output()
        .expect("spawn healers")
}

/// Every subcommand the binary dispatches. Adding a subcommand without
/// listing it here (and in `usage()`) fails the exact-set comparison
/// below, so the listing and this test cannot silently drift apart.
const SUBCOMMANDS: &[&str] = &[
    "analyze", "wrap", "ballista", "campaign", "report", "explain", "extract", "fuzz", "serve",
    "bench", "tour", "help",
];

/// Parse the subcommand names out of the usage listing: on each
/// `healers …` line the subcommand is the first token after `healers`
/// that is not a bracketed global flag like `[--seed N]`.
fn listed_subcommands(stderr: &str) -> BTreeSet<String> {
    let mut subs = BTreeSet::new();
    for line in stderr.lines() {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("healers") {
            continue;
        }
        // Bracketed flags like `[--seed N]` may span several tokens.
        let mut depth = 0i32;
        for token in tokens {
            if depth == 0 && !token.starts_with('[') {
                subs.insert(token.to_string());
                break;
            }
            depth += token.matches('[').count() as i32;
            depth -= token.matches(']').count() as i32;
        }
    }
    subs
}

#[test]
fn usage_lists_exactly_the_dispatched_subcommands() {
    let out = healers(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    let listed = listed_subcommands(&stderr);
    let expected: BTreeSet<String> = SUBCOMMANDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        listed, expected,
        "usage() and the SUBCOMMANDS list disagree:\n{stderr}"
    );
}

#[test]
fn fuzz_subcommand_forms_are_all_listed() {
    // `fuzz` is the one subcommand with sub-subcommands; the listing
    // must name each form so `healers fuzz <form>` stays discoverable.
    let out = healers(&[]);
    let stderr = String::from_utf8(out.stderr).unwrap();
    for form in ["fuzz run", "fuzz replay", "fuzz shrink"] {
        assert!(
            stderr.contains(form),
            "usage is missing `{form}`:\n{stderr}"
        );
    }
}

#[test]
fn serve_and_bench_subcommand_forms_are_all_listed() {
    let out = healers(&[]);
    let stderr = String::from_utf8(out.stderr).unwrap();
    for form in [
        "serve daemon",
        "serve exec",
        "serve send",
        "serve stats",
        "bench serve",
    ] {
        assert!(
            stderr.contains(form),
            "usage is missing `{form}`:\n{stderr}"
        );
    }
}

#[test]
fn unknown_subcommand_and_help_behave_identically() {
    let help = healers(&["help"]);
    let unknown = healers(&["frobnicate"]);
    assert_eq!(help.status.code(), Some(2));
    assert_eq!(unknown.status.code(), Some(2));
    assert_eq!(help.stderr, unknown.stderr, "both print the same listing");
    assert!(help.stdout.is_empty());
}

#[test]
fn unknown_flags_exit_2() {
    for args in [
        &["--frob", "analyze", "strlen"][..],
        &["report", "--frob"][..],
        &["campaign", "--trace"][..], // missing the path operand
    ] {
        let out = healers(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn on_violation_misuse_exits_2_everywhere_it_is_accepted() {
    // Satellite contract: every subcommand that takes `--on-violation`
    // funnels the token through the same parser, so misuse is exit 2
    // with the same diagnostic wording regardless of subcommand.
    for args in [
        &["ballista", "--on-violation"][..], // missing operand
        &["ballista", "--on-violation", "panic"][..],
        &["wrap", "--on-violation", "heal"][..],
        &["campaign", "--on-violation", "Repair"][..], // tokens are lowercase
        &["report", "--on-violation", "none"][..],
        &["fuzz", "run", "--on-violation", "fix"][..],
        &[
            "fuzz",
            "shrink",
            "no-such-seed.txt",
            "--on-violation",
            "retry",
        ][..],
    ] {
        let out = healers(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        if args.len() > 2 {
            let stderr = String::from_utf8(out.stderr).unwrap();
            assert!(
                stderr.contains("expected abort, error, or repair"),
                "args {args:?} stderr:\n{stderr}"
            );
        }
    }
}

#[test]
fn on_violation_repair_is_accepted_end_to_end() {
    let out = healers(&[
        "--seed",
        "7",
        "report",
        "--cap",
        "4",
        "--on-violation",
        "repair",
        "strcpy",
        "strlen",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("repairs="), "{text}");
}

#[test]
fn report_output_is_byte_identical_across_worker_counts() {
    let base = &["--seed", "7", "report", "--cap", "6", "strcpy", "strlen"];
    let one = healers(&[base as &[&str], &["--jobs", "1"]].concat());
    let four = healers(&[base as &[&str], &["--jobs", "4"]].concat());
    assert!(one.status.success() && four.status.success());
    assert!(!one.stdout.is_empty());
    assert_eq!(one.stdout, four.stdout);

    let text = String::from_utf8(one.stdout).unwrap();
    assert!(text.contains("healers report — Full-Auto Wrapped (seed 7)"));
    assert!(text.contains("checks by claim kind:"));
    assert!(text.contains("wrapper: calls="));
}

#[test]
fn explain_names_the_faulting_page_run_and_heap_block() {
    let out = healers(&["explain", "strcpy"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("robust type:"), "{text}");
    assert!(text.contains("rejected: would admit crashing"), "{text}");
    // The provenance line: a fault attributed to a page run …
    assert!(text.contains("fault at 0x"), "{text}");
    assert!(text.contains(" run 0x"), "{text}");
    // … and to the heap block whose guard page caught the overrun.
    assert!(text.contains("guard page after live block 0x"), "{text}");
    // The flight-recorder tail follows the provenance: the injection
    // campaign's resolved faults are events, so strcpy must appear.
    assert!(text.contains("flight recorder ("), "{text}");
    assert!(text.contains("fault-injected strcpy"), "{text}");
}
