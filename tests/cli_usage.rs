//! CLI contract tests: the usage listing enumerates every subcommand,
//! misuse exits with status 2, and `healers report` output is
//! byte-identical across worker counts.

use std::process::{Command, Output};

fn healers(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_healers"))
        .args(args)
        .output()
        .expect("spawn healers")
}

const SUBCOMMANDS: &[&str] = &[
    "analyze", "wrap", "ballista", "campaign", "report", "explain", "extract", "tour", "help",
];

#[test]
fn no_arguments_prints_the_full_listing_and_exits_2() {
    let out = healers(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    for sub in SUBCOMMANDS {
        assert!(stderr.contains(sub), "usage is missing `{sub}`:\n{stderr}");
    }
}

#[test]
fn unknown_subcommand_and_help_behave_identically() {
    let help = healers(&["help"]);
    let unknown = healers(&["frobnicate"]);
    assert_eq!(help.status.code(), Some(2));
    assert_eq!(unknown.status.code(), Some(2));
    assert_eq!(help.stderr, unknown.stderr, "both print the same listing");
    assert!(help.stdout.is_empty());
}

#[test]
fn unknown_flags_exit_2() {
    for args in [
        &["--frob", "analyze", "strlen"][..],
        &["report", "--frob"][..],
        &["campaign", "--trace"][..], // missing the path operand
    ] {
        let out = healers(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn report_output_is_byte_identical_across_worker_counts() {
    let base = &["--seed", "7", "report", "--cap", "6", "strcpy", "strlen"];
    let one = healers(&[base as &[&str], &["--jobs", "1"]].concat());
    let four = healers(&[base as &[&str], &["--jobs", "4"]].concat());
    assert!(one.status.success() && four.status.success());
    assert!(!one.stdout.is_empty());
    assert_eq!(one.stdout, four.stdout);

    let text = String::from_utf8(one.stdout).unwrap();
    assert!(text.contains("healers report — Full-Auto Wrapped (seed 7)"));
    assert!(text.contains("checks by claim kind:"));
    assert!(text.contains("wrapper: calls="));
}

#[test]
fn explain_names_the_faulting_page_run_and_heap_block() {
    let out = healers(&["explain", "strcpy"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("robust type:"), "{text}");
    assert!(text.contains("rejected: would admit crashing"), "{text}");
    // The provenance line: a fault attributed to a page run …
    assert!(text.contains("fault at 0x"), "{text}");
    assert!(text.contains(" run 0x"), "{text}");
    // … and to the heap block whose guard page caught the overrun.
    assert!(text.contains("guard page after live block 0x"), "{text}");
}
