//! "The fault-injector itself is robust" (§4.1): a fault injector can
//! be generated and run for *every* exported function of the library —
//! not only the 86 evaluation targets — without ever panicking, and its
//! report is structurally sound.

use healers::inject::FaultInjector;
use healers::libc::Libc;
use healers::typesys::is_subtype;

#[test]
fn every_exported_function_survives_injection() {
    let libc = Libc::standard();
    let names: Vec<String> = libc.names().map(|s| s.to_string()).collect();
    assert!(names.len() >= 120, "library shrank to {}", names.len());
    for name in &names {
        let report = FaultInjector::new(&libc, name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .run();
        // Structural soundness: one arg report per parameter, every
        // robust type drawn from that argument's universe, and every
        // success observation admitted by it.
        assert_eq!(report.args.len(), report.proto.params.len(), "{name}");
        for (i, arg) in report.args.iter().enumerate() {
            assert!(
                arg.universe.contains(&arg.robust.robust),
                "{name} arg {i}: {} not in universe",
                arg.robust.robust
            );
            for obs in &arg.observations {
                if obs.outcome == healers::typesys::Outcome::Success {
                    assert!(
                        is_subtype(obs.fundamental, arg.robust.robust),
                        "{name} arg {i}: success {} not admitted by {}",
                        obs.fundamental,
                        arg.robust.robust
                    );
                }
            }
        }
        // The injector performed real work.
        assert!(report.calls > 0, "{name} made no calls");
    }
}
