//! The §6 findings, as executable assertions: the paper's anecdotes
//! about what the fault injector discovered.

use healers::inject::{ErrCodeClass, FaultInjector};
use healers::libc::Libc;
use healers::typesys::TypeExpr;

fn injector_report(name: &str) -> healers::inject::InjectionReport {
    let libc = Libc::standard();
    FaultInjector::new(&libc, name)
        .unwrap_or_else(|| panic!("{name} missing"))
        .run()
}

/// "while function cfsetispeed (sets the input baud rate) only needs
/// write access to its argument, function cfsetospeed (sets the output
/// baud rate) needs both read and write access."
#[test]
fn cfsetispeed_needs_write_cfsetospeed_needs_read_write() {
    let ispeed = injector_report("cfsetispeed");
    let ospeed = injector_report("cfsetospeed");
    assert!(
        matches!(ispeed.args[0].robust.robust, TypeExpr::WArray(_)),
        "cfsetispeed: {}",
        ispeed.args[0].robust.robust
    );
    assert!(
        matches!(ospeed.args[0].robust.robust, TypeExpr::RwArray(_)),
        "cfsetospeed: {}",
        ospeed.args[0].robust.robust
    );
}

/// "functions fopen and freopen crash when the mode string is invalid
/// but can cope with invalid file names."
#[test]
fn fopen_and_freopen_mode_vs_filename() {
    for name in ["fopen", "freopen"] {
        let report = injector_report(name);
        // Some mode-string test case crashed…
        assert!(
            report
                .records
                .iter()
                .any(|r| r.arg_index == Some(1) && r.outcome.is_failure()),
            "{name}: no mode-string crash observed"
        );
        // …while every well-formed (string-content) filename merely
        // produced an error return.
        assert!(
            report
                .records
                .iter()
                .filter(|r| r.arg_index == Some(0)
                    && matches!(r.fundamental, TypeExpr::NtsRw(_) | TypeExpr::NtsRo(_)))
                .all(|r| !r.outcome.is_failure()),
            "{name}: a filename *content* case crashed"
        );
    }
}

/// "Only one of these 37 functions, fflush, is supposed to set errno."
#[test]
fn fflush_fails_without_setting_errno() {
    let report = injector_report("fflush");
    assert_eq!(report.errcode.class, ErrCodeClass::NoErrorReturnCodeFound);
    // It does return EOF for a bad stream — silently.
    assert!(report
        .records
        .iter()
        .any(|r| r.returned == Some(healers::simproc::SimValue::Int(-1)) && r.errno == 0));
}

/// "The two functions that set errno inconsistently are fdopen and
/// freopen: they sometimes set errno even though a valid file
/// descriptor is returned."
#[test]
fn fdopen_and_freopen_set_errno_inconsistently() {
    for name in ["fdopen", "freopen"] {
        let report = injector_report(name);
        assert_eq!(report.errcode.class, ErrCodeClass::Inconsistent, "{name}");
        // The witness: a *successful* return (non-NULL pointer) with
        // errno set.
        assert!(
            report
                .records
                .iter()
                .any(|r| r.errno != 0 && r.returned.map(|v| !v.is_null()).unwrap_or(false)),
            "{name}: no spurious-errno success observed"
        );
    }
}

/// `closedir` requires "its argument be a directory pointer returned by
/// a previous call to opendir" — a property no stateless check can
/// verify (§5.2), reflected in the discovered OPEN_DIR robust type.
#[test]
fn closedir_robust_type_is_the_uncheckable_open_dir() {
    let report = injector_report("closedir");
    assert_eq!(report.args[0].robust.robust, TypeExpr::OpenDir);
    let caps = healers::core::checker::CheckCapabilities {
        stateful_heap: true,
        dir_tracking: false,
        file_tracking: false,
    };
    // Without tracking the wrapper degrades to a memory check…
    assert!(!healers::core::checker::checkable(TypeExpr::OpenDir, &caps));
    // …with tracking it checks the real thing.
    let caps_semi = healers::core::checker::CheckCapabilities {
        dir_tracking: true,
        ..caps
    };
    assert!(healers::core::checker::checkable(
        TypeExpr::OpenDir,
        &caps_semi
    ));
}

/// The adaptive generator's headline: asctime needs exactly 44 bytes,
/// discovered by growing a guard-paged array byte by byte.
#[test]
fn adaptive_growth_discovers_44_bytes_for_asctime() {
    let report = injector_report("asctime");
    assert!(report.adaptive_retries >= 44);
    assert_eq!(report.args[0].robust.robust, TypeExpr::RArrayNull(44));
    assert!(report.args[0].robust.safe);
}

/// The nine never-crashing functions are classified safe and left
/// unwrapped — "it avoids the overhead of unnecessary argument checks"
/// (§3.4).
#[test]
fn the_nine_robust_functions_are_safe() {
    for name in healers::ballista::NEVER_CRASHING {
        let report = injector_report(name);
        assert!(report.safe, "{name} should be safe");
    }
}

/// §6's headline split, pinned exactly: of the 86 evaluation targets,
/// the injector finds 77 unsafe and 9 safe — the same 9 scalar-only
/// functions that never crash ("Only 9 functions never crash. All
/// other 77 functions crashed for at least one test case.").
#[test]
fn exactly_77_of_86_functions_are_unsafe() {
    let libc = Libc::standard();
    let decls = healers::core::analyze(&libc, &healers::ballista::ballista_targets());
    let safe: Vec<&str> = decls
        .iter()
        .filter(|d| !d.is_unsafe())
        .map(|d| d.name.as_str())
        .collect();
    let mut expected: Vec<&str> = healers::ballista::NEVER_CRASHING.to_vec();
    let mut actual = safe.clone();
    expected.sort_unstable();
    actual.sort_unstable();
    assert_eq!(actual, expected);
    assert_eq!(decls.len() - safe.len(), 77);
}
