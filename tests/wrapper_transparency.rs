//! Transparency: for correct programs, the wrapper must be
//! behavior-preserving — same results, same side effects, zero
//! violations. Checked over hand-written scenarios and property-tested
//! over generated ones.

use healers::ballista::ballista_targets;
use healers::core::{analyze, FunctionDecl, WrapperBuilder, WrapperConfig};
use healers::libc::{Libc, World};
use healers::simproc::SimValue;
use proptest::prelude::*;

fn decls() -> Vec<FunctionDecl> {
    let libc = Libc::standard();
    analyze(&libc, &ballista_targets())
}

#[test]
fn file_pipeline_is_transparent() {
    let libc = Libc::standard();
    let decls = decls();

    let run = |wrapped: bool| -> (Vec<i64>, Vec<u8>, u64) {
        let mut world = World::new();
        let mut wrapper = wrapped.then(|| {
            WrapperBuilder::new()
                .decls(decls.clone())
                .config(WrapperConfig::semi_auto())
                .build()
        });
        let mut call = |world: &mut World, name: &str, args: &[SimValue]| -> SimValue {
            match wrapper.as_mut() {
                Some(w) => w.call(&libc, world, name, args).expect("wrapped"),
                None => libc.call(world, name, args).expect("direct"),
            }
        };
        let mut observed = Vec::new();

        let path = SimValue::Ptr(world.alloc_cstr("/tmp/transparency"));
        let w_mode = SimValue::Ptr(world.alloc_cstr("w"));
        let stream = call(&mut world, "fopen", &[path, w_mode]);
        let line = SimValue::Ptr(world.alloc_cstr("forty-two\n"));
        observed.push(call(&mut world, "fputs", &[line, stream]).as_int());
        observed.push(call(&mut world, "fclose", &[stream]).as_int());

        let r_mode = SimValue::Ptr(world.alloc_cstr("r"));
        let stream = call(&mut world, "fopen", &[path, r_mode]);
        let buf = SimValue::Ptr(world.alloc_buf(32));
        observed.push(call(&mut world, "fgets", &[buf, SimValue::Int(32), stream]).as_ptr() as i64);
        observed.push(call(&mut world, "ftell", &[stream]).as_int());
        observed.push(call(&mut world, "fclose", &[stream]).as_int());

        let content = world.kernel.read_file("/tmp/transparency").unwrap();
        let violations = wrapper.map(|w| w.stats.violations).unwrap_or(0);
        (observed, content, violations)
    };

    let (direct_obs, direct_content, _) = run(false);
    let (wrapped_obs, wrapped_content, violations) = run(true);
    // Pointers differ between runs; compare shapes and file contents.
    assert_eq!(direct_obs.len(), wrapped_obs.len());
    assert_eq!(direct_obs[0], wrapped_obs[0]); // fputs result
    assert_eq!(direct_obs[1], wrapped_obs[1]); // fclose result
    assert_eq!(direct_obs[3], wrapped_obs[3]); // ftell result
    assert_eq!(direct_content, wrapped_content);
    assert_eq!(violations, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed string and any copy within capacity: the wrapper
    /// must pass the call through with identical effect.
    #[test]
    fn strcpy_transparency(text in "[a-zA-Z0-9 ]{0,40}") {
        let libc = Libc::standard();
        let decls = analyze(&libc, &["strcpy", "strlen", "malloc"]);
        let mut wrapper = WrapperBuilder::new().decls(decls).config(WrapperConfig::semi_auto()).build();
        let mut world = World::new();
        let dst = wrapper
            .call(&libc, &mut world, "malloc", &[SimValue::Int(64)])
            .unwrap();
        let src = SimValue::Ptr(world.alloc_cstr(&text));
        let r = wrapper
            .call(&libc, &mut world, "strcpy", &[dst, src])
            .unwrap();
        prop_assert_eq!(r, dst);
        let len = wrapper
            .call(&libc, &mut world, "strlen", &[dst])
            .unwrap();
        prop_assert_eq!(len.as_int() as usize, text.len());
        prop_assert_eq!(wrapper.stats.violations, 0);
    }

    /// Conversely: any source longer than the destination is refused
    /// before a single byte moves.
    #[test]
    fn strcpy_overflow_is_always_refused(extra in 1usize..64) {
        let libc = Libc::standard();
        let decls = analyze(&libc, &["strcpy", "malloc"]);
        let mut wrapper = WrapperBuilder::new().decls(decls).config(WrapperConfig::full_auto()).build();
        let mut world = World::new();
        let dst = wrapper
            .call(&libc, &mut world, "malloc", &[SimValue::Int(16)])
            .unwrap();
        let text = "x".repeat(16 + extra);
        let src = SimValue::Ptr(world.alloc_cstr(&text));
        let r = wrapper
            .call(&libc, &mut world, "strcpy", &[dst, src])
            .unwrap();
        prop_assert_eq!(r, SimValue::NULL);
        prop_assert_eq!(wrapper.stats.violations, 1);
        // Destination untouched.
        prop_assert_eq!(world.proc.mem.read_u8(dst.as_ptr()).unwrap(), 0);
    }
}
