//! Structural sanity of the emitted C wrapper library: for the full
//! 86-function target set, the generated source is balanced, complete,
//! and consistent with the checks header.

use healers::ballista::ballista_targets;
use healers::core::{analyze, emit_checks_header, emit_wrapper_source};
use healers::libc::Libc;

#[test]
fn emitted_library_is_structurally_sound() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &ballista_targets());
    let source = emit_wrapper_source(&decls);
    let header = emit_checks_header(&decls);

    // Balanced braces and parentheses.
    for (open, close) in [('{', '}'), ('(', ')')] {
        let opens = source.matches(open).count();
        let closes = source.matches(close).count();
        assert_eq!(opens, closes, "unbalanced {open}{close} in emitted C");
    }

    // Every unsafe function has a definition, a function-pointer slot,
    // and a resolver line; every safe one has none.
    for d in &decls {
        let def = format!(" {} (", d.name);
        let slot = format!("(*libc_{})(", d.name);
        let resolve = format!("dlsym(RTLD_NEXT, \"{}\")", d.name);
        if d.is_unsafe() {
            assert!(source.contains(&def), "{} has no definition", d.name);
            assert!(source.contains(&slot), "{} has no pointer slot", d.name);
            assert!(source.contains(&resolve), "{} is not resolved", d.name);
        } else {
            assert!(!source.contains(&resolve), "safe {} resolved", d.name);
        }
    }

    // Every check function the wrappers call is declared in the header.
    for line in source.lines() {
        if let Some(pos) = line.find("check_") {
            let call = &line[pos..];
            let name: String = call
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            assert!(
                header.contains(&format!("int {name}(")),
                "{name} used but not declared"
            );
        }
    }

    // The PostProcessing discipline of Figure 5: one label per wrapper.
    let wrappers = decls.iter().filter(|d| d.is_unsafe()).count();
    assert_eq!(source.matches("PostProcessing: ;").count(), wrappers);
}
