//! Replay of the committed fuzzer pins.
//!
//! Every `.pin` under `tests/fuzz_pins/` is a shrunk sequence the
//! fuzzer found, together with the exact behaviour it recorded —
//! per-step outcome and `errno`, wrapper violations, and per-kind
//! check tallies. This test replays each pin and fails on any
//! divergence, which turns the fuzzer's historical findings into
//! permanent regression tests: a checker, wrapper, or libc change
//! that alters any pinned behaviour must update the pin (by re-running
//! `healers fuzz shrink` on its sequence) and justify the diff.

use std::collections::BTreeSet;
use std::path::PathBuf;

use healers::core::analyze;
use healers::fuzz::Pin;
use healers::libc::Libc;

fn pins_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_pins")
}

fn load_pins() -> Vec<(String, Pin)> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(pins_dir())
        .expect("tests/fuzz_pins must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "pin"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no committed pins found");
    names
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).unwrap();
            let pin = Pin::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, pin)
        })
        .collect()
}

#[test]
fn every_committed_pin_replays_to_its_recorded_outcome() {
    let libc = Libc::standard();
    let mut failures = Vec::new();
    for (name, pin) in load_pins() {
        assert_eq!(
            format!("{}.pin", pin.finding),
            name,
            "pin file name must match its finding key"
        );
        let mut functions: Vec<&str> = pin.seq.steps.iter().map(|s| s.function.as_str()).collect();
        functions.sort_unstable();
        functions.dedup();
        let decls = analyze(&libc, &functions);
        if let Err(e) = pin.replay(&libc, &decls) {
            failures.push(format!("{name}: {e}"));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn committed_pins_cover_every_check_kind_and_a_wrapped_crash() {
    // The committed set is required to span the whole checker: every
    // claim kind in `checker.rs` must appear in at least one pin's
    // failed-check expectations, and at least one pin must lock in a
    // crash that got through the wrapper.
    let pins = load_pins();
    let mut failed_kinds: BTreeSet<String> = BTreeSet::new();
    let mut repaired_kinds: BTreeSet<String> = BTreeSet::new();
    let mut wrapped_crashes = 0usize;
    for (_, pin) in &pins {
        for (kind, _, failed, repaired) in &pin.expect.checks {
            if *failed > 0 {
                failed_kinds.insert(kind.clone());
            }
            if *repaired > 0 {
                repaired_kinds.insert(kind.clone());
            }
        }
        if !pin.expect.completed {
            wrapped_crashes += 1;
        }
    }
    for kind in [
        "region",
        "string",
        "stream",
        "dir",
        "scalar",
        "assertion",
        "format",
    ] {
        assert!(
            failed_kinds.contains(kind),
            "no committed pin exercises a failed {kind} check (have: {failed_kinds:?})"
        );
    }
    assert!(
        !repaired_kinds.is_empty(),
        "no committed pin exercises a repair-mode fix"
    );
    assert!(wrapped_crashes >= 1, "no committed wrapped-crash pin");
    assert!(pins.len() >= 15, "the committed set must stay at 15+ pins");
}

#[test]
fn committed_pins_cover_check_vs_call_races() {
    // The threaded fuzzer's findings: at least three pins must record
    // a TOCTOU — a sequence with thread lanes and a preempt window
    // whose finding key carries the schedule-edge (`-preempted`)
    // component, crashing a call whose checks passed.
    let pins = load_pins();
    let toctou: Vec<&(String, Pin)> = pins
        .iter()
        .filter(|(name, _)| name.contains("preempted"))
        .collect();
    assert!(
        toctou.len() >= 3,
        "the committed set must keep 3+ TOCTOU pins (have {})",
        toctou.len()
    );
    for (name, pin) in toctou {
        assert!(
            pin.seq.is_threaded(),
            "{name}: a -preempted pin must carry lanes or windows"
        );
        assert!(
            !pin.seq.preempts.is_empty(),
            "{name}: a -preempted pin must place a check-vs-call window"
        );
        assert!(
            !pin.expect.completed,
            "{name}: a TOCTOU pin records a crash that got through"
        );
        // The race is the *only* thing wrong with the sequence: every
        // check the wrapper ran before the window passed.
        for (kind, _, failed, _) in &pin.expect.checks {
            assert_eq!(
                *failed, 0,
                "{name}: {kind} check failed — not a pure TOCTOU"
            );
        }
    }
}
