//! Pins the user-visible artifacts against the containment mechanism:
//! switching the fault-containment engine between copy-on-write
//! snapshots (the default) and the deep-clone reference must never
//! change a byte of the Figure 6 rows, the Table 1 declarations, or
//! the `healers report` body — at any worker count. The CoW engine is
//! a pure cost optimization; these tests are the contract that it
//! stays invisible.

use healers::prelude::*;

/// A small, fast subset that still exercises crashes (strcpy),
/// stateful handle checks (closedir), and static-buffer writers
/// (asctime).
const SUBSET: [&str; 3] = ["strcpy", "asctime", "closedir"];
const CAP: usize = 40;

fn ballista_with(containment: Containment) -> Ballista {
    Ballista::new()
        .with_functions(&SUBSET)
        .with_cap(CAP)
        .with_containment(containment)
}

/// The deterministic body of `healers report`: the Figure 6 render
/// plus the wrapper/check counter lines, exactly as `cmd_report`
/// prints them (minus the seed header, which is containment-free by
/// construction).
fn report_body(report: &BallistaReport, stats: &WrapperStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", report.render());
    let failing = report.functions_with_failures();
    if !failing.is_empty() {
        let _ = writeln!(out, "  still failing: {}", failing.join(", "));
    }
    let _ = writeln!(
        out,
        "wrapper: calls={} wrapped={} checks={} violations={} repairs={} cache-hits={}",
        stats.calls,
        stats.wrapped_calls,
        stats.checks,
        stats.violations,
        stats.repairs,
        stats.check_cache_hits
    );
    for (kind, passed, failed, repaired) in stats.check_outcomes.iter() {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>8} {:>8}",
            kind.label(),
            passed,
            failed,
            repaired
        );
    }
    out
}

#[test]
fn figure6_rows_are_byte_identical_with_cow_on_and_off() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &SUBSET);
    for mode in Mode::ALL {
        let cow = ballista_with(Containment::Cow).run_with_decls(&libc, mode, decls.clone());
        let deep = ballista_with(Containment::DeepClone).run_with_decls(&libc, mode, decls.clone());
        assert_eq!(
            cow.render(),
            deep.render(),
            "{} row changed with containment mechanism",
            mode.label()
        );
    }
}

#[test]
fn table1_declarations_are_byte_identical_across_jobs() {
    let libc = Libc::standard();
    // Table 1 is read off the declarations; the serial injector path
    // and the campaign orchestrator (any --jobs) must emit the same
    // XML bytes under the CoW engine.
    let serial = decls_to_xml(&analyze(&libc, &SUBSET));
    for jobs in [1, 4] {
        let campaign = Campaign::new(&CampaignConfig {
            jobs,
            ..CampaignConfig::default()
        })
        .unwrap();
        let (decls, _metrics) = campaign.analyze(&libc, &SUBSET).unwrap();
        assert_eq!(
            serial,
            decls_to_xml(&decls),
            "declaration XML changed at --jobs {jobs}"
        );
    }
}

#[test]
fn report_body_is_byte_identical_with_cow_on_and_off_at_any_jobs() {
    let libc = Libc::standard();
    let decls = analyze(&libc, &SUBSET);
    let mut bodies = Vec::new();
    for jobs in [1, 3] {
        for containment in [Containment::Cow, Containment::DeepClone] {
            let campaign = Campaign::new(&CampaignConfig {
                jobs,
                ..CampaignConfig::default()
            })
            .unwrap();
            let ballista = ballista_with(containment);
            let (report, _metrics, stats) =
                campaign.evaluate_traced(&libc, &ballista, Mode::FullAuto, decls.clone());
            campaign.finish().unwrap();
            bodies.push((jobs, containment, report_body(&report, &stats)));
        }
    }
    let (_, _, reference) = &bodies[0];
    for (jobs, containment, body) in &bodies {
        assert_eq!(
            body, reference,
            "report body changed at jobs={jobs} containment={containment:?}"
        );
    }
}
