//! End-to-end campaign orchestrator acceptance: worker-count
//! invariance, persistent-cache round trips, and the event journal.

use std::fs;
use std::path::PathBuf;

use healers::ballista::{Ballista, Mode};
use healers::campaign::{json, Campaign, CampaignConfig};
use healers::core::{analyze, decls_to_xml};
use healers::libc::Libc;

const FUNCS: &[&str] = &["asctime", "strcpy", "strlen", "abs", "fclose", "isatty"];

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("healers-campaign-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn campaign_output_is_byte_identical_to_the_serial_pipeline() {
    let libc = Libc::standard();
    let serial = decls_to_xml(&analyze(&libc, FUNCS));
    for jobs in [1, 8] {
        let campaign = Campaign::new(&CampaignConfig {
            jobs,
            ..CampaignConfig::default()
        })
        .unwrap();
        let (decls, _) = campaign.analyze(&libc, FUNCS).unwrap();
        assert_eq!(decls_to_xml(&decls), serial, "jobs={jobs}");
        campaign.finish().unwrap();
    }
}

#[test]
fn evaluation_reports_are_worker_count_invariant() {
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen", "abs", "fgetc"])
        .with_cap(60)
        .with_seed(42);
    let run = |jobs: usize| {
        let campaign = Campaign::new(&CampaignConfig {
            jobs,
            ..CampaignConfig::default()
        })
        .unwrap();
        let decls = ballista.analyze_targets(&libc);
        let mut renders = Vec::new();
        for mode in [Mode::Unwrapped, Mode::FullAuto, Mode::SemiAuto] {
            let (report, _) = campaign.evaluate(&libc, &ballista, mode, decls.clone());
            renders.push(report.render());
        }
        campaign.finish().unwrap();
        renders
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn serial_runner_matches_campaign_evaluation_exactly() {
    // The serial Figure-6 path derives per-function seeds exactly like
    // the orchestrator, so its reports are byte-identical to a campaign
    // evaluation at any worker count — not merely a different
    // deterministic sample.
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen", "abs", "fgetc", "closedir"])
        .with_cap(60)
        .with_seed(7);
    let decls = ballista.analyze_targets(&libc);
    for mode in [Mode::Unwrapped, Mode::FullAuto, Mode::SemiAuto] {
        let serial = ballista.run_with_decls(&libc, mode, decls.clone()).render();
        for jobs in [1, 8] {
            let campaign = Campaign::new(&CampaignConfig {
                jobs,
                ..CampaignConfig::default()
            })
            .unwrap();
            let (report, _) = campaign.evaluate(&libc, &ballista, mode, decls.clone());
            assert_eq!(report.render(), serial, "mode={mode:?} jobs={jobs}");
            campaign.finish().unwrap();
        }
    }
}

#[test]
fn warm_cache_skips_injection_and_journals_it() {
    let dir = scratch("warm");
    let cache_dir = dir.join("cache");
    let config = |journal: &str| CampaignConfig {
        jobs: 4,
        cache_dir: Some(cache_dir.clone()),
        journal_path: Some(dir.join(journal)),
    };
    let libc = Libc::standard();

    let cold = Campaign::new(&config("cold.jsonl")).unwrap();
    let (cold_decls, cold_metrics) = cold.analyze(&libc, FUNCS).unwrap();
    assert!(cold_metrics.injected_calls > 0);
    assert_eq!(cold_metrics.cache_misses, FUNCS.len() as u64);
    assert!(cold.finish().unwrap() > 0);

    let warm = Campaign::new(&config("warm.jsonl")).unwrap();
    let (warm_decls, warm_metrics) = warm.analyze(&libc, FUNCS).unwrap();
    assert_eq!(warm_metrics.injected_calls, 0, "warm cache must not inject");
    assert_eq!(warm_metrics.cache_hits, FUNCS.len() as u64);
    assert_eq!(
        decls_to_xml(&warm_decls),
        decls_to_xml(&cold_decls),
        "cache round-trip must be byte-identical"
    );
    warm.finish().unwrap();

    // Every journal line is valid JSON; the warm journal records one
    // cached event per function and no classifications.
    for (name, expect_cached) in [("cold.jsonl", 0), ("warm.jsonl", FUNCS.len())] {
        let text = fs::read_to_string(dir.join(name)).unwrap();
        let mut cached = 0;
        for (i, line) in text.lines().enumerate() {
            json::validate(line).unwrap_or_else(|e| panic!("{name} line {i}: {e}\n{line}"));
            assert!(line.contains(&format!("\"seq\":{i}")), "{name} line {i}");
            if line.contains("\"event\":\"cached\"") {
                cached += 1;
            }
        }
        assert_eq!(cached, expect_cached, "{name}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_new_seed_invalidates_nothing_but_a_changed_signature_does() {
    // The fingerprint covers the injector signature; the same functions
    // re-analyzed with identical settings always hit.
    let dir = scratch("stability");
    let config = CampaignConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        journal_path: None,
    };
    let libc = Libc::standard();
    for expected_hits in [0, 2] {
        let campaign = Campaign::new(&config).unwrap();
        let (_, metrics) = campaign.analyze(&libc, &["abs", "strlen"]).unwrap();
        assert_eq!(metrics.cache_hits, expected_hits);
        campaign.finish().unwrap();
    }
    // Entries are named <function>.<fingerprint>.xml.
    let mut names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 2);
    assert!(names[0].starts_with("abs.") && names[0].ends_with(".xml"));
    assert!(names[1].starts_with("strlen.") && names[1].ends_with(".xml"));
    fs::remove_dir_all(&dir).unwrap();
}
