//! End-to-end campaign orchestrator acceptance: worker-count
//! invariance, persistent-cache round trips, and the event journal.

use std::fs;
use std::path::PathBuf;

use healers::ballista::{Ballista, Mode};
use healers::campaign::{json, Campaign, CampaignConfig};
use healers::core::{analyze, decls_to_xml};
use healers::libc::Libc;

const FUNCS: &[&str] = &["asctime", "strcpy", "strlen", "abs", "fclose", "isatty"];

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("healers-campaign-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn campaign_output_is_byte_identical_to_the_serial_pipeline() {
    let libc = Libc::standard();
    let serial = decls_to_xml(&analyze(&libc, FUNCS));
    for jobs in [1, 8] {
        let campaign = Campaign::new(&CampaignConfig {
            jobs,
            ..CampaignConfig::default()
        })
        .unwrap();
        let (decls, _) = campaign.analyze(&libc, FUNCS).unwrap();
        assert_eq!(decls_to_xml(&decls), serial, "jobs={jobs}");
        campaign.finish().unwrap();
    }
}

#[test]
fn evaluation_reports_are_worker_count_invariant() {
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen", "abs", "fgetc"])
        .with_cap(60)
        .with_seed(42);
    let run = |jobs: usize| {
        let campaign = Campaign::new(&CampaignConfig {
            jobs,
            ..CampaignConfig::default()
        })
        .unwrap();
        let decls = ballista.analyze_targets(&libc);
        let mut renders = Vec::new();
        for mode in [Mode::Unwrapped, Mode::FullAuto, Mode::SemiAuto] {
            let (report, _) = campaign.evaluate(&libc, &ballista, mode, decls.clone());
            renders.push(report.render());
        }
        campaign.finish().unwrap();
        renders
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn serial_runner_matches_campaign_evaluation_exactly() {
    // The serial Figure-6 path derives per-function seeds exactly like
    // the orchestrator, so its reports are byte-identical to a campaign
    // evaluation at any worker count — not merely a different
    // deterministic sample.
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen", "abs", "fgetc", "closedir"])
        .with_cap(60)
        .with_seed(7);
    let decls = ballista.analyze_targets(&libc);
    for mode in [Mode::Unwrapped, Mode::FullAuto, Mode::SemiAuto] {
        let serial = ballista.run_with_decls(&libc, mode, decls.clone()).render();
        for jobs in [1, 8] {
            let campaign = Campaign::new(&CampaignConfig {
                jobs,
                ..CampaignConfig::default()
            })
            .unwrap();
            let (report, _) = campaign.evaluate(&libc, &ballista, mode, decls.clone());
            assert_eq!(report.render(), serial, "mode={mode:?} jobs={jobs}");
            campaign.finish().unwrap();
        }
    }
}

#[test]
fn warm_cache_skips_injection_and_journals_it() {
    let dir = scratch("warm");
    let cache_dir = dir.join("cache");
    let config = |journal: &str| CampaignConfig {
        jobs: 4,
        cache_dir: Some(cache_dir.clone()),
        journal_path: Some(dir.join(journal)),
        trace_path: None,
    };
    let libc = Libc::standard();

    let cold = Campaign::new(&config("cold.jsonl")).unwrap();
    let (cold_decls, cold_metrics) = cold.analyze(&libc, FUNCS).unwrap();
    assert!(cold_metrics.injected_calls > 0);
    assert_eq!(cold_metrics.cache_misses, FUNCS.len() as u64);
    assert!(cold.finish().unwrap() > 0);

    let warm = Campaign::new(&config("warm.jsonl")).unwrap();
    let (warm_decls, warm_metrics) = warm.analyze(&libc, FUNCS).unwrap();
    assert_eq!(warm_metrics.injected_calls, 0, "warm cache must not inject");
    assert_eq!(warm_metrics.cache_hits, FUNCS.len() as u64);
    assert_eq!(
        decls_to_xml(&warm_decls),
        decls_to_xml(&cold_decls),
        "cache round-trip must be byte-identical"
    );
    warm.finish().unwrap();

    // Every journal line is valid JSON; the warm journal records one
    // cached event per function and no classifications.
    for (name, expect_cached) in [("cold.jsonl", 0), ("warm.jsonl", FUNCS.len())] {
        let text = fs::read_to_string(dir.join(name)).unwrap();
        let mut cached = 0;
        for (i, line) in text.lines().enumerate() {
            json::validate(line).unwrap_or_else(|e| panic!("{name} line {i}: {e}\n{line}"));
            assert!(line.contains(&format!("\"seq\":{i}")), "{name} line {i}");
            if line.contains("\"event\":\"cached\"") {
                cached += 1;
            }
        }
        assert_eq!(cached, expect_cached, "{name}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_export_is_valid_chrome_json_covering_the_whole_run() {
    let dir = scratch("trace");
    let trace_path = dir.join("campaign.trace.json");
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen", "abs"])
        .with_cap(20)
        .with_seed(11);
    let campaign = Campaign::new(&CampaignConfig {
        jobs: 4,
        trace_path: Some(trace_path.clone()),
        ..CampaignConfig::default()
    })
    .unwrap();
    let (decls, _) = campaign
        .analyze(&libc, &["strcpy", "strlen", "abs"])
        .unwrap();
    let _ = campaign.evaluate(&libc, &ballista, Mode::FullAuto, decls);
    campaign.finish().unwrap();

    let text = fs::read_to_string(&trace_path).unwrap();
    json::validate(text.trim()).unwrap();
    assert!(text.starts_with("{\"traceEvents\":["));
    // Injection spans from the analyze phase, evaluation spans from the
    // evaluate phase, and the two scheduler counter tracks.
    for needle in [
        "\"name\":\"inject:strcpy\",\"ph\":\"X\"",
        "\"name\":\"eval:Full-Auto Wrapped:strlen\",\"ph\":\"X\"",
        "\"name\":\"workers\",\"ph\":\"C\"",
        "\"name\":\"pending\",\"ph\":\"C\"",
    ] {
        assert!(text.contains(needle), "missing {needle}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn telemetry_counters_are_worker_count_invariant() {
    // The deterministic half of WrapperStats — everything `healers
    // report` prints by default — must not depend on `--jobs`. (The
    // latency histograms are empty here: the telemetry gate is off.)
    let libc = Libc::standard();
    let ballista = Ballista::new()
        .with_functions(&["strcpy", "strlen", "fclose"])
        .with_cap(20)
        .with_seed(42);
    let decls = ballista.analyze_targets(&libc);
    let run = |jobs: usize| {
        let campaign = Campaign::new(&CampaignConfig {
            jobs,
            ..CampaignConfig::default()
        })
        .unwrap();
        let (report, _, stats) =
            campaign.evaluate_traced(&libc, &ballista, Mode::FullAuto, decls.clone());
        campaign.finish().unwrap();
        (report.render(), stats)
    };
    let (render1, stats1) = run(1);
    let (render4, stats4) = run(4);
    assert_eq!(render1, render4);
    assert_eq!(stats1.calls, stats4.calls);
    assert_eq!(stats1.wrapped_calls, stats4.wrapped_calls);
    assert_eq!(stats1.checks, stats4.checks);
    assert_eq!(stats1.violations, stats4.violations);
    assert_eq!(stats1.check_cache_hits, stats4.check_cache_hits);
    assert_eq!(stats1.check_outcomes, stats4.check_outcomes);
    assert!(stats1.calls > 0);
    assert!(
        stats1.per_function.is_empty() && stats4.per_function.is_empty(),
        "latency telemetry must stay off without the gate"
    );
}

#[test]
fn journal_drop_flushes_and_post_shutdown_sends_are_harmless() {
    // Regression: a campaign that is dropped without finish() must not
    // lose journal lines, and a worker still holding a sender after
    // shutdown must not panic the process.
    let dir = scratch("hardening");
    let journal_path = dir.join("dropped.jsonl");
    let libc = Libc::standard();
    let late_sender;
    {
        let campaign = Campaign::new(&CampaignConfig {
            jobs: 2,
            journal_path: Some(journal_path.clone()),
            ..CampaignConfig::default()
        })
        .unwrap();
        let (_, metrics) = campaign.analyze(&libc, &["abs", "strlen"]).unwrap();
        assert_eq!(metrics.functions, 2);
        late_sender = campaign.journal_sender();
        // No finish(): Drop must flush the sink and join the drainer.
    }
    let text = fs::read_to_string(&journal_path).unwrap();
    for kind in ["\"event\":\"started\"", "\"event\":\"classified\""] {
        let n = text.lines().filter(|l| l.contains(kind)).count();
        assert_eq!(n, 2, "one {kind} per function:\n{text}");
    }
    for line in text.lines() {
        json::validate(line).unwrap();
    }
    // The campaign (and its drainer) are gone; emitting is a no-op.
    late_sender.emit(healers::campaign::CampaignEvent::Started {
        function: "ghost".into(),
    });
    assert_eq!(fs::read_to_string(&journal_path).unwrap(), text);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_new_seed_invalidates_nothing_but_a_changed_signature_does() {
    // The fingerprint covers the injector signature; the same functions
    // re-analyzed with identical settings always hit.
    let dir = scratch("stability");
    let config = CampaignConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        journal_path: None,
        trace_path: None,
    };
    let libc = Libc::standard();
    for expected_hits in [0, 2] {
        let campaign = Campaign::new(&config).unwrap();
        let (_, metrics) = campaign.analyze(&libc, &["abs", "strlen"]).unwrap();
        assert_eq!(metrics.cache_hits, expected_hits);
        campaign.finish().unwrap();
    }
    // Entries are named <function>.<fingerprint>.xml.
    let mut names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 2);
    assert!(names[0].starts_with("abs.") && names[0].ends_with(".xml"));
    assert!(names[1].starts_with("strlen.") && names[1].ends_with(".xml"));
    fs::remove_dir_all(&dir).unwrap();
}
