//! Simulated kernel for HEALERS.
//!
//! The simulated C library ([`healers_libc`](https://docs.rs) in this
//! workspace) needs an operating system underneath it: `fopen` opens real
//! file descriptors, the wrapper's FILE check calls `fstat`, `opendir`
//! iterates directory entries, and `cfsetispeed` manipulates termios
//! state. This crate provides that kernel as deterministic in-memory
//! state:
//!
//! * [`Vfs`] — an inode-based filesystem with paths, directories,
//!   permissions and a working directory,
//! * [`Kernel`] — the syscall surface (open/read/write/close/lseek/stat/
//!   dup/pipe/directory iteration/termios/clock), with a POSIX-style file
//!   descriptor table and errno-coded failures,
//! * [`Termios`] — terminal attributes incl. the input/output baud rates
//!   that the paper's `cfsetispeed`/`cfsetospeed` anecdote exercises,
//! * [`errno`] — the errno constants shared by the whole workspace.
//!
//! Everything is `Clone`, so a kernel image can be snapshotted together
//! with the process memory for fault containment.
//!
//! # Examples
//!
//! ```
//! use healers_os::{Kernel, OpenFlags};
//!
//! let mut k = Kernel::with_standard_layout();
//! k.write_file("/tmp/greeting", b"hello").unwrap();
//! let fd = k.open("/tmp/greeting", OpenFlags::read_only(), 0o644).unwrap();
//! assert_eq!(k.read(fd, 5).unwrap(), b"hello");
//! k.close(fd).unwrap();
//! ```

pub mod errno;
pub mod fs;
pub mod kernel;
pub mod tty;

pub use errno::Errno;
pub use fs::{FileStat, NodeId, NodeKind, Vfs};
pub use kernel::{DirEntry, Fd, Kernel, OpenFlags};
pub use tty::{Termios, B0, B115200, B19200, B38400, B9600};
