//! An inode-based in-memory filesystem.
//!
//! The inode table and every file's contents are `Arc`-shared, so
//! cloning a [`Vfs`] (world snapshots for fault containment) is O(1);
//! mutations unshare lazily via [`Arc::make_mut`] — the table on the
//! first namespace change, each file's bytes on the first write to it.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::errno::{self, Errno};

/// An inode number / node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

#[derive(Debug, Clone)]
enum NodeBody {
    // File contents are a shared frame: snapshots alias the bytes and a
    // write faults in a private copy of that file only.
    File { data: Arc<Vec<u8>> },
    Directory { entries: BTreeMap<String, NodeId> },
}

#[derive(Debug, Clone)]
struct Node {
    body: NodeBody,
    mode: u32,
    nlink: u32,
    /// Modification timestamp (simulated clock ticks).
    mtime: i64,
}

/// `stat`-style metadata for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: u32,
    /// File type and permission bits (`S_IFREG`/`S_IFDIR` + mode).
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Size in bytes (0 for directories).
    pub size: u32,
    /// Modification time.
    pub mtime: i64,
}

/// `S_IFREG`: regular file bit.
pub const S_IFREG: u32 = 0o100000;
/// `S_IFDIR`: directory bit.
pub const S_IFDIR: u32 = 0o040000;
/// `S_IFCHR`: character device bit (ttys).
pub const S_IFCHR: u32 = 0o020000;

/// An inode-based in-memory filesystem with a working directory.
///
/// `Clone` is O(1): the inode table is `Arc`-shared and copy-on-write.
#[derive(Debug, Clone)]
pub struct Vfs {
    nodes: Arc<BTreeMap<u32, Node>>,
    next_ino: u32,
    root: NodeId,
    cwd: NodeId,
}

/// Maximum path component length (like `NAME_MAX`).
pub const NAME_MAX: usize = 255;
/// Maximum total path length (like `PATH_MAX`).
pub const PATH_MAX: usize = 4096;

impl Vfs {
    /// A filesystem containing only `/`.
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            1,
            Node {
                body: NodeBody::Directory {
                    entries: BTreeMap::new(),
                },
                mode: S_IFDIR | 0o755,
                nlink: 2,
                mtime: 0,
            },
        );
        Vfs {
            nodes: Arc::new(nodes),
            next_ino: 2,
            root: NodeId(1),
            cwd: NodeId(1),
        }
    }

    /// A copy sharing no storage with `self` — the reference deep-copy
    /// path for world snapshots (plain `clone()` is copy-on-write).
    pub fn deep_clone(&self) -> Vfs {
        let nodes: BTreeMap<u32, Node> = self
            .nodes
            .iter()
            .map(|(&ino, node)| {
                let mut node = node.clone();
                if let NodeBody::File { data } = &mut node.body {
                    *data = Arc::new((**data).clone());
                }
                (ino, node)
            })
            .collect();
        Vfs {
            nodes: Arc::new(nodes),
            next_ino: self.next_ino,
            root: self.root,
            cwd: self.cwd,
        }
    }

    /// The root directory.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The current working directory.
    pub fn cwd(&self) -> NodeId {
        self.cwd
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[&id.0]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        Arc::make_mut(&mut self.nodes)
            .get_mut(&id.0)
            .expect("dangling NodeId")
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        match self.node(id).body {
            NodeBody::File { .. } => NodeKind::File,
            NodeBody::Directory { .. } => NodeKind::Directory,
        }
    }

    /// Resolve a path to a node.
    ///
    /// # Errors
    ///
    /// `ENOENT` for missing components, `ENOTDIR` when a file is used as a
    /// directory, `ENAMETOOLONG` for oversized paths, `EINVAL` for empty
    /// paths.
    pub fn resolve(&self, path: &str) -> Result<NodeId, Errno> {
        if path.is_empty() {
            return Err(errno::ENOENT);
        }
        if path.len() > PATH_MAX {
            return Err(errno::ENAMETOOLONG);
        }
        let mut cur = if path.starts_with('/') {
            self.root
        } else {
            self.cwd
        };
        for comp in path.split('/') {
            match comp {
                "" | "." => continue,
                ".." => {
                    // Parent tracking is implicit: search for the dir that
                    // contains `cur`. Root's parent is root.
                    cur = self.parent_of(cur).unwrap_or(self.root);
                }
                name => {
                    if name.len() > NAME_MAX {
                        return Err(errno::ENAMETOOLONG);
                    }
                    let NodeBody::Directory { entries } = &self.node(cur).body else {
                        return Err(errno::ENOTDIR);
                    };
                    cur = *entries.get(name).ok_or(errno::ENOENT)?;
                }
            }
        }
        Ok(cur)
    }

    fn parent_of(&self, child: NodeId) -> Option<NodeId> {
        for (ino, node) in self.nodes.iter() {
            if let NodeBody::Directory { entries } = &node.body {
                if entries.values().any(|&v| v == child) {
                    return Some(NodeId(*ino));
                }
            }
        }
        None
    }

    /// Split a path into (parent directory node, final component).
    ///
    /// # Errors
    ///
    /// Propagates resolution errors for the parent; `EINVAL` when the path
    /// has no final component (e.g. `/`).
    pub fn resolve_parent(&self, path: &str) -> Result<(NodeId, String), Errno> {
        let trimmed = path.trim_end_matches('/');
        if trimmed.is_empty() {
            return Err(errno::EINVAL);
        }
        match trimmed.rfind('/') {
            Some(idx) => {
                let (dir, name) = trimmed.split_at(idx);
                let dir = if dir.is_empty() { "/" } else { dir };
                Ok((self.resolve(dir)?, name[1..].to_string()))
            }
            None => Ok((self.cwd, trimmed.to_string())),
        }
    }

    /// Create (or truncate) a regular file, returning its node.
    ///
    /// # Errors
    ///
    /// `EISDIR` if the path names an existing directory, plus resolution
    /// errors.
    pub fn create_file(&mut self, path: &str, mode: u32, now: i64) -> Result<NodeId, Errno> {
        if let Ok(existing) = self.resolve(path) {
            return match &mut self.node_mut(existing).body {
                NodeBody::File { data } => {
                    Arc::make_mut(data).clear();
                    Ok(existing)
                }
                NodeBody::Directory { .. } => Err(errno::EISDIR),
            };
        }
        let (parent, name) = self.resolve_parent(path)?;
        if name.len() > NAME_MAX {
            return Err(errno::ENAMETOOLONG);
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        Arc::make_mut(&mut self.nodes).insert(
            ino,
            Node {
                body: NodeBody::File {
                    data: Arc::new(Vec::new()),
                },
                mode: S_IFREG | (mode & 0o777),
                nlink: 1,
                mtime: now,
            },
        );
        let NodeBody::Directory { entries } = &mut self.node_mut(parent).body else {
            return Err(errno::ENOTDIR);
        };
        entries.insert(name, NodeId(ino));
        Ok(NodeId(ino))
    }

    /// Create a directory.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the path already exists, plus resolution errors.
    pub fn mkdir(&mut self, path: &str, mode: u32, now: i64) -> Result<NodeId, Errno> {
        if self.resolve(path).is_ok() {
            return Err(errno::EEXIST);
        }
        let (parent, name) = self.resolve_parent(path)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        Arc::make_mut(&mut self.nodes).insert(
            ino,
            Node {
                body: NodeBody::Directory {
                    entries: BTreeMap::new(),
                },
                mode: S_IFDIR | (mode & 0o777),
                nlink: 2,
                mtime: now,
            },
        );
        let NodeBody::Directory { entries } = &mut self.node_mut(parent).body else {
            return Err(errno::ENOTDIR);
        };
        entries.insert(name, NodeId(ino));
        Ok(NodeId(ino))
    }

    /// Remove a file.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories, plus resolution errors.
    pub fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        let id = self.resolve(path)?;
        if self.kind(id) == NodeKind::Directory {
            return Err(errno::EISDIR);
        }
        let (parent, name) = self.resolve_parent(path)?;
        if let NodeBody::Directory { entries } = &mut self.node_mut(parent).body {
            entries.remove(&name);
        }
        Arc::make_mut(&mut self.nodes).remove(&id.0);
        Ok(())
    }

    /// Remove an empty directory.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` for files, `ENOTEMPTY` for non-empty directories.
    pub fn rmdir(&mut self, path: &str) -> Result<(), Errno> {
        let id = self.resolve(path)?;
        match &self.node(id).body {
            NodeBody::File { .. } => return Err(errno::ENOTDIR),
            NodeBody::Directory { entries } => {
                if !entries.is_empty() {
                    return Err(errno::ENOTEMPTY);
                }
            }
        }
        let (parent, name) = self.resolve_parent(path)?;
        if let NodeBody::Directory { entries } = &mut self.node_mut(parent).body {
            entries.remove(&name);
        }
        Arc::make_mut(&mut self.nodes).remove(&id.0);
        Ok(())
    }

    /// Change the working directory.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` if the path is not a directory, plus resolution errors.
    pub fn chdir(&mut self, path: &str) -> Result<(), Errno> {
        let id = self.resolve(path)?;
        if self.kind(id) != NodeKind::Directory {
            return Err(errno::ENOTDIR);
        }
        self.cwd = id;
        Ok(())
    }

    /// The absolute path of the working directory.
    pub fn cwd_path(&self) -> String {
        self.path_of(self.cwd).unwrap_or_else(|| "/".to_string())
    }

    fn path_of(&self, id: NodeId) -> Option<String> {
        if id == self.root {
            return Some("/".to_string());
        }
        let parent = self.parent_of(id)?;
        let NodeBody::Directory { entries } = &self.node(parent).body else {
            return None;
        };
        let name = entries.iter().find(|(_, &v)| v == id)?.0.clone();
        let pp = self.path_of(parent)?;
        Some(if pp == "/" {
            format!("/{name}")
        } else {
            format!("{pp}/{name}")
        })
    }

    /// `stat` metadata for a node.
    pub fn stat(&self, id: NodeId) -> FileStat {
        let n = self.node(id);
        FileStat {
            ino: id.0,
            mode: n.mode,
            nlink: n.nlink,
            size: match &n.body {
                NodeBody::File { data } => data.len() as u32,
                NodeBody::Directory { .. } => 0,
            },
            mtime: n.mtime,
        }
    }

    /// Read up to `len` bytes at `offset` from a file.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories.
    pub fn read_at(&self, id: NodeId, offset: u32, len: u32) -> Result<Vec<u8>, Errno> {
        match &self.node(id).body {
            NodeBody::File { data } => {
                let start = (offset as usize).min(data.len());
                let end = (start + len as usize).min(data.len());
                Ok(data[start..end].to_vec())
            }
            NodeBody::Directory { .. } => Err(errno::EISDIR),
        }
    }

    /// Write bytes at `offset` into a file, growing it as needed.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories.
    pub fn write_at(
        &mut self,
        id: NodeId,
        offset: u32,
        bytes: &[u8],
        now: i64,
    ) -> Result<u32, Errno> {
        match &mut self.node_mut(id).body {
            NodeBody::File { data } => {
                let data = Arc::make_mut(data);
                let end = offset as usize + bytes.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[offset as usize..end].copy_from_slice(bytes);
                Ok(bytes.len() as u32)
            }
            NodeBody::Directory { .. } => Err(errno::EISDIR),
        }
        .inspect(|_| self.node_mut(id).mtime = now)
    }

    /// Truncate a file to `len` bytes.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories.
    pub fn truncate(&mut self, id: NodeId, len: u32) -> Result<(), Errno> {
        match &mut self.node_mut(id).body {
            NodeBody::File { data } => {
                Arc::make_mut(data).resize(len as usize, 0);
                Ok(())
            }
            NodeBody::Directory { .. } => Err(errno::EISDIR),
        }
    }

    /// Directory entries (sorted by name) with their inode and kind.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` for files.
    pub fn list(&self, id: NodeId) -> Result<Vec<(String, NodeId, NodeKind)>, Errno> {
        match &self.node(id).body {
            NodeBody::Directory { entries } => Ok(entries
                .iter()
                .map(|(name, &nid)| (name.clone(), nid, self.kind(nid)))
                .collect()),
            NodeBody::File { .. } => Err(errno::ENOTDIR),
        }
    }

    /// Permission mode bits of a node.
    pub fn mode(&self, id: NodeId) -> u32 {
        self.node(id).mode
    }

    /// Rename a file or directory.
    ///
    /// # Errors
    ///
    /// Propagates resolution errors for either path.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno> {
        let id = self.resolve(from)?;
        let (old_parent, old_name) = self.resolve_parent(from)?;
        let (new_parent, new_name) = self.resolve_parent(to)?;
        if let NodeBody::Directory { entries } = &mut self.node_mut(old_parent).body {
            entries.remove(&old_name);
        }
        let NodeBody::Directory { entries } = &mut self.node_mut(new_parent).body else {
            return Err(errno::ENOTDIR);
        };
        entries.insert(new_name, id);
        Ok(())
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve() {
        let mut fs = Vfs::new();
        fs.mkdir("/tmp", 0o777, 0).unwrap();
        let f = fs.create_file("/tmp/a.txt", 0o644, 0).unwrap();
        assert_eq!(fs.resolve("/tmp/a.txt").unwrap(), f);
        assert_eq!(fs.kind(f), NodeKind::File);
        assert_eq!(fs.resolve("/tmp/missing").unwrap_err(), errno::ENOENT);
    }

    #[test]
    fn relative_paths_and_dots() {
        let mut fs = Vfs::new();
        fs.mkdir("/home", 0o755, 0).unwrap();
        fs.mkdir("/home/user", 0o755, 0).unwrap();
        fs.chdir("/home/user").unwrap();
        fs.create_file("notes", 0o644, 0).unwrap();
        assert!(fs.resolve("./notes").is_ok());
        assert!(fs.resolve("../user/notes").is_ok());
        assert_eq!(fs.cwd_path(), "/home/user");
    }

    #[test]
    fn read_write_roundtrip() {
        let mut fs = Vfs::new();
        let f = fs.create_file("/data", 0o644, 0).unwrap();
        fs.write_at(f, 0, b"hello world", 1).unwrap();
        assert_eq!(fs.read_at(f, 6, 5).unwrap(), b"world");
        assert_eq!(fs.stat(f).size, 11);
        // Sparse write grows with zeros.
        fs.write_at(f, 20, b"x", 2).unwrap();
        assert_eq!(fs.stat(f).size, 21);
        assert_eq!(fs.read_at(f, 15, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut fs = Vfs::new();
        fs.mkdir("/d", 0o755, 0).unwrap();
        fs.create_file("/d/f", 0o644, 0).unwrap();
        assert_eq!(fs.rmdir("/d").unwrap_err(), errno::ENOTEMPTY);
        assert_eq!(fs.unlink("/d").unwrap_err(), errno::EISDIR);
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.resolve("/d").unwrap_err(), errno::ENOENT);
    }

    #[test]
    fn listing_is_sorted() {
        let mut fs = Vfs::new();
        fs.mkdir("/d", 0o755, 0).unwrap();
        fs.create_file("/d/b", 0o644, 0).unwrap();
        fs.create_file("/d/a", 0o644, 0).unwrap();
        let names: Vec<_> = fs
            .list(fs.resolve("/d").unwrap())
            .unwrap()
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn file_as_directory_is_enotdir() {
        let mut fs = Vfs::new();
        fs.create_file("/f", 0o644, 0).unwrap();
        assert_eq!(fs.resolve("/f/x").unwrap_err(), errno::ENOTDIR);
        assert_eq!(fs.chdir("/f").unwrap_err(), errno::ENOTDIR);
    }

    #[test]
    fn create_truncates_existing() {
        let mut fs = Vfs::new();
        let f = fs.create_file("/f", 0o644, 0).unwrap();
        fs.write_at(f, 0, b"content", 0).unwrap();
        let f2 = fs.create_file("/f", 0o644, 1).unwrap();
        assert_eq!(f, f2);
        assert_eq!(fs.stat(f).size, 0);
    }

    #[test]
    fn rename_moves_entries() {
        let mut fs = Vfs::new();
        fs.mkdir("/a", 0o755, 0).unwrap();
        fs.mkdir("/b", 0o755, 0).unwrap();
        fs.create_file("/a/f", 0o644, 0).unwrap();
        fs.rename("/a/f", "/b/g").unwrap();
        assert!(fs.resolve("/a/f").is_err());
        assert!(fs.resolve("/b/g").is_ok());
    }

    #[test]
    fn long_names_rejected() {
        let mut fs = Vfs::new();
        let long = "x".repeat(NAME_MAX + 1);
        assert_eq!(
            fs.create_file(&format!("/{long}"), 0o644, 0).unwrap_err(),
            errno::ENAMETOOLONG
        );
    }
}
