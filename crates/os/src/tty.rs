//! Terminal devices and termios attributes.
//!
//! The paper's robustness evaluation includes the termios family
//! (`cfsetispeed`, `cfsetospeed`, `tcgetattr`, `tcsetattr`, …) and
//! specifically observes that `cfsetispeed` needs only *write* access to
//! its `struct termios` argument while `cfsetospeed` needs *read and
//! write* access. The kernel side modeled here stores the canonical
//! attributes per terminal; the `struct termios` image in simulated
//! memory is marshaled by the libc layer.

/// Baud-rate constant `B0` (hang up).
pub const B0: u32 = 0;
/// Baud-rate constant for 9600 baud.
pub const B9600: u32 = 0o000015;
/// Baud-rate constant for 19200 baud.
pub const B19200: u32 = 0o000016;
/// Baud-rate constant for 38400 baud.
pub const B38400: u32 = 0o000017;
/// Baud-rate constant for 115200 baud.
pub const B115200: u32 = 0o010002;

/// The set of valid baud-rate constants the simulated driver accepts.
pub const VALID_SPEEDS: &[u32] = &[
    B0, 0o000001, 0o000002, 0o000003, 0o000004, 0o000005, 0o000006, 0o000007, 0o000010, 0o000011,
    0o000012, 0o000013, 0o000014, B9600, B19200, B38400, B115200,
];

/// Number of control characters in `c_cc`.
pub const NCCS: usize = 32;

/// Kernel-side terminal attributes (the canonical copy; the `struct
/// termios` in process memory is a marshaled image of this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Termios {
    /// Input mode flags.
    pub c_iflag: u32,
    /// Output mode flags.
    pub c_oflag: u32,
    /// Control mode flags (includes the encoded line speed on real
    /// glibc; modeled separately here).
    pub c_cflag: u32,
    /// Local mode flags.
    pub c_lflag: u32,
    /// Line discipline.
    pub c_line: u8,
    /// Control characters.
    pub c_cc: [u8; NCCS],
    /// Input baud rate (a `VALID_SPEEDS` constant).
    pub c_ispeed: u32,
    /// Output baud rate (a `VALID_SPEEDS` constant).
    pub c_ospeed: u32,
}

impl Termios {
    /// Sane cooked-mode defaults at 9600 baud.
    pub fn sane() -> Self {
        Termios {
            c_iflag: 0o2400, // ICRNL|IXON
            c_oflag: 0o5,    // OPOST|ONLCR
            c_cflag: 0o277,  // CS8|CREAD|...
            c_lflag: 0o105073,
            c_line: 0,
            c_cc: [0; NCCS],
            c_ispeed: B9600,
            c_ospeed: B9600,
        }
    }

    /// Whether `speed` is a valid baud constant.
    pub fn is_valid_speed(speed: u32) -> bool {
        VALID_SPEEDS.contains(&speed)
    }
}

impl Default for Termios {
    fn default() -> Self {
        Termios::sane()
    }
}

/// A terminal device: attributes plus unread input and captured output.
#[derive(Debug, Clone, Default)]
pub struct Tty {
    /// Current attributes.
    pub termios: Termios,
    /// Bytes typed but not yet read.
    pub input: Vec<u8>,
    /// Bytes written to the terminal (captured for tests).
    pub output: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sane_defaults() {
        let t = Termios::sane();
        assert_eq!(t.c_ispeed, B9600);
        assert_eq!(t.c_ospeed, B9600);
    }

    #[test]
    fn speed_validation() {
        assert!(Termios::is_valid_speed(B38400));
        assert!(Termios::is_valid_speed(B0));
        assert!(!Termios::is_valid_speed(12345));
    }
}
