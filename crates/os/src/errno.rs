//! errno values of the simulated kernel (Linux i386 numbering).

/// An errno code. `0` means "no error".
pub type Errno = i32;

/// Operation not permitted.
pub const EPERM: Errno = 1;
/// No such file or directory.
pub const ENOENT: Errno = 2;
/// Interrupted system call.
pub const EINTR: Errno = 4;
/// I/O error.
pub const EIO: Errno = 5;
/// Bad file descriptor.
pub const EBADF: Errno = 9;
/// Out of memory.
pub const ENOMEM: Errno = 12;
/// Permission denied.
pub const EACCES: Errno = 13;
/// Bad address.
pub const EFAULT: Errno = 14;
/// File exists.
pub const EEXIST: Errno = 17;
/// Not a directory.
pub const ENOTDIR: Errno = 20;
/// Is a directory.
pub const EISDIR: Errno = 21;
/// Invalid argument.
pub const EINVAL: Errno = 22;
/// Too many open files in system.
pub const ENFILE: Errno = 23;
/// Too many open files.
pub const EMFILE: Errno = 24;
/// Inappropriate ioctl for device (not a tty).
pub const ENOTTY: Errno = 25;
/// No space left on device.
pub const ENOSPC: Errno = 28;
/// Illegal seek.
pub const ESPIPE: Errno = 29;
/// Read-only file system.
pub const EROFS: Errno = 30;
/// Broken pipe.
pub const EPIPE: Errno = 32;
/// Math argument out of domain.
pub const EDOM: Errno = 33;
/// Result out of range.
pub const ERANGE: Errno = 34;
/// File name too long.
pub const ENAMETOOLONG: Errno = 36;
/// Function not implemented.
pub const ENOSYS: Errno = 38;
/// Directory not empty.
pub const ENOTEMPTY: Errno = 39;

/// A short human-readable message for an errno value, as `strerror`
/// reports it.
pub fn strerror(e: Errno) -> &'static str {
    match e {
        0 => "Success",
        EPERM => "Operation not permitted",
        ENOENT => "No such file or directory",
        EINTR => "Interrupted system call",
        EIO => "Input/output error",
        EBADF => "Bad file descriptor",
        ENOMEM => "Cannot allocate memory",
        EACCES => "Permission denied",
        EFAULT => "Bad address",
        EEXIST => "File exists",
        ENOTDIR => "Not a directory",
        EISDIR => "Is a directory",
        EINVAL => "Invalid argument",
        ENFILE => "Too many open files in system",
        EMFILE => "Too many open files",
        ENOTTY => "Inappropriate ioctl for device",
        ENOSPC => "No space left on device",
        ESPIPE => "Illegal seek",
        EROFS => "Read-only file system",
        EPIPE => "Broken pipe",
        EDOM => "Numerical argument out of domain",
        ERANGE => "Numerical result out of range",
        ENAMETOOLONG => "File name too long",
        ENOSYS => "Function not implemented",
        ENOTEMPTY => "Directory not empty",
        _ => "Unknown error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_numbering() {
        assert_eq!(EINVAL, 22);
        assert_eq!(EBADF, 9);
        assert_eq!(ENOENT, 2);
    }

    #[test]
    fn strerror_messages() {
        assert_eq!(strerror(EINVAL), "Invalid argument");
        assert_eq!(strerror(0), "Success");
        assert_eq!(strerror(9999), "Unknown error");
    }
}
