//! The syscall surface: file descriptors, I/O, directories, terminals.

use std::collections::VecDeque;

use crate::errno::{self, Errno};
use crate::fs::{FileStat, NodeId, NodeKind, Vfs, S_IFCHR};
use crate::tty::{Termios, Tty};

/// A file descriptor.
pub type Fd = i32;

/// Open mode flags (a structured view of `O_RDONLY`/`O_WRONLY`/…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Permit reads.
    pub read: bool,
    /// Permit writes.
    pub write: bool,
    /// Position writes at end of file.
    pub append: bool,
    /// Create the file if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC`.
    pub fn write_create() -> Self {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub fn append() -> Self {
        OpenFlags {
            write: true,
            create: true,
            append: true,
            ..Default::default()
        }
    }
}

/// A directory entry as returned by the kernel's directory iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number.
    pub ino: u32,
    /// Entry name.
    pub name: String,
    /// `DT_REG` (8) or `DT_DIR` (4).
    pub d_type: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Desc {
    File(NodeId),
    Tty(usize),
    PipeRead(usize),
    PipeWrite(usize),
}

#[derive(Debug, Clone)]
struct OpenFile {
    desc: Desc,
    offset: u32,
    flags: OpenFlags,
}

#[derive(Debug, Clone, Default)]
struct Pipe {
    buf: VecDeque<u8>,
    write_open: bool,
}

/// Maximum number of open descriptors per process.
pub const OPEN_MAX: usize = 256;

/// The simulated kernel: filesystem + descriptor table + terminals + a
/// deterministic clock.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The filesystem.
    pub vfs: Vfs,
    fds: Vec<Option<OpenFile>>,
    ttys: Vec<Tty>,
    pipes: Vec<Pipe>,
    umask: u32,
    clock: i64,
    pid: i32,
}

impl Kernel {
    /// An empty kernel: bare root filesystem, no descriptors, one tty.
    pub fn new() -> Self {
        Kernel {
            vfs: Vfs::new(),
            fds: vec![None; OPEN_MAX],
            ttys: vec![Tty::default()],
            pipes: Vec::new(),
            umask: 0o022,
            clock: 1_000_000_000, // a fixed epoch; determinism over realism
            pid: 4242,
        }
    }

    /// A kernel with the standard layout: `/tmp`, `/etc`, `/home`, `/dev`,
    /// a few seed files, and fds 0/1/2 connected to the tty.
    pub fn with_standard_layout() -> Self {
        let mut k = Kernel::new();
        for d in ["/tmp", "/etc", "/home", "/dev", "/home/user"] {
            k.vfs.mkdir(d, 0o755, k.clock).unwrap();
        }
        k.write_file(
            "/etc/passwd",
            b"root:x:0:0:root:/root:/bin/sh\nuser:x:1000:1000::/home/user:/bin/sh\n",
        )
        .unwrap();
        k.write_file("/etc/hosts", b"127.0.0.1 localhost\n")
            .unwrap();
        k.write_file(
            "/home/user/data.txt",
            b"The quick brown fox jumps over the lazy dog.\n",
        )
        .unwrap();
        for fd in 0..3 {
            k.fds[fd] = Some(OpenFile {
                desc: Desc::Tty(0),
                offset: 0,
                flags: OpenFlags::read_write(),
            });
        }
        k
    }

    /// A copy sharing no storage with `self` — the reference deep-copy
    /// path for world snapshots. Plain `clone()` shares the filesystem
    /// copy-on-write; the descriptor table, terminals, and pipes are
    /// small and always copied eagerly.
    pub fn deep_clone(&self) -> Kernel {
        let mut k = self.clone();
        k.vfs = self.vfs.deep_clone();
        k
    }

    /// The simulated wall clock (seconds).
    pub fn now(&self) -> i64 {
        self.clock
    }

    /// Advance the clock.
    pub fn advance_clock(&mut self, secs: i64) {
        self.clock += secs;
    }

    /// The process id.
    pub fn getpid(&self) -> i32 {
        self.pid
    }

    /// Set the file-mode creation mask, returning the previous mask.
    pub fn umask(&mut self, mask: u32) -> u32 {
        std::mem::replace(&mut self.umask, mask & 0o777)
    }

    fn alloc_fd(&mut self) -> Result<Fd, Errno> {
        for (i, slot) in self.fds.iter().enumerate() {
            if slot.is_none() {
                return Ok(i as Fd);
            }
        }
        Err(errno::EMFILE)
    }

    fn entry(&self, fd: Fd) -> Result<&OpenFile, Errno> {
        if fd < 0 {
            return Err(errno::EBADF);
        }
        self.fds
            .get(fd as usize)
            .and_then(|e| e.as_ref())
            .ok_or(errno::EBADF)
    }

    fn entry_mut(&mut self, fd: Fd) -> Result<&mut OpenFile, Errno> {
        if fd < 0 {
            return Err(errno::EBADF);
        }
        self.fds
            .get_mut(fd as usize)
            .and_then(|e| e.as_mut())
            .ok_or(errno::EBADF)
    }

    /// Whether `fd` names an open descriptor.
    pub fn fd_is_open(&self, fd: Fd) -> bool {
        self.entry(fd).is_ok()
    }

    /// The open flags of a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for closed descriptors.
    pub fn fd_flags(&self, fd: Fd) -> Result<OpenFlags, Errno> {
        Ok(self.entry(fd)?.flags)
    }

    /// Open a file.
    ///
    /// # Errors
    ///
    /// Standard open errors: `ENOENT`, `EISDIR` for write access to a
    /// directory, `EACCES`, `EMFILE`.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> Result<Fd, Errno> {
        let node = match self.vfs.resolve(path) {
            Ok(n) => {
                if flags.truncate && self.vfs.kind(n) == NodeKind::File {
                    self.vfs.truncate(n, 0)?;
                }
                n
            }
            Err(errno::ENOENT) if flags.create => {
                let now = self.clock;
                self.vfs.create_file(path, mode & !self.umask, now)?
            }
            Err(e) => return Err(e),
        };
        if self.vfs.kind(node) == NodeKind::Directory && flags.write {
            return Err(errno::EISDIR);
        }
        let offset = if flags.append {
            self.vfs.stat(node).size
        } else {
            0
        };
        let fd = self.alloc_fd()?;
        self.fds[fd as usize] = Some(OpenFile {
            desc: Desc::File(node),
            offset,
            flags,
        });
        Ok(fd)
    }

    /// Close a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for closed descriptors.
    pub fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        let entry = self.entry(fd)?.clone();
        if let Desc::PipeWrite(p) = entry.desc {
            self.pipes[p].write_open = false;
        }
        self.fds[fd as usize] = None;
        Ok(())
    }

    /// Read up to `len` bytes from a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` if closed or not opened for reading; `EISDIR` for
    /// directory descriptors.
    pub fn read(&mut self, fd: Fd, len: u32) -> Result<Vec<u8>, Errno> {
        let entry = self.entry(fd)?.clone();
        if !entry.flags.read {
            return Err(errno::EBADF);
        }
        match entry.desc {
            Desc::File(node) => {
                if self.vfs.kind(node) == NodeKind::Directory {
                    return Err(errno::EISDIR);
                }
                let data = self.vfs.read_at(node, entry.offset, len)?;
                self.entry_mut(fd)?.offset += data.len() as u32;
                Ok(data)
            }
            Desc::Tty(t) => {
                let tty = &mut self.ttys[t];
                let n = (len as usize).min(tty.input.len());
                Ok(tty.input.drain(..n).collect())
            }
            Desc::PipeRead(p) => {
                let pipe = &mut self.pipes[p];
                let n = (len as usize).min(pipe.buf.len());
                Ok(pipe.buf.drain(..n).collect())
            }
            Desc::PipeWrite(_) => Err(errno::EBADF),
        }
    }

    /// Write bytes to a descriptor, returning the count written.
    ///
    /// # Errors
    ///
    /// `EBADF` if closed or not opened for writing; `EPIPE` for a pipe
    /// with no reader.
    pub fn write(&mut self, fd: Fd, bytes: &[u8]) -> Result<u32, Errno> {
        let entry = self.entry(fd)?.clone();
        if !entry.flags.write {
            return Err(errno::EBADF);
        }
        match entry.desc {
            Desc::File(node) => {
                let now = self.clock;
                let n = self.vfs.write_at(node, entry.offset, bytes, now)?;
                self.entry_mut(fd)?.offset += n;
                Ok(n)
            }
            Desc::Tty(t) => {
                self.ttys[t].output.extend_from_slice(bytes);
                Ok(bytes.len() as u32)
            }
            Desc::PipeWrite(p) => {
                self.pipes[p].buf.extend(bytes.iter().copied());
                Ok(bytes.len() as u32)
            }
            Desc::PipeRead(_) => Err(errno::EBADF),
        }
    }

    /// Reposition a file descriptor. `whence`: 0=SET, 1=CUR, 2=END.
    ///
    /// # Errors
    ///
    /// `EBADF`, `ESPIPE` for ttys/pipes, `EINVAL` for bad whence or a
    /// negative result.
    pub fn lseek(&mut self, fd: Fd, offset: i64, whence: i32) -> Result<u32, Errno> {
        let entry = self.entry(fd)?.clone();
        let Desc::File(node) = entry.desc else {
            return Err(errno::ESPIPE);
        };
        let size = self.vfs.stat(node).size as i64;
        let base = match whence {
            0 => 0,
            1 => entry.offset as i64,
            2 => size,
            _ => return Err(errno::EINVAL),
        };
        let target = base + offset;
        if !(0..=u32::MAX as i64).contains(&target) {
            return Err(errno::EINVAL);
        }
        self.entry_mut(fd)?.offset = target as u32;
        Ok(target as u32)
    }

    /// Duplicate a descriptor onto the lowest free slot.
    ///
    /// # Errors
    ///
    /// `EBADF`, `EMFILE`.
    pub fn dup(&mut self, fd: Fd) -> Result<Fd, Errno> {
        let entry = self.entry(fd)?.clone();
        let new = self.alloc_fd()?;
        self.fds[new as usize] = Some(entry);
        Ok(new)
    }

    /// Duplicate `fd` onto `newfd`, closing `newfd` first if open.
    ///
    /// # Errors
    ///
    /// `EBADF` for a bad source or an out-of-range target.
    pub fn dup2(&mut self, fd: Fd, newfd: Fd) -> Result<Fd, Errno> {
        let entry = self.entry(fd)?.clone();
        if newfd < 0 || newfd as usize >= OPEN_MAX {
            return Err(errno::EBADF);
        }
        self.fds[newfd as usize] = Some(entry);
        Ok(newfd)
    }

    /// Create a pipe, returning (read end, write end).
    ///
    /// # Errors
    ///
    /// `EMFILE` when the descriptor table is full.
    pub fn pipe(&mut self) -> Result<(Fd, Fd), Errno> {
        let p = self.pipes.len();
        self.pipes.push(Pipe {
            buf: VecDeque::new(),
            write_open: true,
        });
        let r = self.alloc_fd()?;
        self.fds[r as usize] = Some(OpenFile {
            desc: Desc::PipeRead(p),
            offset: 0,
            flags: OpenFlags::read_only(),
        });
        let w = self.alloc_fd()?;
        self.fds[w as usize] = Some(OpenFile {
            desc: Desc::PipeWrite(p),
            offset: 0,
            flags: OpenFlags {
                write: true,
                ..Default::default()
            },
        });
        Ok((r, w))
    }

    /// `stat` by path.
    ///
    /// # Errors
    ///
    /// Path resolution errors.
    pub fn stat(&self, path: &str) -> Result<FileStat, Errno> {
        Ok(self.vfs.stat(self.vfs.resolve(path)?))
    }

    /// `fstat` by descriptor. Terminals report a character device.
    ///
    /// # Errors
    ///
    /// `EBADF` for closed descriptors.
    pub fn fstat(&self, fd: Fd) -> Result<FileStat, Errno> {
        let entry = self.entry(fd)?;
        match entry.desc {
            Desc::File(node) => Ok(self.vfs.stat(node)),
            Desc::Tty(_) => Ok(FileStat {
                ino: 0,
                mode: S_IFCHR | 0o620,
                nlink: 1,
                size: 0,
                mtime: self.clock,
            }),
            Desc::PipeRead(_) | Desc::PipeWrite(_) => Ok(FileStat {
                ino: 0,
                mode: 0o010600, // FIFO
                nlink: 1,
                size: 0,
                mtime: self.clock,
            }),
        }
    }

    /// `access`: check whether `path` exists (mode checks are advisory).
    ///
    /// # Errors
    ///
    /// Path resolution errors.
    pub fn access(&self, path: &str, _mode: i32) -> Result<(), Errno> {
        self.vfs.resolve(path).map(|_| ())
    }

    /// Whether a descriptor refers to a terminal.
    ///
    /// # Errors
    ///
    /// `EBADF` for closed descriptors, `ENOTTY` for non-terminals (so the
    /// caller can distinguish "no" from "bad fd", as `isatty` must).
    pub fn isatty(&self, fd: Fd) -> Result<(), Errno> {
        match self.entry(fd)?.desc {
            Desc::Tty(_) => Ok(()),
            _ => Err(errno::ENOTTY),
        }
    }

    /// Read a terminal's attributes.
    ///
    /// # Errors
    ///
    /// `EBADF`, `ENOTTY`.
    pub fn tcgetattr(&self, fd: Fd) -> Result<Termios, Errno> {
        match self.entry(fd)?.desc {
            Desc::Tty(t) => Ok(self.ttys[t].termios.clone()),
            _ => Err(errno::ENOTTY),
        }
    }

    /// Set a terminal's attributes.
    ///
    /// # Errors
    ///
    /// `EBADF`, `ENOTTY`, `EINVAL` for invalid baud rates.
    pub fn tcsetattr(&mut self, fd: Fd, attrs: Termios) -> Result<(), Errno> {
        if !Termios::is_valid_speed(attrs.c_ispeed) || !Termios::is_valid_speed(attrs.c_ospeed) {
            return Err(errno::EINVAL);
        }
        match self.entry(fd)?.desc {
            Desc::Tty(t) => {
                self.ttys[t].termios = attrs;
                Ok(())
            }
            _ => Err(errno::ENOTTY),
        }
    }

    /// Queue bytes as terminal input (test helper).
    pub fn type_input(&mut self, tty: usize, bytes: &[u8]) {
        self.ttys[tty].input.extend_from_slice(bytes);
    }

    /// The bytes written to a terminal so far (test helper).
    pub fn tty_output(&self, tty: usize) -> &[u8] {
        &self.ttys[tty].output
    }

    /// Directory iteration: the `index`-th entry of the directory open at
    /// `fd`.
    ///
    /// # Errors
    ///
    /// `EBADF` for closed descriptors, `ENOTDIR` for non-directories.
    pub fn read_dir_entry(&self, fd: Fd, index: u32) -> Result<Option<DirEntry>, Errno> {
        let entry = self.entry(fd)?;
        let Desc::File(node) = entry.desc else {
            return Err(errno::ENOTDIR);
        };
        let list = self.vfs.list(node)?;
        Ok(list.get(index as usize).map(|(name, id, kind)| DirEntry {
            ino: id.0,
            name: name.clone(),
            d_type: match kind {
                NodeKind::File => 8,      // DT_REG
                NodeKind::Directory => 4, // DT_DIR
            },
        }))
    }

    /// Convenience: create/overwrite a file with contents.
    ///
    /// # Errors
    ///
    /// Path resolution / creation errors.
    pub fn write_file(&mut self, path: &str, contents: &[u8]) -> Result<(), Errno> {
        let now = self.clock;
        let node = self.vfs.create_file(path, 0o644, now)?;
        self.vfs.write_at(node, 0, contents, now)?;
        Ok(())
    }

    /// Convenience: read a whole file.
    ///
    /// # Errors
    ///
    /// Path resolution errors.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, Errno> {
        let node = self.vfs.resolve(path)?;
        let size = self.vfs.stat(node).size;
        self.vfs.read_at(node, 0, size)
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::with_standard_layout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_write_close() {
        let mut k = Kernel::with_standard_layout();
        let fd = k.open("/tmp/f", OpenFlags::write_create(), 0o644).unwrap();
        assert_eq!(k.write(fd, b"hello").unwrap(), 5);
        k.close(fd).unwrap();

        let fd = k.open("/tmp/f", OpenFlags::read_only(), 0).unwrap();
        assert_eq!(k.read(fd, 100).unwrap(), b"hello");
        // Read past EOF returns empty.
        assert!(k.read(fd, 100).unwrap().is_empty());
        // Writing a read-only fd is EBADF.
        assert_eq!(k.write(fd, b"x").unwrap_err(), errno::EBADF);
        k.close(fd).unwrap();
        assert_eq!(k.close(fd).unwrap_err(), errno::EBADF);
    }

    #[test]
    fn lseek_semantics() {
        let mut k = Kernel::with_standard_layout();
        let fd = k.open("/tmp/f", OpenFlags::write_create(), 0o644).unwrap();
        k.write(fd, b"0123456789").unwrap();
        assert_eq!(k.lseek(fd, -4, 2).unwrap(), 6);
        assert_eq!(k.lseek(fd, 2, 1).unwrap(), 8);
        assert_eq!(k.lseek(fd, 0, 0).unwrap(), 0);
        assert_eq!(k.lseek(fd, -1, 0).unwrap_err(), errno::EINVAL);
        assert_eq!(k.lseek(fd, 0, 9).unwrap_err(), errno::EINVAL);
        assert_eq!(k.lseek(0, 0, 0).unwrap_err(), errno::ESPIPE);
        assert_eq!(k.lseek(77, 0, 0).unwrap_err(), errno::EBADF);
    }

    #[test]
    fn bad_fd_is_ebadf_never_a_crash() {
        let mut k = Kernel::with_standard_layout();
        for fd in [-1, 77, 9999] {
            assert_eq!(k.read(fd, 1).unwrap_err(), errno::EBADF);
            assert_eq!(k.write(fd, b"x").unwrap_err(), errno::EBADF);
            assert_eq!(k.fstat(fd).unwrap_err(), errno::EBADF);
        }
    }

    #[test]
    fn dup_and_dup2_share_state() {
        let mut k = Kernel::with_standard_layout();
        let fd = k.open("/etc/passwd", OpenFlags::read_only(), 0).unwrap();
        let d = k.dup(fd).unwrap();
        assert_ne!(fd, d);
        assert!(k.fd_is_open(d));
        let e = k.dup2(fd, 10).unwrap();
        assert_eq!(e, 10);
        assert!(k.fd_is_open(10));
        assert_eq!(k.dup(999).unwrap_err(), errno::EBADF);
        assert_eq!(k.dup2(fd, -3).unwrap_err(), errno::EBADF);
    }

    #[test]
    fn tty_io_and_isatty() {
        let mut k = Kernel::with_standard_layout();
        assert!(k.isatty(0).is_ok());
        k.type_input(0, b"typed");
        assert_eq!(k.read(0, 3).unwrap(), b"typ");
        k.write(1, b"printed").unwrap();
        assert_eq!(k.tty_output(0), b"printed");
        let fd = k.open("/etc/hosts", OpenFlags::read_only(), 0).unwrap();
        assert_eq!(k.isatty(fd).unwrap_err(), errno::ENOTTY);
    }

    #[test]
    fn termios_roundtrip_and_validation() {
        let mut k = Kernel::with_standard_layout();
        let mut t = k.tcgetattr(0).unwrap();
        t.c_ispeed = crate::tty::B38400;
        k.tcsetattr(0, t.clone()).unwrap();
        assert_eq!(k.tcgetattr(0).unwrap().c_ispeed, crate::tty::B38400);
        t.c_ospeed = 31337;
        assert_eq!(k.tcsetattr(0, t).unwrap_err(), errno::EINVAL);
        assert_eq!(k.tcgetattr(50).unwrap_err(), errno::EBADF);
    }

    #[test]
    fn directory_iteration() {
        let mut k = Kernel::with_standard_layout();
        k.write_file("/tmp/a", b"1").unwrap();
        k.write_file("/tmp/b", b"2").unwrap();
        let fd = k.open("/tmp", OpenFlags::read_only(), 0).unwrap();
        let e0 = k.read_dir_entry(fd, 0).unwrap().unwrap();
        let e1 = k.read_dir_entry(fd, 1).unwrap().unwrap();
        assert_eq!(e0.name, "a");
        assert_eq!(e1.name, "b");
        assert_eq!(e0.d_type, 8);
        assert!(k.read_dir_entry(fd, 2).unwrap().is_none());
        // Iterating a regular file is ENOTDIR.
        let f = k.open("/tmp/a", OpenFlags::read_only(), 0).unwrap();
        assert_eq!(k.read_dir_entry(f, 0).unwrap_err(), errno::ENOTDIR);
    }

    #[test]
    fn pipes_move_bytes() {
        let mut k = Kernel::with_standard_layout();
        let (r, w) = k.pipe().unwrap();
        k.write(w, b"through the pipe").unwrap();
        assert_eq!(k.read(r, 7).unwrap(), b"through");
        // Wrong-direction operations are EBADF.
        assert_eq!(k.read(w, 1).unwrap_err(), errno::EBADF);
        assert_eq!(k.write(r, b"x").unwrap_err(), errno::EBADF);
    }

    #[test]
    fn append_mode_positions_at_end() {
        let mut k = Kernel::with_standard_layout();
        k.write_file("/tmp/log", b"first\n").unwrap();
        let fd = k.open("/tmp/log", OpenFlags::append(), 0o644).unwrap();
        k.write(fd, b"second\n").unwrap();
        assert_eq!(k.read_file("/tmp/log").unwrap(), b"first\nsecond\n");
    }

    #[test]
    fn umask_applies_to_created_files() {
        let mut k = Kernel::with_standard_layout();
        let old = k.umask(0o077);
        assert_eq!(old, 0o022);
        let fd = k
            .open("/tmp/secret", OpenFlags::write_create(), 0o666)
            .unwrap();
        k.close(fd).unwrap();
        assert_eq!(k.stat("/tmp/secret").unwrap().mode & 0o777, 0o600);
    }

    #[test]
    fn descriptor_table_exhaustion_is_emfile() {
        let mut k = Kernel::with_standard_layout();
        k.write_file("/tmp/x", b"1").unwrap();
        let mut opened = Vec::new();
        loop {
            match k.open("/tmp/x", OpenFlags::read_only(), 0) {
                Ok(fd) => opened.push(fd),
                Err(e) => {
                    assert_eq!(e, errno::EMFILE);
                    break;
                }
            }
            assert!(opened.len() <= OPEN_MAX, "never ran out of descriptors");
        }
        // Closing one frees a slot again.
        k.close(opened[0]).unwrap();
        assert!(k.open("/tmp/x", OpenFlags::read_only(), 0).is_ok());
    }

    #[test]
    fn rename_replaces_existing_target() {
        let mut k = Kernel::with_standard_layout();
        k.write_file("/tmp/a", b"source").unwrap();
        k.write_file("/tmp/b", b"target").unwrap();
        k.vfs.rename("/tmp/a", "/tmp/b").unwrap();
        assert!(k.stat("/tmp/a").is_err());
        assert_eq!(k.read_file("/tmp/b").unwrap(), b"source");
    }

    #[test]
    fn open_directory_for_write_is_eisdir() {
        let mut k = Kernel::with_standard_layout();
        assert_eq!(
            k.open("/tmp", OpenFlags::write_create(), 0o644)
                .unwrap_err(),
            errno::EISDIR
        );
        // Read-only directory opens are fine (opendir needs them).
        assert!(k.open("/tmp", OpenFlags::read_only(), 0).is_ok());
    }

    #[test]
    fn clock_and_pid() {
        let mut k = Kernel::with_standard_layout();
        let t0 = k.now();
        k.advance_clock(5);
        assert_eq!(k.now(), t0 + 5);
        assert!(k.getpid() > 0);
    }
}
