//! Property test: rendering a prototype to C and re-parsing it is the
//! identity — the guarantee that the corpus generator and the header
//! scanner speak the same language.

use proptest::prelude::*;

use healers_ctypes::{parse_prototype, CType, FunctionPrototype, Param, Primitive};

fn arb_base_type() -> impl Strategy<Value = CType> {
    prop::sample::select(vec![
        CType::Primitive(Primitive::Int),
        CType::Primitive(Primitive::UInt),
        CType::Primitive(Primitive::Long),
        CType::Primitive(Primitive::Double),
        CType::Primitive(Primitive::Char),
        CType::Tagged {
            kind: healers_ctypes::types::TagKind::Struct,
            tag: "tm".into(),
        },
        CType::Tagged {
            kind: healers_ctypes::types::TagKind::Struct,
            tag: "stat".into(),
        },
        CType::Named("FILE".into()),
        CType::Named("DIR".into()),
    ])
}

fn arb_type() -> impl Strategy<Value = CType> {
    (arb_base_type(), 0u8..=2, any::<bool>()).prop_map(|(base, ptr_depth, is_const)| {
        let mut t = base;
        for level in 0..ptr_depth {
            t = CType::Pointer {
                pointee: Box::new(t),
                is_const: is_const && level == 0,
            };
        }
        t
    })
}

fn arb_ret_type() -> impl Strategy<Value = CType> {
    prop_oneof![
        arb_type().prop_filter("struct returns unsupported by value", |t| {
            // Returning a bare struct/FILE by value is not in the
            // supported ABI; behind a pointer is fine.
            !matches!(t, CType::Tagged { .. } | CType::Named(_))
        }),
        Just(CType::void()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prototype_display_parse_roundtrip(
        name in "[a-z][a-z0-9_]{0,20}",
        ret in arb_ret_type(),
        param_types in prop::collection::vec(arb_type(), 0..5),
        variadic in any::<bool>(),
    ) {
        // Reserved words collide with the grammar.
        prop_assume!(!matches!(
            name.as_str(),
            "int" | "char" | "long" | "void" | "short" | "float" | "double" | "signed"
                | "unsigned" | "struct" | "union" | "enum" | "const" | "extern" | "static"
        ));
        let proto = FunctionPrototype {
            name: name.clone(),
            ret,
            params: param_types
                .into_iter()
                .enumerate()
                .map(|(i, ty)| Param::named(&format!("a{i}"), ty))
                .collect(),
            variadic,
        };
        // Variadic functions need at least one named parameter in C.
        prop_assume!(!proto.variadic || !proto.params.is_empty());

        let rendered = format!("extern {proto};");
        let parsed = parse_prototype(&rendered)
            .unwrap_or_else(|e| panic!("{rendered:?} failed to re-parse: {e}"));
        prop_assert_eq!(parsed, proto, "through {}", rendered);
    }
}
