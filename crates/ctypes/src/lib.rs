//! C type model, declaration parser, and data layout for the HEALERS target
//! machine.
//!
//! HEALERS ("An Automated Approach to Increasing the Robustness of C
//! Libraries", DSN 2002) extracts the C type of every global function of a
//! shared library from header files and manual pages. This crate provides
//! the pieces that stage of the pipeline needs:
//!
//! * [`CType`] — a structural model of C types (primitives, pointers,
//!   qualified types, named structs/unions/enums, arrays, function types),
//! * [`FunctionPrototype`] — the parsed prototype of a library function,
//! * [`parse`] — a recursive-descent parser for C declarations as they
//!   appear in real header files (storage classes, qualifiers, GNU
//!   attributes, typedef names),
//! * [`layout`] — sizes and alignments on the simulated ILP32 target, which
//!   matches the paper's 32-bit SUSE Linux 7.2 machine (so `struct tm` is
//!   exactly the 44 bytes the paper reports for `asctime`).
//!
//! # Examples
//!
//! ```
//! use healers_ctypes::{parse_prototype, CType};
//!
//! let proto = parse_prototype(
//!     "extern char *strcpy(char *__dest, const char *__src);",
//! ).unwrap();
//! assert_eq!(proto.name, "strcpy");
//! assert_eq!(proto.params.len(), 2);
//! assert!(matches!(proto.ret, CType::Pointer { .. }));
//! assert_eq!(proto.params[1].name.as_deref(), Some("__src"));
//! ```

pub mod layout;
pub mod parse;
pub mod proto;
pub mod types;

pub use layout::{StructLayout, TargetLayout};
pub use parse::{parse_declarations, parse_prototype, ParseError};
pub use proto::{FunctionPrototype, Param};
pub use types::{CType, Primitive};
