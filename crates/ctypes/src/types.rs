//! Structural model of C types.

use std::fmt;

/// A C primitive (builtin arithmetic or `void`) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Primitive {
    /// `void` (only valid behind a pointer or as a return type).
    Void,
    /// `char` (signedness is implementation defined; signed on the target).
    Char,
    /// `signed char`
    SChar,
    /// `unsigned char`
    UChar,
    /// `short`
    Short,
    /// `unsigned short`
    UShort,
    /// `int`
    Int,
    /// `unsigned int`
    UInt,
    /// `long`
    Long,
    /// `unsigned long`
    ULong,
    /// `long long`
    LongLong,
    /// `unsigned long long`
    ULongLong,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `long double`
    LongDouble,
}

impl Primitive {
    /// Whether this is an integer type (including `char` variants).
    pub fn is_integer(self) -> bool {
        !matches!(
            self,
            Primitive::Void | Primitive::Float | Primitive::Double | Primitive::LongDouble
        )
    }

    /// Whether this is a floating point type.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Primitive::Float | Primitive::Double | Primitive::LongDouble
        )
    }

    /// Whether values of this type are signed.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            Primitive::Char
                | Primitive::SChar
                | Primitive::Short
                | Primitive::Int
                | Primitive::Long
                | Primitive::LongLong
        ) || self.is_float()
    }

    /// The canonical C spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            Primitive::Void => "void",
            Primitive::Char => "char",
            Primitive::SChar => "signed char",
            Primitive::UChar => "unsigned char",
            Primitive::Short => "short",
            Primitive::UShort => "unsigned short",
            Primitive::Int => "int",
            Primitive::UInt => "unsigned int",
            Primitive::Long => "long",
            Primitive::ULong => "unsigned long",
            Primitive::LongLong => "long long",
            Primitive::ULongLong => "unsigned long long",
            Primitive::Float => "float",
            Primitive::Double => "double",
            Primitive::LongDouble => "long double",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spelling())
    }
}

/// The kind of a named aggregate/enum type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TagKind {
    /// `struct tag`
    Struct,
    /// `union tag`
    Union,
    /// `enum tag`
    Enum,
}

impl TagKind {
    /// The C keyword for the tag kind.
    pub fn keyword(self) -> &'static str {
        match self {
            TagKind::Struct => "struct",
            TagKind::Union => "union",
            TagKind::Enum => "enum",
        }
    }
}

/// A structural C type.
///
/// Typedef names that resolve to well-known opaque library types (`FILE`,
/// `DIR`, …) are preserved as [`CType::Named`] so downstream stages (the
/// fault-injector generator in particular) can select specialized test-case
/// generators by name, exactly as the paper selects a specific generator
/// for `FILE *` pointers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// A builtin type.
    Primitive(Primitive),
    /// A pointer. `is_const` records whether the *pointee* is
    /// const-qualified (`const char *`), the piece of qualification that
    /// matters for robust-type discovery (a const pointee never needs write
    /// access).
    Pointer {
        /// The pointed-to type.
        pointee: Box<CType>,
        /// Whether the pointee is `const`-qualified.
        is_const: bool,
    },
    /// A named struct/union/enum (`struct tm`). The body is not modeled;
    /// layout is looked up by name in [`crate::layout::TargetLayout`].
    Tagged {
        /// struct / union / enum.
        kind: TagKind,
        /// The tag name.
        tag: String,
    },
    /// A typedef name that is treated as opaque (`FILE`, `DIR`, `size_t`
    /// resolves instead — only *unresolvable* names end up here).
    Named(String),
    /// An array of a known or unknown length (function parameters decay to
    /// pointers; this appears inside structs or behind typedefs).
    Array {
        /// Element type.
        elem: Box<CType>,
        /// Declared length, if any.
        len: Option<u32>,
    },
    /// A function type (used for function-pointer parameters).
    Function {
        /// Return type.
        ret: Box<CType>,
        /// Parameter types.
        params: Vec<CType>,
        /// Whether the function is variadic.
        variadic: bool,
    },
}

impl CType {
    /// Convenience constructor for a (non-const) pointer to `pointee`.
    pub fn ptr(pointee: CType) -> CType {
        CType::Pointer {
            pointee: Box::new(pointee),
            is_const: false,
        }
    }

    /// Convenience constructor for a pointer to a `const` pointee.
    pub fn const_ptr(pointee: CType) -> CType {
        CType::Pointer {
            pointee: Box::new(pointee),
            is_const: true,
        }
    }

    /// Convenience constructor for `int`.
    pub fn int() -> CType {
        CType::Primitive(Primitive::Int)
    }

    /// Convenience constructor for `void`.
    pub fn void() -> CType {
        CType::Primitive(Primitive::Void)
    }

    /// Convenience constructor for `char`.
    pub fn char_() -> CType {
        CType::Primitive(Primitive::Char)
    }

    /// Whether this is `void`.
    pub fn is_void(&self) -> bool {
        matches!(self, CType::Primitive(Primitive::Void))
    }

    /// Whether this is any pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Pointer { .. })
    }

    /// Whether this is an arithmetic (integer or floating) type.
    pub fn is_arithmetic(&self) -> bool {
        match self {
            CType::Primitive(p) => p.is_integer() || p.is_float(),
            CType::Tagged {
                kind: TagKind::Enum,
                ..
            } => true,
            _ => false,
        }
    }

    /// For a pointer type, the pointee; otherwise `None`.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Pointer { pointee, .. } => Some(pointee),
            _ => None,
        }
    }

    /// Whether this is a pointer whose pointee is const-qualified.
    pub fn points_to_const(&self) -> bool {
        matches!(self, CType::Pointer { is_const: true, .. })
    }

    /// Whether values of this type support `==`/`!=` in C. The paper's
    /// error-return-code classification needs this: a function whose return
    /// type has no equality operator is classified "no return code".
    pub fn supports_equality(&self) -> bool {
        match self {
            CType::Primitive(Primitive::Void) => false,
            CType::Primitive(_) => true,
            CType::Pointer { .. } => true,
            CType::Tagged {
                kind: TagKind::Enum,
                ..
            } => true,
            // struct/union values cannot be compared with == in C.
            CType::Tagged { .. } => false,
            CType::Named(_) => false,
            CType::Array { .. } => true, // decays to pointer
            CType::Function { .. } => true,
        }
    }

    /// Render the type in C syntax, with an optional declarator name.
    pub fn display_with(&self, name: &str) -> String {
        match self {
            CType::Primitive(p) => {
                if name.is_empty() {
                    p.spelling().to_string()
                } else {
                    format!("{} {}", p.spelling(), name)
                }
            }
            CType::Pointer { pointee, is_const } => {
                let inner = if *is_const {
                    format!("const {}", pointee.display_with(""))
                } else {
                    pointee.display_with("")
                };
                if name.is_empty() {
                    format!("{inner}*")
                } else {
                    format!("{inner}* {name}")
                }
            }
            CType::Tagged { kind, tag } => {
                if name.is_empty() {
                    format!("{} {}", kind.keyword(), tag)
                } else {
                    format!("{} {} {}", kind.keyword(), tag, name)
                }
            }
            CType::Named(n) => {
                if name.is_empty() {
                    n.clone()
                } else {
                    format!("{n} {name}")
                }
            }
            CType::Array { elem, len } => {
                let dims = match len {
                    Some(l) => format!("[{l}]"),
                    None => "[]".to_string(),
                };
                format!("{} {name}{dims}", elem.display_with(""))
            }
            CType::Function {
                ret,
                params,
                variadic,
            } => {
                let mut ps: Vec<String> = params.iter().map(|p| p.display_with("")).collect();
                if *variadic {
                    ps.push("...".to_string());
                }
                format!("{} (*{name})({})", ret.display_with(""), ps.join(", "))
            }
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_properties() {
        assert!(Primitive::Int.is_integer());
        assert!(Primitive::Int.is_signed());
        assert!(!Primitive::UInt.is_signed());
        assert!(Primitive::Double.is_float());
        assert!(!Primitive::Void.is_integer());
        assert!(Primitive::Char.is_signed());
    }

    #[test]
    fn display_simple() {
        assert_eq!(CType::int().to_string(), "int");
        assert_eq!(CType::ptr(CType::char_()).to_string(), "char*");
        assert_eq!(
            CType::const_ptr(CType::Tagged {
                kind: TagKind::Struct,
                tag: "tm".into()
            })
            .to_string(),
            "const struct tm*"
        );
    }

    #[test]
    fn display_with_name() {
        assert_eq!(CType::int().display_with("x"), "int x");
        assert_eq!(CType::ptr(CType::char_()).display_with("s"), "char* s");
    }

    #[test]
    fn equality_support() {
        assert!(CType::int().supports_equality());
        assert!(CType::ptr(CType::void()).supports_equality());
        assert!(!CType::void().supports_equality());
        assert!(!CType::Tagged {
            kind: TagKind::Struct,
            tag: "div_t".into()
        }
        .supports_equality());
    }

    #[test]
    fn pointee_and_const() {
        let t = CType::const_ptr(CType::char_());
        assert!(t.points_to_const());
        assert_eq!(t.pointee(), Some(&CType::char_()));
        assert!(!CType::int().points_to_const());
        assert_eq!(CType::int().pointee(), None);
    }
}
