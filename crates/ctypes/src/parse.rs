//! A recursive-descent parser for C function declarations.
//!
//! The paper originally used the CINT C/C++ interpreter to extract function
//! prototypes from header files. We implement the subset of C's declaration
//! grammar that real libc headers use: storage classes, type qualifiers,
//! GNU attributes (`__attribute__((...))`, `__THROW`, `__nonnull`, asm
//! labels), multi-keyword primitive types, struct/union/enum tags, typedef
//! names, pointer declarators, function-pointer parameters, array
//! parameters (which decay to pointers), and variadic parameter lists.
//!
//! Two entry points are provided: [`parse_prototype`] parses a single
//! declaration strictly, and [`parse_declarations`] tolerantly scans a
//! whole header file, skipping comments, preprocessor directives, and any
//! declaration it cannot understand — a header scanner must survive
//! arbitrary real-world headers.

use std::fmt;

use crate::proto::{FunctionPrototype, Param};
use crate::types::{CType, Primitive, TagKind};

/// Error produced when a declaration cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input where the failure occurred.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Ellipsis,
    Number(i64),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.pos += 2;
                    while self.pos + 1 < self.src.len()
                        && !(self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/')
                    {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 2).min(self.src.len());
                }
                b'#' => {
                    // Preprocessor line: skip to end of (possibly continued) line.
                    while self.pos < self.src.len() {
                        if self.src[self.pos] == b'\n'
                            && self.src.get(self.pos.wrapping_sub(1)) != Some(&b'\\')
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'"' | b'\'' => {
                    // String/char literal (asm labels): skip it. The
                    // contents never matter for prototypes.
                    let quote = c;
                    self.pos += 1;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        if self.src[self.pos] == b'\\' {
                            self.pos += 1;
                        }
                        self.pos += 1;
                    }
                    self.pos += 1;
                }
                b'.' if self.peek(1) == Some(b'.') && self.peek(2) == Some(b'.') => {
                    out.push((Tok::Ellipsis, self.pos));
                    self.pos += 3;
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'x')
                    {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    let value = if let Some(hex) = text.strip_prefix("0x") {
                        i64::from_str_radix(hex, 16).unwrap_or(0)
                    } else {
                        text.trim_end_matches(['u', 'U', 'l', 'L'])
                            .parse()
                            .unwrap_or(0)
                    };
                    out.push((Tok::Number(value), start));
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    out.push((Tok::Ident(text.to_string()), start));
                }
                b'(' | b')' | b'[' | b']' | b'{' | b'}' | b',' | b';' | b'*' | b'=' | b'+'
                | b'-' | b'<' | b'>' | b'|' | b'&' => {
                    out.push((Tok::Punct(c as char), self.pos));
                    self.pos += 1;
                }
                _ => {
                    return Err(ParseError {
                        message: format!("unexpected character {:?}", c as char),
                        offset: self.pos,
                    })
                }
            }
        }
        Ok(out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }
}

/// Typedef names the parser resolves to concrete types, matching the
/// definitions of the simulated target (ILP32).
fn resolve_typedef(name: &str) -> Option<CType> {
    let t = match name {
        "size_t" => CType::Primitive(Primitive::UInt),
        "ssize_t" => CType::Primitive(Primitive::Int),
        "ptrdiff_t" => CType::Primitive(Primitive::Int),
        "time_t" | "clock_t" | "off_t" | "suseconds_t" => CType::Primitive(Primitive::Long),
        "pid_t" | "wchar_t" => CType::Primitive(Primitive::Int),
        "uid_t" | "gid_t" | "mode_t" | "dev_t" | "ino_t" | "nlink_t" | "socklen_t" => {
            CType::Primitive(Primitive::UInt)
        }
        "speed_t" | "tcflag_t" => CType::Primitive(Primitive::UInt),
        "cc_t" => CType::Primitive(Primitive::UChar),
        "int8_t" => CType::Primitive(Primitive::SChar),
        "uint8_t" => CType::Primitive(Primitive::UChar),
        "int16_t" => CType::Primitive(Primitive::Short),
        "uint16_t" => CType::Primitive(Primitive::UShort),
        "int32_t" => CType::Primitive(Primitive::Int),
        "uint32_t" => CType::Primitive(Primitive::UInt),
        "int64_t" => CType::Primitive(Primitive::LongLong),
        "uint64_t" => CType::Primitive(Primitive::ULongLong),
        // Opaque library typedefs stay opaque (the injector keys
        // specialized generators off these names).
        "FILE" | "DIR" | "va_list" | "fpos_t" | "div_t" | "ldiv_t" | "sigjmp_buf" | "jmp_buf" => {
            CType::Named(name.to_string())
        }
        _ => return None,
    };
    Some(t)
}

fn is_qualifier(word: &str) -> bool {
    matches!(
        word,
        "const"
            | "volatile"
            | "restrict"
            | "__restrict"
            | "__restrict__"
            | "__const"
            | "inline"
            | "__inline"
            | "__inline__"
            | "_Noreturn"
    )
}

fn is_storage_class(word: &str) -> bool {
    matches!(
        word,
        "extern" | "static" | "register" | "auto" | "__extension__"
    )
}

fn is_attribute_intro(word: &str) -> bool {
    matches!(
        word,
        "__attribute__"
            | "__attribute"
            | "__asm__"
            | "__asm"
            | "__THROW"
            | "__THROWNL"
            | "__wur"
            | "__nonnull"
            | "__REDIRECT"
            | "__noexcept"
    )
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

#[derive(Debug)]
struct BaseType {
    ty: CType,
    /// Whether the base itself was const-qualified (propagates to the
    /// pointee of the first pointer level).
    is_const: bool,
}

impl Parser {
    fn new(toks: Vec<(Tok, usize)>) -> Self {
        Parser { toks, idx: 0 }
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|t| t.1)
            .unwrap_or_else(|| self.toks.last().map(|t| t.1 + 1).unwrap_or(0))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|t| &t.0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|t| t.0.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: char) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}")))
        }
    }

    /// Skip GNU attributes and asm labels, including their parenthesized
    /// payloads.
    fn skip_attributes(&mut self) {
        while let Some(Tok::Ident(w)) = self.peek() {
            if !is_attribute_intro(w) {
                break;
            }
            self.idx += 1;
            if self.peek() == Some(&Tok::Punct('(')) {
                self.skip_balanced_parens();
            }
        }
    }

    fn skip_balanced_parens(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            match t {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Parse the declaration-specifier part: qualifiers, storage classes,
    /// and the base type.
    fn parse_base_type(&mut self) -> Result<BaseType, ParseError> {
        let mut is_const = false;
        let mut primitive_words: Vec<String> = Vec::new();
        let mut ty: Option<CType> = None;

        loop {
            self.skip_attributes();
            let Some(tok) = self.peek().cloned() else {
                break;
            };
            match tok {
                Tok::Ident(word) => {
                    if is_storage_class(&word) {
                        self.idx += 1;
                    } else if is_qualifier(&word) {
                        if word.contains("const") {
                            is_const = true;
                        }
                        self.idx += 1;
                    } else if matches!(
                        word.as_str(),
                        "void"
                            | "char"
                            | "short"
                            | "int"
                            | "long"
                            | "float"
                            | "double"
                            | "signed"
                            | "unsigned"
                    ) {
                        if ty.is_some() {
                            break;
                        }
                        primitive_words.push(word);
                        self.idx += 1;
                    } else if matches!(word.as_str(), "struct" | "union" | "enum") {
                        if ty.is_some() || !primitive_words.is_empty() {
                            break;
                        }
                        self.idx += 1;
                        let tag = match self.bump() {
                            Some(Tok::Ident(t)) => t,
                            _ => return Err(self.err("expected tag name after struct/union/enum")),
                        };
                        let kind = match word.as_str() {
                            "struct" => TagKind::Struct,
                            "union" => TagKind::Union,
                            _ => TagKind::Enum,
                        };
                        ty = Some(CType::Tagged { kind, tag });
                    } else if let Some(resolved) = resolve_typedef(&word) {
                        if ty.is_some() || !primitive_words.is_empty() {
                            break;
                        }
                        self.idx += 1;
                        ty = Some(resolved);
                    } else {
                        // Unknown identifier: either a declarator name or an
                        // unknown typedef. If we have no type yet, treat a
                        // trailing ALL-unknown identifier followed by
                        // another identifier as a typedef; otherwise stop.
                        if ty.is_none() && primitive_words.is_empty() {
                            // Unknown typedef name, e.g. `intmax_t x`. Only
                            // accept it as a type if another declarator
                            // token follows.
                            let next = self.toks.get(self.idx + 1).map(|t| &t.0);
                            match next {
                                Some(Tok::Ident(_)) | Some(Tok::Punct('*')) => {
                                    self.idx += 1;
                                    ty = Some(CType::Named(word));
                                }
                                _ => break,
                            }
                        } else {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }

        let ty = if let Some(t) = ty {
            t
        } else if !primitive_words.is_empty() {
            primitive_from_words(&primitive_words).ok_or_else(|| {
                self.err(format!("unintelligible primitive type {primitive_words:?}"))
            })?
        } else {
            return Err(self.err("expected a type"));
        };

        Ok(BaseType { ty, is_const })
    }

    /// Parse a declarator: pointers, a name, function params, arrays.
    /// Returns (name, type). Supports one level of parenthesized
    /// function-pointer declarators.
    fn parse_declarator(
        &mut self,
        base: CType,
        base_const: bool,
    ) -> Result<(Option<String>, CType), ParseError> {
        // Pointer levels. The first level consumes base_const into its
        // pointee constness.
        let mut ty = base;
        let mut next_const = base_const;
        loop {
            self.skip_attributes();
            if self.eat_punct('*') {
                ty = CType::Pointer {
                    pointee: Box::new(ty),
                    is_const: next_const,
                };
                next_const = false;
                // Qualifiers after the star qualify the pointer itself; we
                // don't track pointer-constness, only pointee constness.
                while let Some(Tok::Ident(w)) = self.peek() {
                    if is_qualifier(w) {
                        self.idx += 1;
                    } else {
                        break;
                    }
                }
            } else {
                break;
            }
        }

        // Function pointer declarator: (*name)(params)
        if self.peek() == Some(&Tok::Punct('(')) {
            let save = self.idx;
            self.idx += 1;
            if self.eat_punct('*') {
                let name = match self.peek() {
                    Some(Tok::Ident(_)) => match self.bump() {
                        Some(Tok::Ident(n)) => Some(n),
                        _ => unreachable!(),
                    },
                    _ => None,
                };
                self.expect_punct(')')?;
                let (params, variadic) = self.parse_param_list()?;
                let fnty = CType::Function {
                    ret: Box::new(ty),
                    params: params.into_iter().map(|p| p.ty).collect(),
                    variadic,
                };
                return Ok((name, CType::ptr(fnty)));
            }
            self.idx = save;
        }

        let name = match self.peek() {
            Some(Tok::Ident(w)) if !is_qualifier(w) && !is_attribute_intro(w) => {
                match self.bump() {
                    Some(Tok::Ident(n)) => Some(n),
                    _ => unreachable!(),
                }
            }
            _ => None,
        };

        // Array suffixes decay to pointers in parameter position; we model
        // them as Array and let the caller decay.
        let mut out_ty = ty;
        while self.eat_punct('[') {
            let len = match self.peek() {
                Some(Tok::Number(n)) => {
                    let n = *n;
                    self.idx += 1;
                    Some(n as u32)
                }
                _ => None,
            };
            self.expect_punct(']')?;
            out_ty = CType::Array {
                elem: Box::new(out_ty),
                len,
            };
        }

        Ok((name, out_ty))
    }

    fn parse_param_list(&mut self) -> Result<(Vec<Param>, bool), ParseError> {
        self.expect_punct('(')?;
        let mut params = Vec::new();
        let mut variadic = false;

        if self.eat_punct(')') {
            return Ok((params, variadic));
        }
        // Special case: (void)
        if let Some(Tok::Ident(w)) = self.peek() {
            if w == "void" && self.toks.get(self.idx + 1).map(|t| &t.0) == Some(&Tok::Punct(')')) {
                self.idx += 2;
                return Ok((params, variadic));
            }
        }

        loop {
            if self.peek() == Some(&Tok::Ellipsis) {
                self.idx += 1;
                variadic = true;
                break;
            }
            let base = self.parse_base_type()?;
            let (name, ty) = self.parse_declarator(base.ty, base.is_const)?;
            // Arrays in parameter position decay to pointers.
            let ty = match ty {
                CType::Array { elem, .. } => CType::Pointer {
                    pointee: elem,
                    is_const: false,
                },
                other => other,
            };
            self.skip_attributes();
            params.push(Param { name, ty });
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok((params, variadic))
    }

    /// Parse one complete function declaration ending in `;`.
    fn parse_function_decl(&mut self) -> Result<FunctionPrototype, ParseError> {
        let base = self.parse_base_type()?;
        let (name, ret) = self.parse_declarator(base.ty, base.is_const)?;
        let name = name.ok_or_else(|| self.err("declaration has no name"))?;
        let (params, variadic) = self.parse_param_list()?;
        self.skip_attributes();
        // Optional asm label / attribute already skipped; expect `;`.
        if !self.eat_punct(';') {
            // Tolerate missing semicolon at end of input.
            if self.peek().is_some() {
                return Err(self.err("expected ';' after declaration"));
            }
        }
        Ok(FunctionPrototype {
            name,
            ret,
            params,
            variadic,
        })
    }
}

fn primitive_from_words(words: &[String]) -> Option<CType> {
    let mut unsigned = false;
    let mut signed = false;
    let mut longs = 0;
    let mut base: Option<&str> = None;
    for w in words {
        match w.as_str() {
            "unsigned" => unsigned = true,
            "signed" => signed = true,
            "long" => longs += 1,
            "void" | "char" | "short" | "int" | "float" | "double" => base = Some(w),
            _ => return None,
        }
    }
    let p = match (base, longs, unsigned, signed) {
        (Some("void"), 0, false, false) => Primitive::Void,
        (Some("char"), 0, false, false) => Primitive::Char,
        (Some("char"), 0, false, true) => Primitive::SChar,
        (Some("char"), 0, true, false) => Primitive::UChar,
        (Some("short"), 0, u, _) | (Some("int"), 0, u, _)
            if base == Some("short") || words.iter().any(|w| w == "short") =>
        {
            if u {
                Primitive::UShort
            } else {
                Primitive::Short
            }
        }
        (Some("int"), 0, true, _) => Primitive::UInt,
        (Some("int"), 0, false, _) => Primitive::Int,
        (None, 0, true, _) => Primitive::UInt,
        (None, 0, false, true) => Primitive::Int,
        (Some("int"), 1, u, _) | (None, 1, u, _) => {
            if u {
                Primitive::ULong
            } else {
                Primitive::Long
            }
        }
        (Some("int"), 2, u, _) | (None, 2, u, _) => {
            if u {
                Primitive::ULongLong
            } else {
                Primitive::LongLong
            }
        }
        (Some("float"), 0, false, false) => Primitive::Float,
        (Some("double"), 0, false, false) => Primitive::Double,
        (Some("double"), 1, false, false) => Primitive::LongDouble,
        _ => return None,
    };
    Some(CType::Primitive(p))
}

/// Parse a single C function declaration strictly.
///
/// # Errors
///
/// Returns [`ParseError`] if the input is not a well-formed function
/// declaration in the supported grammar.
///
/// # Examples
///
/// ```
/// let p = healers_ctypes::parse_prototype(
///     "extern size_t strlen(const char *__s) __THROW __attribute__((__pure__));",
/// ).unwrap();
/// assert_eq!(p.name, "strlen");
/// ```
pub fn parse_prototype(source: &str) -> Result<FunctionPrototype, ParseError> {
    let toks = Lexer::new(source).tokenize()?;
    let mut parser = Parser::new(toks);
    parser.parse_function_decl()
}

/// Tolerantly scan a header-file body for function declarations.
///
/// Comments and preprocessor directives are skipped; declarations that
/// cannot be parsed (typedefs, variable declarations, inline bodies,
/// exotic grammar) are silently ignored, because a header scanner must
/// survive arbitrary headers.
pub fn parse_declarations(source: &str) -> Vec<FunctionPrototype> {
    let Ok(toks) = Lexer::new(source).tokenize() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut start = 0usize;
    let n = toks.len();
    let mut i = 0usize;
    let mut brace_depth = 0i32;
    while i < n {
        match &toks[i].0 {
            Tok::Punct('{') => brace_depth += 1,
            Tok::Punct('}') => {
                brace_depth -= 1;
                if brace_depth == 0 {
                    // A brace-delimited body (inline function, struct
                    // definition) ends the current candidate declaration.
                    start = i + 1;
                }
            }
            Tok::Punct(';') if brace_depth == 0 => {
                let slice = toks[start..=i].to_vec();
                let mut parser = Parser::new(slice);
                if let Ok(proto) = parser.parse_function_decl() {
                    // Reject declarations that did not consume everything —
                    // they are likely misparses of something else.
                    if parser.peek().is_none() {
                        out.push(proto);
                    }
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_strcpy() {
        let p = parse_prototype("extern char *strcpy(char *__dest, const char *__src);").unwrap();
        assert_eq!(p.name, "strcpy");
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.ret, CType::ptr(CType::char_()));
        assert!(p.params[1].ty.points_to_const());
        assert!(!p.params[0].ty.points_to_const());
    }

    #[test]
    fn parses_asctime_with_struct_arg() {
        let p = parse_prototype("extern char *asctime(const struct tm *__tp) __THROW;").unwrap();
        assert_eq!(p.name, "asctime");
        let arg = &p.params[0].ty;
        assert!(arg.points_to_const());
        assert_eq!(
            arg.pointee().unwrap(),
            &CType::Tagged {
                kind: TagKind::Struct,
                tag: "tm".into()
            }
        );
    }

    #[test]
    fn parses_typedefs() {
        let p =
            parse_prototype("extern size_t fread(void *ptr, size_t size, size_t n, FILE *stream);")
                .unwrap();
        assert_eq!(p.name, "fread");
        assert_eq!(p.ret, CType::Primitive(Primitive::UInt));
        assert_eq!(p.params[3].ty, CType::ptr(CType::Named("FILE".into())));
    }

    #[test]
    fn parses_variadic() {
        let p = parse_prototype(
            "extern int fprintf(FILE *__restrict __stream, const char *__restrict __format, ...);",
        )
        .unwrap();
        assert!(p.variadic);
        assert_eq!(p.params.len(), 2);
    }

    #[test]
    fn parses_void_param_list() {
        let p = parse_prototype("extern int getpid(void);").unwrap();
        assert!(p.params.is_empty());
        assert!(!p.variadic);
    }

    #[test]
    fn parses_empty_param_list() {
        let p = parse_prototype("int rand();").unwrap();
        assert!(p.params.is_empty());
    }

    #[test]
    fn parses_function_pointer_param() {
        let p = parse_prototype(
            "extern void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));",
        )
        .unwrap();
        assert_eq!(p.params.len(), 4);
        match &p.params[3].ty {
            CType::Pointer { pointee, .. } => match pointee.as_ref() {
                CType::Function { params, .. } => assert_eq!(params.len(), 2),
                other => panic!("expected function type, got {other:?}"),
            },
            other => panic!("expected pointer, got {other:?}"),
        }
    }

    #[test]
    fn array_params_decay_to_pointers() {
        let p = parse_prototype("extern int pipe(int __pipedes[2]);").unwrap();
        assert_eq!(p.params[0].ty, CType::ptr(CType::int()));
    }

    #[test]
    fn skips_attributes_and_asm_labels() {
        let p = parse_prototype(
            "extern int stat(const char *__file, struct stat *__buf) __THROW __nonnull((1, 2)) __asm__(\"__xstat\");",
        )
        .unwrap();
        assert_eq!(p.name, "stat");
        assert_eq!(p.params.len(), 2);
    }

    #[test]
    fn scan_skips_garbage() {
        let src = r#"
            /* glibc-style header */
            #ifndef _STRING_H
            #define _STRING_H 1
            #include <stddef.h>
            typedef unsigned int size_t;
            extern char *strcpy(char *__dest, const char *__src) __THROW;
            struct obscure { int x; };
            extern size_t strlen(const char *__s) __THROW __attribute__((__pure__));
            extern int weird_thing = 3;
            extern void *memcpy(void *__dest, const void *__src, size_t __n) __THROW;
            #endif
        "#;
        let protos = parse_declarations(src);
        let names: Vec<_> = protos.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"strcpy"));
        assert!(names.contains(&"strlen"));
        assert!(names.contains(&"memcpy"));
        assert!(!names.contains(&"weird_thing"));
    }

    #[test]
    fn scan_ignores_inline_bodies() {
        let src = r#"
            static inline int twice(int x) { return strlen_helper(x) * 2; }
            extern int atoi(const char *__nptr) __THROW;
        "#;
        let protos = parse_declarations(src);
        let names: Vec<_> = protos.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"atoi"));
    }

    #[test]
    fn unsigned_long_long_combo() {
        let p = parse_prototype(
            "extern unsigned long long strtoull(const char *nptr, char **endptr, int base);",
        )
        .unwrap();
        assert_eq!(p.ret, CType::Primitive(Primitive::ULongLong));
    }

    #[test]
    fn unsigned_alone_is_uint() {
        let p = parse_prototype("unsigned sleep(unsigned __seconds);").unwrap();
        assert_eq!(p.ret, CType::Primitive(Primitive::UInt));
        assert_eq!(p.params[0].ty, CType::Primitive(Primitive::UInt));
    }

    #[test]
    fn short_types() {
        let p = parse_prototype("unsigned short f(short x);").unwrap();
        assert_eq!(p.ret, CType::Primitive(Primitive::UShort));
        assert_eq!(p.params[0].ty, CType::Primitive(Primitive::Short));
    }

    #[test]
    fn rejects_non_function() {
        assert!(parse_prototype("int x;").is_err());
        assert!(parse_prototype("struct tm;").is_err());
    }

    #[test]
    fn double_pointer_param() {
        let p = parse_prototype("extern long strtol(const char *nptr, char **endptr, int base);")
            .unwrap();
        assert_eq!(p.params[1].ty, CType::ptr(CType::ptr(CType::char_())));
    }
}
