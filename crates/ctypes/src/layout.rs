//! Data layout of the simulated target machine.
//!
//! The paper's experiments ran on 32-bit SUSE Linux 7.2 with glibc 2.2. We
//! therefore model an ILP32 target: `int` and `long` are 4 bytes and
//! pointers are 4 bytes. This matters for reproducing concrete numbers —
//! most prominently the robust argument type of `asctime`, which the paper
//! reports as `R_ARRAY_NULL[44]` because `struct tm` occupies 44 bytes on
//! that machine (9 × `int` + `long tm_gmtoff` + `const char *tm_zone`).

use std::collections::BTreeMap;

use crate::types::{CType, Primitive, TagKind};

/// A field of a known struct layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Byte offset from the start of the struct.
    pub offset: u32,
    /// Field type.
    pub ty: CType,
}

/// Size/alignment (and, where modeled, fields) of a named struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct tag or typedef name.
    pub name: String,
    /// Total size in bytes.
    pub size: u32,
    /// Required alignment in bytes.
    pub align: u32,
    /// Known fields (may be empty for opaque types).
    pub fields: Vec<FieldLayout>,
}

impl StructLayout {
    /// Look up a field's byte offset by name.
    pub fn offset_of(&self, field: &str) -> Option<u32> {
        self.fields
            .iter()
            .find(|f| f.name == field)
            .map(|f| f.offset)
    }
}

/// The ILP32 target layout: primitive sizes plus a registry of the struct
/// layouts the simulated C library uses.
#[derive(Debug, Clone)]
pub struct TargetLayout {
    structs: BTreeMap<String, StructLayout>,
}

/// Size of a pointer on the target, in bytes.
pub const PTR_SIZE: u32 = 4;

impl TargetLayout {
    /// The layout registry pre-populated with every struct the simulated
    /// glibc-2.2-alike defines (`struct tm`, `FILE`, `DIR`, `struct
    /// termios`, `struct stat`, …).
    pub fn new() -> Self {
        let mut structs = BTreeMap::new();
        for layout in builtin_structs() {
            structs.insert(layout.name.clone(), layout);
        }
        TargetLayout { structs }
    }

    /// Size in bytes of a primitive type. `void` reports size 1 (as GNU C
    /// does for pointer arithmetic purposes).
    pub fn primitive_size(&self, p: Primitive) -> u32 {
        match p {
            Primitive::Void => 1,
            Primitive::Char | Primitive::SChar | Primitive::UChar => 1,
            Primitive::Short | Primitive::UShort => 2,
            Primitive::Int | Primitive::UInt => 4,
            Primitive::Long | Primitive::ULong => 4,
            Primitive::LongLong | Primitive::ULongLong => 8,
            Primitive::Float => 4,
            Primitive::Double => 8,
            Primitive::LongDouble => 12,
        }
    }

    /// Size in bytes of an arbitrary type, if known.
    pub fn size_of(&self, ty: &CType) -> Option<u32> {
        match ty {
            CType::Primitive(p) => Some(self.primitive_size(*p)),
            CType::Pointer { .. } | CType::Function { .. } => Some(PTR_SIZE),
            CType::Tagged { kind, tag } => match kind {
                TagKind::Enum => Some(4),
                _ => self.structs.get(tag).map(|s| s.size),
            },
            CType::Named(name) => self.structs.get(name).map(|s| s.size),
            CType::Array { elem, len } => {
                let elem_size = self.size_of(elem)?;
                len.map(|l| elem_size * l)
            }
        }
    }

    /// Alignment in bytes of a type, if known.
    pub fn align_of(&self, ty: &CType) -> Option<u32> {
        match ty {
            CType::Primitive(p) => Some(self.primitive_size(*p).min(4)),
            CType::Pointer { .. } | CType::Function { .. } => Some(PTR_SIZE),
            CType::Tagged { kind, tag } => match kind {
                TagKind::Enum => Some(4),
                _ => self.structs.get(tag).map(|s| s.align),
            },
            CType::Named(name) => self.structs.get(name).map(|s| s.align),
            CType::Array { elem, .. } => self.align_of(elem),
        }
    }

    /// Look up a struct layout by tag or typedef name.
    pub fn struct_layout(&self, name: &str) -> Option<&StructLayout> {
        self.structs.get(name)
    }

    /// Register (or replace) a struct layout. Returns the previous layout
    /// if one existed.
    pub fn register_struct(&mut self, layout: StructLayout) -> Option<StructLayout> {
        self.structs.insert(layout.name.clone(), layout)
    }

    /// Iterate over all registered struct layouts.
    pub fn structs(&self) -> impl Iterator<Item = &StructLayout> {
        self.structs.values()
    }
}

impl Default for TargetLayout {
    fn default() -> Self {
        TargetLayout::new()
    }
}

fn int_field(name: &str, offset: u32) -> FieldLayout {
    FieldLayout {
        name: name.to_string(),
        offset,
        ty: CType::int(),
    }
}

#[allow(clippy::vec_init_then_push)]
fn builtin_structs() -> Vec<StructLayout> {
    let mut v = Vec::new();

    // struct tm: 9 ints + long tm_gmtoff + const char *tm_zone = 44 bytes
    // on ILP32 — the exact figure the paper reports for asctime.
    v.push(StructLayout {
        name: "tm".to_string(),
        size: 44,
        align: 4,
        fields: vec![
            int_field("tm_sec", 0),
            int_field("tm_min", 4),
            int_field("tm_hour", 8),
            int_field("tm_mday", 12),
            int_field("tm_mon", 16),
            int_field("tm_year", 20),
            int_field("tm_wday", 24),
            int_field("tm_yday", 28),
            int_field("tm_isdst", 32),
            FieldLayout {
                name: "tm_gmtoff".to_string(),
                offset: 36,
                ty: CType::Primitive(Primitive::Long),
            },
            FieldLayout {
                name: "tm_zone".to_string(),
                offset: 40,
                ty: CType::const_ptr(CType::char_()),
            },
        ],
    });

    // FILE (struct _IO_FILE): modeled after glibc 2.2's 32-bit stream
    // object, 148 bytes. Only the fields the simulated library and the
    // wrapper's checks actually read are laid out.
    v.push(StructLayout {
        name: "FILE".to_string(),
        size: 148,
        align: 4,
        fields: vec![
            int_field("_flags", 0),
            FieldLayout {
                name: "_IO_read_ptr".to_string(),
                offset: 4,
                ty: CType::ptr(CType::char_()),
            },
            FieldLayout {
                name: "_IO_buf_base".to_string(),
                offset: 8,
                ty: CType::ptr(CType::char_()),
            },
            FieldLayout {
                name: "_IO_buf_end".to_string(),
                offset: 12,
                ty: CType::ptr(CType::char_()),
            },
            int_field("_ungetc", 16),
            int_field("_offset", 20),
            int_field("_eof", 24),
            int_field("_error", 28),
            int_field("_fileno", 56),
            int_field("_mode", 60),
        ],
    });

    // DIR: deliberately content-opaque (the paper stresses that POSIX
    // defines no way to validate a DIR*, which is why the wrapper must
    // track directory pointers statefully).
    v.push(StructLayout {
        name: "DIR".to_string(),
        size: 32,
        align: 4,
        fields: vec![
            int_field("__dd_fd", 0),
            int_field("__dd_loc", 4),
            int_field("__dd_size", 8),
            FieldLayout {
                name: "__dd_buf".to_string(),
                offset: 12,
                ty: CType::ptr(CType::char_()),
            },
        ],
    });

    // struct dirent: d_ino + d_off + d_reclen + d_type + d_name[256].
    v.push(StructLayout {
        name: "dirent".to_string(),
        size: 268,
        align: 4,
        fields: vec![
            FieldLayout {
                name: "d_ino".to_string(),
                offset: 0,
                ty: CType::Primitive(Primitive::ULong),
            },
            FieldLayout {
                name: "d_off".to_string(),
                offset: 4,
                ty: CType::Primitive(Primitive::Long),
            },
            FieldLayout {
                name: "d_reclen".to_string(),
                offset: 8,
                ty: CType::Primitive(Primitive::UShort),
            },
            FieldLayout {
                name: "d_type".to_string(),
                offset: 10,
                ty: CType::Primitive(Primitive::UChar),
            },
            FieldLayout {
                name: "d_name".to_string(),
                offset: 11,
                ty: CType::Array {
                    elem: Box::new(CType::char_()),
                    len: Some(256),
                },
            },
        ],
    });

    // struct termios: c_iflag/c_oflag/c_cflag/c_lflag (4×4) + c_line (1) +
    // c_cc[32] + pad + c_ispeed + c_ospeed = 60 bytes, as in glibc 2.2.
    v.push(StructLayout {
        name: "termios".to_string(),
        size: 60,
        align: 4,
        fields: vec![
            FieldLayout {
                name: "c_iflag".to_string(),
                offset: 0,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "c_oflag".to_string(),
                offset: 4,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "c_cflag".to_string(),
                offset: 8,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "c_lflag".to_string(),
                offset: 12,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "c_line".to_string(),
                offset: 16,
                ty: CType::Primitive(Primitive::UChar),
            },
            FieldLayout {
                name: "c_cc".to_string(),
                offset: 17,
                ty: CType::Array {
                    elem: Box::new(CType::Primitive(Primitive::UChar)),
                    len: Some(32),
                },
            },
            FieldLayout {
                name: "c_ispeed".to_string(),
                offset: 52,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "c_ospeed".to_string(),
                offset: 56,
                ty: CType::Primitive(Primitive::UInt),
            },
        ],
    });

    // struct stat (32-bit glibc flavor, 88 bytes).
    v.push(StructLayout {
        name: "stat".to_string(),
        size: 88,
        align: 4,
        fields: vec![
            FieldLayout {
                name: "st_dev".to_string(),
                offset: 0,
                ty: CType::Primitive(Primitive::ULong),
            },
            FieldLayout {
                name: "st_ino".to_string(),
                offset: 4,
                ty: CType::Primitive(Primitive::ULong),
            },
            FieldLayout {
                name: "st_mode".to_string(),
                offset: 8,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "st_nlink".to_string(),
                offset: 12,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "st_uid".to_string(),
                offset: 16,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "st_gid".to_string(),
                offset: 20,
                ty: CType::Primitive(Primitive::UInt),
            },
            FieldLayout {
                name: "st_size".to_string(),
                offset: 24,
                ty: CType::Primitive(Primitive::Long),
            },
            FieldLayout {
                name: "st_atime".to_string(),
                offset: 28,
                ty: CType::Primitive(Primitive::Long),
            },
            FieldLayout {
                name: "st_mtime".to_string(),
                offset: 32,
                ty: CType::Primitive(Primitive::Long),
            },
            FieldLayout {
                name: "st_ctime".to_string(),
                offset: 36,
                ty: CType::Primitive(Primitive::Long),
            },
        ],
    });

    // div_t / ldiv_t: quotient + remainder.
    for name in ["div_t", "ldiv_t"] {
        v.push(StructLayout {
            name: name.to_string(),
            size: 8,
            align: 4,
            fields: vec![int_field("quot", 0), int_field("rem", 4)],
        });
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tm_is_44_bytes_like_the_paper() {
        let layout = TargetLayout::new();
        let tm = layout.struct_layout("tm").unwrap();
        assert_eq!(tm.size, 44);
        assert_eq!(tm.offset_of("tm_zone"), Some(40));
    }

    #[test]
    fn ilp32_primitive_sizes() {
        let layout = TargetLayout::new();
        assert_eq!(layout.primitive_size(Primitive::Int), 4);
        assert_eq!(layout.primitive_size(Primitive::Long), 4);
        assert_eq!(layout.primitive_size(Primitive::LongLong), 8);
        assert_eq!(layout.size_of(&CType::ptr(CType::void())), Some(4));
    }

    #[test]
    fn sizeof_struct_by_tag_and_typedef() {
        let layout = TargetLayout::new();
        let tm = CType::Tagged {
            kind: TagKind::Struct,
            tag: "tm".into(),
        };
        assert_eq!(layout.size_of(&tm), Some(44));
        assert_eq!(layout.size_of(&CType::Named("FILE".into())), Some(148));
        assert_eq!(layout.size_of(&CType::Named("DIR".into())), Some(32));
        assert_eq!(layout.size_of(&CType::Named("nonsense".into())), None);
    }

    #[test]
    fn sizeof_array() {
        let layout = TargetLayout::new();
        let arr = CType::Array {
            elem: Box::new(CType::int()),
            len: Some(10),
        };
        assert_eq!(layout.size_of(&arr), Some(40));
        let unsized_arr = CType::Array {
            elem: Box::new(CType::int()),
            len: None,
        };
        assert_eq!(layout.size_of(&unsized_arr), None);
    }

    #[test]
    fn register_custom_struct() {
        let mut layout = TargetLayout::new();
        assert!(layout
            .register_struct(StructLayout {
                name: "widget".into(),
                size: 12,
                align: 4,
                fields: vec![],
            })
            .is_none());
        assert_eq!(layout.struct_layout("widget").unwrap().size, 12);
    }

    #[test]
    fn termios_speed_fields() {
        let layout = TargetLayout::new();
        let t = layout.struct_layout("termios").unwrap();
        assert_eq!(t.size, 60);
        assert_eq!(t.offset_of("c_ispeed"), Some(52));
        assert_eq!(t.offset_of("c_ospeed"), Some(56));
    }
}
