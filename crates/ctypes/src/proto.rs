//! Function prototypes as recovered from header files.

use std::fmt;

use crate::types::CType;

/// A single parameter of a function prototype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name, if the prototype declares one (`char *__dest`).
    pub name: Option<String>,
    /// Parameter type, after array-to-pointer decay.
    pub ty: CType,
}

impl Param {
    /// A named parameter.
    pub fn named(name: &str, ty: CType) -> Param {
        Param {
            name: Some(name.to_string()),
            ty,
        }
    }

    /// An anonymous parameter.
    pub fn anon(ty: CType) -> Param {
        Param { name: None, ty }
    }
}

/// The C prototype of a global library function.
///
/// # Examples
///
/// ```
/// use healers_ctypes::{CType, FunctionPrototype, Param};
///
/// let proto = FunctionPrototype {
///     name: "strlen".into(),
///     ret: CType::Primitive(healers_ctypes::Primitive::UInt),
///     params: vec![Param::named("s", CType::const_ptr(CType::char_()))],
///     variadic: false,
/// };
/// assert_eq!(proto.to_string(), "unsigned int strlen(const char* s)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionPrototype {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Whether the function takes `...` trailing arguments.
    pub variadic: bool,
}

impl FunctionPrototype {
    /// Number of declared (non-variadic) parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for FunctionPrototype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut params: Vec<String> = self
            .params
            .iter()
            .map(|p| match &p.name {
                Some(n) => p.ty.display_with(n),
                None => p.ty.display_with(""),
            })
            .collect();
        if self.variadic {
            params.push("...".to_string());
        }
        let params = if params.is_empty() {
            "void".to_string()
        } else {
            params.join(", ")
        };
        write!(f, "{} {}({})", self.ret.display_with(""), self.name, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Primitive;

    #[test]
    fn display_zero_arg() {
        let p = FunctionPrototype {
            name: "getpid".into(),
            ret: CType::int(),
            params: vec![],
            variadic: false,
        };
        assert_eq!(p.to_string(), "int getpid(void)");
    }

    #[test]
    fn display_variadic() {
        let p = FunctionPrototype {
            name: "fprintf".into(),
            ret: CType::int(),
            params: vec![
                Param::named("stream", CType::ptr(CType::Named("FILE".into()))),
                Param::named("fmt", CType::const_ptr(CType::char_())),
            ],
            variadic: true,
        };
        assert_eq!(
            p.to_string(),
            "int fprintf(FILE* stream, const char* fmt, ...)"
        );
    }

    #[test]
    fn arity_counts_declared_params() {
        let p = FunctionPrototype {
            name: "strtol".into(),
            ret: CType::Primitive(Primitive::Long),
            params: vec![
                Param::anon(CType::const_ptr(CType::char_())),
                Param::anon(CType::ptr(CType::ptr(CType::char_()))),
                Param::anon(CType::int()),
            ],
            variadic: false,
        };
        assert_eq!(p.arity(), 3);
    }
}
