//! The request-script DSL.
//!
//! `healers serve exec`, `healers serve send`, and the CI determinism
//! diff all replay the same fixed scripts; the DSL exists so those
//! scripts can live in the repo as readable text while still producing
//! **byte-identical** request streams everywhere.
//!
//! Grammar, line-oriented:
//!
//! * `#` starts a comment (whole line);
//! * a blank line ends the current frame — consecutive request lines
//!   batch into one frame;
//! * request lines:
//!   * `ping`
//!   * `validate <function> [<value>...]`
//!   * `explain <function>`
//!   * `report`
//!   * `stats` / `stats timings` — the daemon-wide live snapshot
//!     (transcripts render only its deterministic subset)
//!   * `shutdown`
//! * values:
//!   * `int:<n>` — a signed 64-bit integer;
//!   * `double:<x>` — a 64-bit float;
//!   * `void` — no value;
//!   * `ptr:null` — the null pointer;
//!   * `ptr:0x<hex>` / `ptr:<n>` — a raw simulated address;
//!   * `ptr:str` — the canonical scratch string
//!     ([`crate::plans::SCRATCH_TEXT`]);
//!   * `ptr:buf` / `ptr:buf+<n>` — the canonical scratch buffer,
//!     optionally offset.
//!
//! The symbolic `ptr:str` / `ptr:buf` tokens resolve through
//! [`crate::plans::scratch_addrs`], which recomputes the daemon's
//! deterministic world client-side — no round trip needed to name
//! memory the daemon can actually probe.

use std::fmt;

use healers_simproc::SimValue;

use crate::plans::scratch_addrs;
use crate::proto::Request;

/// A parse failure: the offending line and what is wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// A parsed script: request frames in replay order.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Each frame's requests, batched as written.
    pub frames: Vec<Vec<Request>>,
}

impl Script {
    /// Parse the DSL.
    ///
    /// # Errors
    ///
    /// The first malformed line, with its number.
    pub fn parse(text: &str) -> Result<Script, ScriptError> {
        let (scratch_str, scratch_buf) = scratch_addrs();
        let err = |line: usize, message: String| ScriptError { line, message };

        let mut frames = Vec::new();
        let mut current: Vec<Request> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                if !raw.trim_start().starts_with('#') && !current.is_empty() {
                    frames.push(std::mem::take(&mut current));
                }
                continue;
            }
            let mut words = line.split_whitespace();
            let verb = words.next().unwrap();
            let req = match verb {
                "ping" => Request::Ping,
                "report" => Request::Report,
                "shutdown" => Request::Shutdown,
                "stats" => {
                    let timings = match words.next() {
                        None => false,
                        Some("timings") => true,
                        Some(other) => {
                            return Err(err(lineno, format!("unknown stats option `{other}`")))
                        }
                    };
                    Request::Stats { timings }
                }
                "explain" => {
                    let function = words
                        .next()
                        .ok_or_else(|| err(lineno, "explain needs a function name".into()))?;
                    Request::Explain {
                        function: function.to_string(),
                    }
                }
                "validate" => {
                    let function = words
                        .next()
                        .ok_or_else(|| err(lineno, "validate needs a function name".into()))?;
                    let mut args = Vec::new();
                    for token in words.by_ref() {
                        args.push(
                            parse_value(token, scratch_str, scratch_buf)
                                .map_err(|m| err(lineno, m))?,
                        );
                    }
                    Request::Validate {
                        function: function.to_string(),
                        args,
                    }
                }
                other => return Err(err(lineno, format!("unknown request `{other}`"))),
            };
            if words.next().is_some() {
                return Err(err(lineno, format!("trailing words after `{verb}`")));
            }
            current.push(req);
        }
        if !current.is_empty() {
            frames.push(current);
        }
        Ok(Script { frames })
    }

    /// Total requests across all frames.
    pub fn request_count(&self) -> usize {
        self.frames.iter().map(Vec::len).sum()
    }
}

fn parse_value(token: &str, scratch_str: u32, scratch_buf: u32) -> Result<SimValue, String> {
    if token == "void" {
        return Ok(SimValue::Void);
    }
    let (kind, rest) = token
        .split_once(':')
        .ok_or_else(|| format!("bad value `{token}` (expected kind:value or void)"))?;
    match kind {
        "int" => rest
            .parse::<i64>()
            .map(SimValue::Int)
            .map_err(|_| format!("bad integer `{rest}`")),
        "double" => rest
            .parse::<f64>()
            .map(SimValue::Double)
            .map_err(|_| format!("bad double `{rest}`")),
        "ptr" => {
            if rest == "null" {
                return Ok(SimValue::NULL);
            }
            if rest == "str" {
                return Ok(SimValue::Ptr(scratch_str));
            }
            if let Some(off) = rest.strip_prefix("buf") {
                let delta = match off.strip_prefix('+') {
                    None if off.is_empty() => 0,
                    Some(n) => n
                        .parse::<u32>()
                        .map_err(|_| format!("bad offset `{off}`"))?,
                    None => return Err(format!("bad pointer `{rest}`")),
                };
                return scratch_buf
                    .checked_add(delta)
                    .map(SimValue::Ptr)
                    .ok_or_else(|| format!("offset `{off}` overflows the address space"));
            }
            let addr = if let Some(hex) = rest.strip_prefix("0x") {
                u32::from_str_radix(hex, 16)
            } else {
                rest.parse::<u32>()
            };
            addr.map(SimValue::Ptr)
                .map_err(|_| format!("bad pointer `{rest}`"))
        }
        other => Err(format!("unknown value kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_on_blank_lines_and_comments_vanish() {
        let script = Script::parse(
            "# a comment\n\
             ping\n\
             validate strlen ptr:str  # inline comment\n\
             \n\
             report\n\
             shutdown\n",
        )
        .unwrap();
        assert_eq!(script.frames.len(), 2);
        assert_eq!(script.frames[0].len(), 2);
        assert_eq!(script.frames[1], vec![Request::Report, Request::Shutdown]);
        assert_eq!(script.request_count(), 4);
    }

    #[test]
    fn value_tokens_resolve() {
        let (s, b) = scratch_addrs();
        let script = Script::parse(
            "validate memcpy ptr:buf+8 ptr:str int:-3 double:2.5 void ptr:null ptr:0x1000 ptr:64\n",
        )
        .unwrap();
        let Request::Validate { args, .. } = &script.frames[0][0] else {
            panic!("expected validate");
        };
        assert_eq!(
            args,
            &vec![
                SimValue::Ptr(b + 8),
                SimValue::Ptr(s),
                SimValue::Int(-3),
                SimValue::Double(2.5),
                SimValue::Void,
                SimValue::NULL,
                SimValue::Ptr(0x1000),
                SimValue::Ptr(64),
            ]
        );
    }

    #[test]
    fn stats_verb_parses_with_and_without_timings() {
        let script = Script::parse("stats\nstats timings\n").unwrap();
        assert_eq!(
            script.frames[0],
            vec![
                Request::Stats { timings: false },
                Request::Stats { timings: true },
            ]
        );
    }

    #[test]
    fn malformed_lines_name_their_line() {
        for (text, line) in [
            ("frobnicate\n", 1),
            ("ping\nvalidate\n", 2),
            ("validate f qux:1\n", 1),
            ("validate f int:x\n", 1),
            ("validate f ptr:buf-1\n", 1),
            ("explain\n", 1),
            ("ping extra\n", 1),
            ("stats nope\n", 1),
            ("stats timings extra\n", 1),
        ] {
            let e = Script::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?} -> {e}");
        }
    }
}
