//! The length-prefixed batch frame around protocol messages.
//!
//! Layout (all integers little-endian):
//!
//! | offset | size | field | meaning |
//! |-------:|-----:|-------|---------|
//! | 0 | 4 | magic | [`MAGIC`] = `b"HSRV"` |
//! | 4 | 2 | version | [`PROTOCOL_VERSION`]; anything else is rejected |
//! | 6 | 1 | direction | 0 = request frame, 1 = response frame |
//! | 7 | 2 | count | messages in the batch |
//! | 9 | 4 | length | payload bytes that follow |
//! | 13 | length | payload | `count` messages back-to-back, each prefixed by its u32 byte length |
//!
//! Each message inside the payload carries its own u32 length prefix so
//! a reader can frame messages without understanding their content —
//! the shell/core split on the wire. [`Limits`] bounds everything an
//! attacker controls (payload length, batch size) **before** any
//! allocation, so a hostile length prefix costs the daemon nothing.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: `b"HSRV"`.
pub const MAGIC: [u8; 4] = *b"HSRV";

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame header size in bytes.
pub const HEADER_LEN: usize = 13;

/// A request frame (client → daemon).
pub const DIR_REQUEST: u8 = 0;
/// A response frame (daemon → client).
pub const DIR_RESPONSE: u8 = 1;

/// Hostile-input bounds applied while reading a frame.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum payload length accepted (bytes).
    pub max_frame_len: u32,
    /// Maximum messages per frame.
    pub max_batch: u16,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_frame_len: 1 << 20, // 1 MiB
            max_batch: 4096,
        }
    }
}

/// Everything that can go wrong reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly at a frame boundary (not an error for
    /// a connection: the peer hung up).
    Eof,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version field is not [`PROTOCOL_VERSION`].
    BadVersion(u16),
    /// The direction byte is neither request nor response.
    BadDirection(u8),
    /// The payload length exceeds [`Limits::max_frame_len`].
    Oversized(u32),
    /// The batch count exceeds [`Limits::max_batch`].
    BatchTooLarge(u16),
    /// The payload's message length prefixes do not tile the payload.
    MisframedPayload,
    /// The stream ended mid-frame.
    Truncated,
    /// An underlying transport failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (expected {PROTOCOL_VERSION})"
                )
            }
            FrameError::BadDirection(d) => write!(f, "bad direction byte {d:#04x}"),
            FrameError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds the limit"),
            FrameError::BatchTooLarge(n) => write!(f, "batch of {n} messages exceeds the limit"),
            FrameError::MisframedPayload => {
                write!(f, "message length prefixes do not tile the payload")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// One decoded frame: direction plus the raw bytes of each message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// [`DIR_REQUEST`] or [`DIR_RESPONSE`].
    pub direction: u8,
    /// Each message's undecoded bytes.
    pub messages: Vec<Vec<u8>>,
}

/// Encode a frame from already-encoded messages.
pub fn encode_frame(direction: u8, messages: &[Vec<u8>]) -> Vec<u8> {
    let payload_len: usize = messages.iter().map(|m| 4 + m.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(direction);
    out.extend_from_slice(&(messages.len() as u16).to_le_bytes());
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    for m in messages {
        out.extend_from_slice(&(m.len() as u32).to_le_bytes());
        out.extend_from_slice(m);
    }
    out
}

/// Write one frame to `w`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_frame(
    w: &mut (impl Write + ?Sized),
    direction: u8,
    messages: &[Vec<u8>],
) -> io::Result<()> {
    w.write_all(&encode_frame(direction, messages))?;
    w.flush()
}

fn read_exact_or(
    r: &mut (impl Read + ?Sized),
    buf: &mut [u8],
    at_start: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_start && filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame from `r`, enforcing `limits` before any allocation.
///
/// # Errors
///
/// [`FrameError::Eof`] at a clean frame boundary; every other variant
/// names the specific protocol violation or transport failure.
pub fn read_frame(r: &mut (impl Read + ?Sized), limits: &Limits) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;

    let magic: [u8; 4] = header[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let direction = header[6];
    if direction != DIR_REQUEST && direction != DIR_RESPONSE {
        return Err(FrameError::BadDirection(direction));
    }
    let count = u16::from_le_bytes(header[7..9].try_into().unwrap());
    if count > limits.max_batch {
        return Err(FrameError::BatchTooLarge(count));
    }
    let payload_len = u32::from_le_bytes(header[9..13].try_into().unwrap());
    if payload_len > limits.max_frame_len {
        return Err(FrameError::Oversized(payload_len));
    }
    // A message costs at least its 4-byte length prefix; a count the
    // payload cannot hold is rejected before reading it.
    if (count as u64) * 4 > u64::from(payload_len) {
        return Err(FrameError::MisframedPayload);
    }

    let mut payload = vec![0u8; payload_len as usize];
    read_exact_or(r, &mut payload, false)?;

    let mut messages = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    for _ in 0..count {
        if payload.len() - pos < 4 {
            return Err(FrameError::MisframedPayload);
        }
        let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if payload.len() - pos < len {
            return Err(FrameError::MisframedPayload);
        }
        messages.push(payload[pos..pos + len].to_vec());
        pos += len;
    }
    if pos != payload.len() {
        return Err(FrameError::MisframedPayload);
    }
    Ok(Frame {
        direction,
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of(msgs: &[&[u8]]) -> Vec<u8> {
        encode_frame(
            DIR_REQUEST,
            &msgs.iter().map(|m| m.to_vec()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn frame_round_trip() {
        let bytes = frame_of(&[b"abc", b"", b"xyzzy"]);
        let frame = read_frame(&mut bytes.as_slice(), &Limits::default()).unwrap();
        assert_eq!(frame.direction, DIR_REQUEST);
        assert_eq!(
            frame.messages,
            vec![b"abc".to_vec(), Vec::new(), b"xyzzy".to_vec()]
        );
    }

    #[test]
    fn eof_is_distinct_from_truncation() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }, &Limits::default()),
            Err(FrameError::Eof)
        ));
        let bytes = frame_of(&[b"abc"]);
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut], &Limits::default()).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_headers_are_rejected_before_allocation() {
        // Oversized length prefix: rejected from the header alone.
        let mut bytes = frame_of(&[b"abc"]);
        bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), &Limits::default()),
            Err(FrameError::Oversized(u32::MAX))
        ));

        // Unknown version.
        let mut bytes = frame_of(&[b"abc"]);
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), &Limits::default()),
            Err(FrameError::BadVersion(7))
        ));

        // Bad magic.
        let mut bytes = frame_of(&[b"abc"]);
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), &Limits::default()),
            Err(FrameError::BadMagic(_))
        ));

        // A batch count the payload cannot possibly hold.
        let mut bytes = frame_of(&[b"abc"]);
        bytes[7..9].copy_from_slice(&100u16.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), &Limits::default()),
            Err(FrameError::MisframedPayload)
        ));
    }

    #[test]
    fn message_prefixes_must_tile_the_payload() {
        let mut bytes = frame_of(&[b"abc", b"de"]);
        // Grow the first message's length prefix past its bytes.
        let first_len_at = HEADER_LEN;
        bytes[first_len_at..first_len_at + 4].copy_from_slice(&200u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), &Limits::default()),
            Err(FrameError::MisframedPayload)
        ));
    }
}
