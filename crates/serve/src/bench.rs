//! The in-process load generator behind `healers bench serve`.
//!
//! N client threads hammer an in-process daemon over bounded duplex
//! pipes — no sockets, no syscalls — so the number measured is the
//! protocol + checking cost, not kernel scheduling noise. Each client
//! pre-encodes one validate-heavy request frame and replays it,
//! recording per-frame round-trip latency in a log2-bucket
//! [`Histogram`]; the report aggregates throughput and p50/p99 across
//! all clients.
//!
//! The committed `BENCH_serve.json` baseline plus [`BenchReport::gate`]
//! turn the number into a regression tripwire: CI fails if aggregate
//! validate throughput drops below the hard floor or more than 20 %
//! below the baseline.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use healers_simproc::SimValue;
use healers_trace::Histogram;

use crate::daemon::{Daemon, DaemonConfig, PipeListener};
use crate::frame::{encode_frame, read_frame, Limits, DIR_REQUEST, DIR_RESPONSE};
use crate::pipe::duplex;
use crate::plans::ServePlans;
use crate::proto::{Request, Response, ValidateVerdict};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Client threads (each owns one connection).
    pub clients: usize,
    /// Daemon session workers.
    pub workers: usize,
    /// Frames each client replays.
    pub frames: u64,
    /// Validate requests per frame.
    pub batch: usize,
    /// Duplex pipe capacity per direction (bytes).
    pub pipe_capacity: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 4,
            workers: 4,
            frames: 200,
            batch: 1024,
            pipe_capacity: 256 * 1024,
        }
    }
}

impl BenchConfig {
    /// The CI-sized run: same shape, a fraction of the volume.
    pub fn fast() -> Self {
        BenchConfig {
            frames: 40,
            ..BenchConfig::default()
        }
    }
}

/// One bench run's results.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Client threads used.
    pub clients: usize,
    /// Daemon workers used.
    pub workers: usize,
    /// Frames per client.
    pub frames: u64,
    /// Requests per frame.
    pub batch: usize,
    /// Total requests served.
    pub requests: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Aggregate requests per second.
    pub requests_per_sec: f64,
    /// Median frame round-trip (nanoseconds).
    pub p50_frame_ns: u64,
    /// 99th-percentile frame round-trip (nanoseconds).
    pub p99_frame_ns: u64,
}

/// The request mix every client replays: validate-heavy, covering an
/// admitted string check, an admitted two-pointer copy, a rejected
/// null, and an unchecked pass-through.
fn bench_frame(plans: &ServePlans, batch: usize) -> Vec<u8> {
    let cases = [
        Request::Validate {
            function: "strlen".into(),
            args: vec![SimValue::Ptr(plans.scratch_str())],
        },
        Request::Validate {
            function: "strcpy".into(),
            args: vec![
                SimValue::Ptr(plans.scratch_buf()),
                SimValue::Ptr(plans.scratch_str()),
            ],
        },
        Request::Validate {
            function: "strlen".into(),
            args: vec![SimValue::NULL],
        },
        Request::Validate {
            function: "abs".into(),
            args: vec![SimValue::Int(-5)],
        },
    ];
    let mut messages = Vec::with_capacity(batch);
    for i in 0..batch {
        let mut buf = Vec::new();
        cases[i % cases.len()].encode(&mut buf);
        messages.push(buf);
    }
    encode_frame(DIR_REQUEST, &messages)
}

/// The functions the bench frame exercises — what the CLI builds plans
/// for before calling [`run`].
pub const BENCH_FUNCTIONS: &[&str] = &["strlen", "strcpy", "abs"];

/// Run the load generator against an in-process daemon.
///
/// # Panics
///
/// Panics on any protocol violation — this is a measurement tool; a
/// malformed reply is a bug, not a condition to recover from.
pub fn run(plans: Arc<ServePlans>, config: &BenchConfig) -> BenchReport {
    let limits = Limits {
        max_frame_len: 16 << 20,
        max_batch: u16::MAX,
    };
    let (dial, listener) = PipeListener::new();
    let daemon = Daemon::spawn(
        Box::new(listener),
        Arc::clone(&plans),
        DaemonConfig {
            workers: config.workers.max(1),
            queue_depth: config.clients + config.workers,
            limits,
        },
    );

    let frame_bytes = Arc::new(bench_frame(&plans, config.batch));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(config.clients.max(1));
    for _ in 0..config.clients.max(1) {
        let (local, remote) = duplex(config.pipe_capacity);
        dial.send(remote).expect("daemon accept loop alive");
        let frame_bytes = Arc::clone(&frame_bytes);
        let frames = config.frames;
        let batch = config.batch;
        handles.push(std::thread::spawn(move || {
            let mut conn = local;
            let mut hist = Histogram::new();
            for i in 0..frames {
                let t0 = Instant::now();
                conn.write_all(&frame_bytes).expect("write frame");
                let reply = read_frame(&mut conn, &limits).expect("read reply frame");
                hist.record(t0.elapsed().as_nanos() as u64);
                assert_eq!(reply.direction, DIR_RESPONSE, "reply direction");
                assert_eq!(reply.messages.len(), batch, "reply batch size");
                if i == 0 {
                    // Decode the first reply in full: the mix must
                    // produce the verdicts it was built to produce.
                    for (j, msg) in reply.messages.iter().enumerate() {
                        let rsp = Response::decode(msg).expect("decodable reply");
                        let Response::Validated(v) = rsp else {
                            panic!("expected a verdict, got {rsp:?}");
                        };
                        match j % 4 {
                            0 | 1 => assert_eq!(v, ValidateVerdict::Admit),
                            2 => assert!(matches!(v, ValidateVerdict::Reject { .. })),
                            _ => assert_eq!(v, ValidateVerdict::AdmitUnchecked),
                        }
                    }
                }
            }
            hist
        }));
    }
    drop(dial); // accept loop exits once the queue drains

    let mut hist = Histogram::new();
    for handle in handles {
        hist.merge(&handle.join().expect("client thread"));
    }
    let elapsed = started.elapsed();
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");

    let requests = config.clients.max(1) as u64 * config.frames * config.batch as u64;
    BenchReport {
        clients: config.clients.max(1),
        workers: config.workers.max(1),
        frames: config.frames,
        batch: config.batch,
        requests,
        elapsed,
        requests_per_sec: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_frame_ns: hist.percentile(50.0),
        p99_frame_ns: hist.percentile(99.0),
    }
}

impl BenchReport {
    /// The `BENCH_serve.json` document for this run.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"clients\": {},\n  \"workers\": {},\n  \
             \"frames_per_client\": {},\n  \"batch\": {},\n  \"requests\": {},\n  \
             \"elapsed_s\": {:.6},\n  \"requests_per_sec\": {:.0},\n  \
             \"p50_frame_ns\": {},\n  \"p99_frame_ns\": {}\n}}\n",
            self.clients,
            self.workers,
            self.frames,
            self.batch,
            self.requests,
            self.elapsed.as_secs_f64(),
            self.requests_per_sec,
            self.p50_frame_ns,
            self.p99_frame_ns,
        )
    }

    /// Human-readable summary lines.
    pub fn render(&self) -> String {
        format!(
            "serve bench: {} clients x {} frames x {} requests/frame against {} workers\n\
             requests     {}\n\
             elapsed      {:.3} s\n\
             throughput   {:.0} requests/s\n\
             frame p50    {} ns\n\
             frame p99    {} ns\n",
            self.clients,
            self.frames,
            self.batch,
            self.workers,
            self.requests,
            self.elapsed.as_secs_f64(),
            self.requests_per_sec,
            self.p50_frame_ns,
            self.p99_frame_ns,
        )
    }

    /// Gate this run: aggregate throughput must clear `floor`
    /// requests/s and stay within 20 % of the committed baseline's
    /// `requests_per_sec` (when one is given).
    ///
    /// # Errors
    ///
    /// A human-readable failure reason.
    pub fn gate(&self, floor: f64, baseline_json: Option<&str>) -> Result<String, String> {
        let mut lines = Vec::new();
        if self.requests_per_sec < floor {
            return Err(format!(
                "throughput {:.0} requests/s is below the {floor:.0} floor",
                self.requests_per_sec
            ));
        }
        lines.push(format!(
            "throughput {:.0} requests/s clears the {floor:.0} floor",
            self.requests_per_sec
        ));
        if let Some(doc) = baseline_json {
            let base = json_number(doc, "requests_per_sec")
                .ok_or_else(|| "baseline is missing requests_per_sec".to_string())?;
            let ratio = self.requests_per_sec / base.max(1e-9);
            if ratio < 0.8 {
                return Err(format!(
                    "throughput {:.0} requests/s regressed more than 20 % vs baseline {base:.0}",
                    self.requests_per_sec
                ));
            }
            lines.push(format!(
                "within 20 % of baseline {base:.0} ({:+.1} %)",
                (ratio - 1.0) * 100.0
            ));
        }
        Ok(lines.join("\n"))
    }
}

/// Extract `"key": <number>` from a flat JSON document — enough for the
/// documents this repo commits, no JSON library required.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_extracts_fields() {
        let doc = "{\n  \"requests_per_sec\": 1234567,\n  \"p50_frame_ns\": 42\n}\n";
        assert_eq!(json_number(doc, "requests_per_sec"), Some(1_234_567.0));
        assert_eq!(json_number(doc, "p50_frame_ns"), Some(42.0));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn gate_enforces_floor_and_baseline() {
        let report = BenchReport {
            clients: 4,
            workers: 4,
            frames: 10,
            batch: 10,
            requests: 400,
            elapsed: Duration::from_millis(1),
            requests_per_sec: 2_000_000.0,
            p50_frame_ns: 100,
            p99_frame_ns: 200,
        };
        assert!(report.gate(1_000_000.0, None).is_ok());
        assert!(report.gate(3_000_000.0, None).is_err());
        let baseline = report.to_json();
        assert!(report.gate(1_000_000.0, Some(&baseline)).is_ok());
        let fast_baseline = baseline.replace("2000000", "9000000");
        assert!(report.gate(1_000_000.0, Some(&fast_baseline)).is_err());
    }

    #[test]
    fn report_json_round_trips_through_the_gate_parser() {
        let report = BenchReport {
            clients: 2,
            workers: 2,
            frames: 5,
            batch: 8,
            requests: 80,
            elapsed: Duration::from_micros(10),
            requests_per_sec: 8_000_000.0,
            p50_frame_ns: 1000,
            p99_frame_ns: 3000,
        };
        let doc = report.to_json();
        assert_eq!(json_number(&doc, "requests_per_sec"), Some(8_000_000.0));
        assert_eq!(json_number(&doc, "batch"), Some(8.0));
    }
}
