//! The service shell: accept loop, bounded connection queue with
//! shedding, and the per-connection session worker pool.
//!
//! The concurrency model is deliberately coarse: **one worker owns one
//! connection from accept to close**. Requests on a connection are
//! answered strictly in arrival order, one frame at a time — the reply
//! frame for a batch is fully written before the next request frame is
//! read — so a connection's reply bytes are a pure function of its
//! request bytes, regardless of `--workers`. Parallelism exists only
//! *across* connections.
//!
//! Backpressure, layer by layer:
//!
//! * **connections** — a bounded queue between the accept loop and the
//!   workers; when it is full, new connections are *shed* with a
//!   single `busy` error frame and closed, never buffered without
//!   bound;
//! * **frames** — [`Limits`] caps payload length and batch size before
//!   allocation, so a hostile length prefix costs nothing;
//! * **replies** — responses are written with blocking I/O straight to
//!   the connection; a slow reader blocks its worker (throttling that
//!   one connection) instead of growing a daemon-side buffer. Daemon
//!   memory per connection is O(max frame length).
//!
//! # Why this worker model is TOCTOU-free by construction
//!
//! The simulated-thread work in `healers-simproc` exists precisely
//! because a robustness wrapper's check-vs-call window is exploitable
//! by a concurrent thread (see DESIGN.md §8). The daemon dodges that
//! class entirely: validation here is **stateless per frame** — a
//! `validate` request carries its argument *values* in the frame, the
//! check plan runs against those bytes, and nothing is re-read from
//! shared state between check and reply. There is no admitted pointer
//! for a sibling connection to revoke, workers share only the
//! immutable [`ServePlans`] and monotonic counters, and a connection's
//! verdicts therefore cannot depend on what any other connection is
//! doing. The `revalidate_on_preempt` hardening is an in-process
//! wrapper concern; the service boundary needs no analogue of it.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use healers_core::checker::CheckCounters;
use healers_trace::Histogram;

use healers_trace::recorder::flight;

use crate::frame::{
    encode_frame, read_frame, write_frame, FrameError, Limits, DIR_REQUEST, DIR_RESPONSE,
};
use crate::plans::ServePlans;
use crate::proto::{
    FnOutcome, Request, Response, StatsReply, TimingStat, ValidateVerdict, WorkerStat,
};

/// A serveable connection: blocking byte stream, movable to a worker.
pub trait Conn: Read + Write + Send {}

impl<T: Read + Write + Send> Conn for T {}

/// A source of connections the daemon accepts from.
pub trait Listener: Send {
    /// Wait up to `timeout` for one connection; `Ok(None)` on timeout
    /// (the daemon uses timeouts to poll its shutdown flag).
    ///
    /// # Errors
    ///
    /// A fatal accept failure stops the daemon.
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>>;
}

/// In-process listener over a channel of [`crate::pipe::DuplexStream`]
/// ends — the test and bench transport.
pub struct PipeListener {
    rx: Receiver<crate::pipe::DuplexStream>,
}

impl PipeListener {
    /// A listener plus the sender used to "dial" it.
    pub fn new() -> (
        std::sync::mpsc::Sender<crate::pipe::DuplexStream>,
        PipeListener,
    ) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, PipeListener { rx })
    }
}

impl Listener for PipeListener {
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(conn) => Ok(Some(Box::new(conn))),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Ok(None),
            // All dialers gone: no more connections will ever arrive.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "all dialers disconnected",
            )),
        }
    }
}

/// Unix-domain-socket listener — the production transport.
#[cfg(unix)]
pub struct UnixSocketListener {
    inner: std::os::unix::net::UnixListener,
}

#[cfg(unix)]
impl UnixSocketListener {
    /// Bind `path`, removing a stale socket file first.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(path: &std::path::Path) -> io::Result<UnixSocketListener> {
        let _ = std::fs::remove_file(path);
        let inner = std::os::unix::net::UnixListener::bind(path)?;
        inner.set_nonblocking(true)?;
        Ok(UnixSocketListener { inner })
    }
}

#[cfg(unix)]
impl Listener for UnixSocketListener {
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some(Box::new(stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Session worker threads (= concurrently served connections).
    pub workers: usize,
    /// Connections queued beyond the busy workers before shedding.
    pub queue_depth: usize,
    /// Hostile-input frame limits.
    pub limits: Limits,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            queue_depth: 16,
            limits: Limits::default(),
        }
    }
}

/// Daemon-global counters. Exposed over the wire only through
/// [`Request::Stats`], whose reply is explicitly daemon-scoped — every
/// *other* reply stays a pure function of one connection's requests
/// (see the crate-level determinism contract). The deterministic
/// subset ([`ServeCounters::deterministic_totals`]) counts logical
/// events, so it is still byte-identical for any `--workers`.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted and queued.
    pub connections: AtomicU64,
    /// Connections shed with a busy frame because the queue was full.
    pub shed: AtomicU64,
    /// Request frames served.
    pub frames: AtomicU64,
    /// Requests served (all kinds).
    pub requests: AtomicU64,
    /// Validate requests.
    pub validates: AtomicU64,
    /// Validate verdicts that admitted the call (checked or not).
    pub admits: AtomicU64,
    /// Validate verdicts that rejected the call.
    pub rejects: AtomicU64,
    /// Malformed frames or messages answered with an error.
    pub protocol_errors: AtomicU64,
}

impl ServeCounters {
    /// A deterministic-order snapshot for rendering.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("shed", self.shed.load(Ordering::Relaxed)),
            ("frames", self.frames.load(Ordering::Relaxed)),
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("validates", self.validates.load(Ordering::Relaxed)),
            ("admits", self.admits.load(Ordering::Relaxed)),
            ("rejects", self.rejects.load(Ordering::Relaxed)),
            (
                "protocol_errors",
                self.protocol_errors.load(Ordering::Relaxed),
            ),
        ]
    }

    /// The **deterministic subset** carried in a `Stats` reply: every
    /// counter that counts logical events of the request history, in a
    /// fixed order. `shed` is excluded — whether a connection sheds
    /// depends on worker scheduling, not on the request bytes.
    pub fn deterministic_totals(&self) -> Vec<(String, u64)> {
        [
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("frames", self.frames.load(Ordering::Relaxed)),
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("validates", self.validates.load(Ordering::Relaxed)),
            ("admits", self.admits.load(Ordering::Relaxed)),
            ("rejects", self.rejects.load(Ordering::Relaxed)),
            (
                "protocol_errors",
                self.protocol_errors.load(Ordering::Relaxed),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

/// Per-worker live counters.
#[derive(Debug, Default)]
struct WorkerCells {
    frames: AtomicU64,
    requests: AtomicU64,
}

/// The daemon-wide live statistics hub backing [`Request::Stats`]:
/// per-function validate outcomes (deterministic, plan order),
/// per-worker frame/request counters, and the connection-queue
/// high-water mark (both live scheduling state, outside the
/// determinism contract).
#[derive(Debug)]
pub struct StatsHub {
    fn_names: Vec<String>,
    fn_index: std::collections::BTreeMap<String, usize>,
    /// `[admitted, rejected, unchecked]` per function, plan order.
    fn_outcomes: Vec<[AtomicU64; 3]>,
    workers: Vec<WorkerCells>,
    queued: AtomicU64,
    queue_highwater: AtomicU64,
}

impl StatsHub {
    /// A hub for `workers` session workers over `functions` (the
    /// daemon's plan order).
    pub fn new(functions: &[String], workers: usize) -> StatsHub {
        StatsHub {
            fn_names: functions.to_vec(),
            fn_index: functions
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i))
                .collect(),
            fn_outcomes: functions.iter().map(|_| Default::default()).collect(),
            workers: (0..workers.max(1))
                .map(|_| WorkerCells::default())
                .collect(),
            queued: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
        }
    }

    fn record_outcome(&self, function: &str, verdict: &ValidateVerdict) {
        let Some(&i) = self.fn_index.get(function) else {
            return;
        };
        let cell = match verdict {
            ValidateVerdict::Admit => 0,
            // A repair hint is still a failed validation; it lands in
            // the reject column so the deterministic stats are
            // identical whether or not the hint gate is on.
            ValidateVerdict::Reject { .. } | ValidateVerdict::WouldRepair { .. } => 1,
            ValidateVerdict::AdmitUnchecked => 2,
            ValidateVerdict::UnknownFunction => return,
        };
        self.fn_outcomes[i][cell].fetch_add(1, Ordering::Relaxed);
    }

    fn enqueue(&self) {
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_highwater.fetch_max(depth, Ordering::Relaxed);
    }

    fn dequeue(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// Per-function validate outcomes, plan order — the deterministic
    /// half of the hub.
    pub fn fn_outcomes(&self) -> Vec<FnOutcome> {
        self.fn_names
            .iter()
            .zip(self.fn_outcomes.iter())
            .map(|(name, cells)| FnOutcome {
                function: name.clone(),
                admitted: cells[0].load(Ordering::Relaxed),
                rejected: cells[1].load(Ordering::Relaxed),
                unchecked: cells[2].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Highest connection-queue depth observed so far.
    pub fn queue_highwater(&self) -> u64 {
        self.queue_highwater.load(Ordering::Relaxed)
    }

    fn worker_stats(&self) -> Vec<WorkerStat> {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerStat {
                worker: i as u16,
                frames: w.frames.load(Ordering::Relaxed),
                requests: w.requests.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Assemble a full [`StatsReply`] from the hub plus the global
    /// counters and (when `timings`) the gated latency telemetry.
    pub fn stats_reply(
        &self,
        counters: &ServeCounters,
        telemetry: &ServeTelemetry,
        timings: bool,
    ) -> StatsReply {
        StatsReply {
            totals: counters.deterministic_totals(),
            functions: self.fn_outcomes(),
            workers: self.worker_stats(),
            queue_highwater: self.queue_highwater(),
            shed: counters.shed.load(Ordering::Relaxed),
            timings: if timings {
                telemetry.timing_stats()
            } else {
                Vec::new()
            },
        }
    }
}

/// Gated per-request latency telemetry: one log2-bucket histogram per
/// request kind, recorded only while the [`healers_trace`] gate is on.
#[derive(Debug, Default)]
pub struct ServeTelemetry {
    hists: Mutex<std::collections::BTreeMap<&'static str, Histogram>>,
}

impl ServeTelemetry {
    fn record(&self, kind: &'static str, nanos: u64) {
        let mut hists = self.hists.lock().unwrap();
        hists.entry(kind).or_default().record(nanos);
    }

    /// The histograms as wire-ready [`TimingStat`]s, name order.
    pub fn timing_stats(&self) -> Vec<TimingStat> {
        let hists = self.hists.lock().unwrap();
        hists
            .iter()
            .map(|(name, h)| TimingStat {
                name: (*name).to_string(),
                count: h.count(),
                p50: h.percentile(50.0),
                p99: h.percentile(99.0),
            })
            .collect()
    }

    /// Render `kind calls p50(ns) p99(ns)` lines (empty when the gate
    /// stayed off).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let hists = self.hists.lock().unwrap();
        let mut out = String::new();
        for (kind, h) in hists.iter() {
            let _ = writeln!(
                out,
                "  {:<10} {:>10} {:>10} {:>10}",
                kind,
                h.count(),
                h.percentile(50.0),
                h.percentile(99.0)
            );
        }
        out
    }
}

/// Per-session (per-connection) counters: the payload of a `Report`
/// response. Purely session-local, so replies stay deterministic.
#[derive(Debug, Default, Clone)]
pub struct SessionStats {
    /// Request frames served.
    pub frames: u64,
    /// Requests served, the `Report` that reads this included.
    pub requests: u64,
    /// Ping requests.
    pub pings: u64,
    /// Validate requests.
    pub validates: u64,
    /// Validates admitted with all checks passing.
    pub admitted: u64,
    /// Validates admitted because the function carries no checks.
    pub admitted_unchecked: u64,
    /// Validates rejected by a failing check.
    pub rejected: u64,
    /// Validates naming a function the daemon has no plan for.
    pub unknown_functions: u64,
    /// Explain requests.
    pub explains: u64,
    /// Report requests (this one included).
    pub reports: u64,
    /// Individual argument checks executed.
    pub checks: u64,
    /// Bulk page-run probes executed.
    pub run_probes: u64,
    /// Bulk NUL scans executed.
    pub nul_scans: u64,
    /// Bytes covered by the bulk kernels.
    pub bytes_scanned: u64,
    /// Malformed messages answered with an error response.
    pub errors: u64,
}

impl SessionStats {
    /// The fixed-order counter list a `Report` response carries. The
    /// order is part of the wire contract: changing it changes reply
    /// bytes.
    pub fn as_counters(&self) -> Vec<(String, u64)> {
        [
            ("frames", self.frames),
            ("requests", self.requests),
            ("pings", self.pings),
            ("validates", self.validates),
            ("admitted", self.admitted),
            ("admitted_unchecked", self.admitted_unchecked),
            ("rejected", self.rejected),
            ("unknown_functions", self.unknown_functions),
            ("explains", self.explains),
            ("reports", self.reports),
            ("checks", self.checks),
            ("run_probes", self.run_probes),
            ("nul_scans", self.nul_scans),
            ("bytes_scanned", self.bytes_scanned),
            ("errors", self.errors),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

/// What a finished session reports back to its worker.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The session saw (and acknowledged) a `Shutdown` request.
    pub shutdown: bool,
    /// The session's counters.
    pub stats: SessionStats,
}

fn handle_request(
    req: Request,
    plans: &ServePlans,
    stats: &mut SessionStats,
    counters: &ServeCounters,
    hub: &StatsHub,
    telemetry: &ServeTelemetry,
) -> (Response, bool) {
    stats.requests += 1;
    counters.requests.fetch_add(1, Ordering::Relaxed);
    match req {
        Request::Ping => {
            stats.pings += 1;
            (Response::Pong, false)
        }
        Request::Validate { function, args } => {
            stats.validates += 1;
            counters.validates.fetch_add(1, Ordering::Relaxed);
            let mut ctrs = CheckCounters::default();
            let verdict = plans.validate(&function, &args, &mut ctrs);
            stats.checks += ctrs.table_hits + ctrs.run_probes + ctrs.nul_scans;
            stats.run_probes += ctrs.run_probes;
            stats.nul_scans += ctrs.nul_scans;
            stats.bytes_scanned += ctrs.bytes_scanned;
            hub.record_outcome(&function, &verdict);
            match &verdict {
                ValidateVerdict::Admit => {
                    stats.admitted += 1;
                    counters.admits.fetch_add(1, Ordering::Relaxed);
                }
                ValidateVerdict::AdmitUnchecked => {
                    stats.admitted_unchecked += 1;
                    counters.admits.fetch_add(1, Ordering::Relaxed);
                }
                ValidateVerdict::Reject { .. } | ValidateVerdict::WouldRepair { .. } => {
                    stats.rejected += 1;
                    counters.rejects.fetch_add(1, Ordering::Relaxed);
                }
                ValidateVerdict::UnknownFunction => stats.unknown_functions += 1,
            }
            (Response::Validated(verdict), false)
        }
        Request::Explain { function } => {
            stats.explains += 1;
            (
                Response::Explained {
                    info: plans.explain(&function),
                },
                false,
            )
        }
        Request::Report => {
            stats.reports += 1;
            (
                Response::Reported {
                    counters: stats.as_counters(),
                },
                false,
            )
        }
        Request::Shutdown => (Response::Bye, true),
        Request::Stats { timings } => (
            Response::Stats(hub.stats_reply(counters, telemetry, timings)),
            false,
        ),
    }
}

fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Ping => "ping",
        Request::Validate { .. } => "validate",
        Request::Explain { .. } => "explain",
        Request::Report => "report",
        Request::Shutdown => "shutdown",
        Request::Stats { .. } => "stats",
    }
}

/// Serve one connection to completion: frames strictly in order, one
/// response message per request message, replies flushed before the
/// next frame is read. `worker` indexes the hub's per-worker counters
/// (pass 0 outside a worker pool).
pub fn serve_session(
    conn: &mut dyn Conn,
    plans: &ServePlans,
    limits: &Limits,
    counters: &ServeCounters,
    telemetry: &ServeTelemetry,
    hub: &StatsHub,
    worker: usize,
) -> SessionOutcome {
    let mut stats = SessionStats::default();
    let mut shutdown = false;
    let cells = &hub.workers[worker.min(hub.workers.len() - 1)];
    'frames: loop {
        let frame = match read_frame(conn, limits) {
            Ok(f) => f,
            Err(FrameError::Eof) => break,
            Err(e) => {
                // Malformed framing: answer with one error frame and
                // close — resynchronizing an unframed byte stream is
                // guesswork this protocol refuses to do.
                stats.errors += 1;
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                flight().record("frame-error", "", &format!("{e}"));
                let mut msg = Vec::new();
                Response::Error {
                    message: format!("protocol error: {e}"),
                }
                .encode(&mut msg);
                let _ = write_frame(conn, DIR_RESPONSE, &[msg]);
                break;
            }
        };
        if frame.direction != DIR_REQUEST {
            stats.errors += 1;
            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
            flight().record("frame-error", "", "expected a request frame");
            let mut msg = Vec::new();
            Response::Error {
                message: "protocol error: expected a request frame".to_string(),
            }
            .encode(&mut msg);
            let _ = write_frame(conn, DIR_RESPONSE, &[msg]);
            break;
        }

        stats.frames += 1;
        counters.frames.fetch_add(1, Ordering::Relaxed);
        cells.frames.fetch_add(1, Ordering::Relaxed);
        let traced = healers_trace::enabled();
        let mut replies: Vec<Vec<u8>> = Vec::with_capacity(frame.messages.len());
        for raw in &frame.messages {
            let response = match Request::decode(raw) {
                Ok(req) => {
                    let started = traced.then(std::time::Instant::now);
                    let kind = request_kind(&req);
                    let (response, stop) =
                        handle_request(req, plans, &mut stats, counters, hub, telemetry);
                    cells.requests.fetch_add(1, Ordering::Relaxed);
                    if let Some(s) = started {
                        telemetry.record(kind, s.elapsed().as_nanos() as u64);
                    }
                    shutdown |= stop;
                    response
                }
                Err(e) => {
                    stats.errors += 1;
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    flight().record("frame-error", "", &format!("bad request: {e}"));
                    Response::Error {
                        message: format!("bad request: {e}"),
                    }
                }
            };
            let mut buf = Vec::new();
            response.encode(&mut buf);
            replies.push(buf);
        }
        if write_frame(conn, DIR_RESPONSE, &replies).is_err() {
            break 'frames; // peer gone mid-reply
        }
        if shutdown {
            break;
        }
    }
    SessionOutcome { shutdown, stats }
}

/// A running daemon: accept thread plus session workers.
pub struct Daemon {
    accept_handle: JoinHandle<io::Result<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServeCounters>,
    telemetry: Arc<ServeTelemetry>,
    hub: Arc<StatsHub>,
}

impl Daemon {
    /// Start the accept loop and `config.workers` session workers over
    /// `listener`, serving `plans`.
    pub fn spawn(
        mut listener: Box<dyn Listener>,
        plans: Arc<ServePlans>,
        config: DaemonConfig,
    ) -> Daemon {
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        let telemetry = Arc::new(ServeTelemetry::default());
        let hub = Arc::new(StatsHub::new(plans.functions(), config.workers.max(1)));
        let limits = config.limits;
        let (queue_tx, queue_rx) = sync_channel::<Box<dyn Conn>>(config.queue_depth.max(1));
        let queue_rx = Arc::new(Mutex::new(queue_rx));

        let mut worker_handles = Vec::with_capacity(config.workers.max(1));
        for worker in 0..config.workers.max(1) {
            let queue_rx = Arc::clone(&queue_rx);
            let plans = Arc::clone(&plans);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            let hub = Arc::clone(&hub);
            worker_handles.push(std::thread::spawn(move || loop {
                // Hold the lock only to dequeue: sessions run unlocked.
                let conn = { queue_rx.lock().unwrap().recv() };
                let Ok(mut conn) = conn else { return };
                hub.dequeue();
                let outcome = serve_session(
                    conn.as_mut(),
                    &plans,
                    &limits,
                    &counters,
                    &telemetry,
                    &hub,
                    worker,
                );
                if outcome.shutdown {
                    shutdown.store(true, Ordering::SeqCst);
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_counters = Arc::clone(&counters);
        let accept_hub = Arc::clone(&hub);
        let accept_handle = std::thread::spawn(move || -> io::Result<()> {
            while !accept_shutdown.load(Ordering::SeqCst) {
                let conn = match listener.accept(Duration::from_millis(10)) {
                    Ok(Some(conn)) => conn,
                    Ok(None) => continue,
                    Err(e) if e.kind() == io::ErrorKind::BrokenPipe => break,
                    Err(e) => return Err(e),
                };
                accept_counters.connections.fetch_add(1, Ordering::Relaxed);
                accept_hub.enqueue();
                match queue_tx.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut conn)) => {
                        // Shed: bounded queue, never unbounded buffering.
                        accept_hub.dequeue();
                        accept_counters.shed.fetch_add(1, Ordering::Relaxed);
                        flight().record("queue-shed", "", "connection queue full");
                        let mut msg = Vec::new();
                        Response::Error {
                            message: "busy: connection queue full".to_string(),
                        }
                        .encode(&mut msg);
                        let _ = conn.write_all(&encode_frame(DIR_RESPONSE, &[msg]));
                        let _ = conn.flush();
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Ok(())
            // queue_tx drops here: workers drain the queue, then exit.
        });

        Daemon {
            accept_handle,
            worker_handles,
            shutdown,
            counters,
            telemetry,
            hub,
        }
    }

    /// Daemon-global counters.
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.counters)
    }

    /// Gated per-request latency telemetry.
    pub fn telemetry(&self) -> Arc<ServeTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// The live statistics hub backing `Request::Stats`.
    pub fn stats_hub(&self) -> Arc<StatsHub> {
        Arc::clone(&self.hub)
    }

    /// Ask the accept loop to stop (without a `Shutdown` request).
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the accept loop and every worker to finish.
    ///
    /// # Errors
    ///
    /// Propagates a fatal accept-loop failure.
    ///
    /// # Panics
    ///
    /// Panics if a daemon thread panicked.
    pub fn join(self) -> io::Result<()> {
        let result = self.accept_handle.join().expect("accept thread panicked");
        for handle in self.worker_handles {
            handle.join().expect("worker thread panicked");
        }
        result
    }
}
