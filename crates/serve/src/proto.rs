//! The request/response message model and its byte codec.
//!
//! Messages travel inside [`frame`](crate::frame)s, many per frame
//! (per-connection batching). Every integer is little-endian; every
//! string is length-prefixed UTF-8. The codec is written as this
//! repo's own medicine prescribes: decoding never panics, never
//! over-reads, and rejects every malformed byte sequence with a
//! [`WireError`] naming what went wrong.
//!
//! Request kinds (wire tag in brackets):
//!
//! | kind | payload |
//! |------|---------|
//! | \[0\] `Ping` | — |
//! | \[1\] `Validate` | function name, argument values |
//! | \[2\] `Explain` | function name |
//! | \[3\] `Report` | — |
//! | \[4\] `Shutdown` | — |
//! | \[5\] `Stats` | flags (bit 0 = include timings) |
//!
//! Response kinds mirror them: `Pong`, `Validated` (admit / reject
//! with the failing argument and check notation / unknown function),
//! `Explained` (prototype plus the per-argument robust type and active
//! check), `Reported` (the session's counters, fixed order), `Bye`,
//! `Error` for a request the daemon could parse but not serve, and
//! `Stats` (\[6\]) — the daemon-wide live [`StatsReply`]: a
//! deterministic section (global totals and per-function validate
//! outcomes, byte-identical for any `--workers`) plus a live section
//! (per-worker counters, queue high-water, shed count) and opt-in
//! latency percentiles.

use std::fmt;

use healers_simproc::SimValue;

/// Decoding failure: the byte stream is not a valid message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// An unknown request/response/value tag.
    UnknownTag(u8),
    /// A string field is not UTF-8.
    BadString,
    /// A pointer value exceeds the simulated 32-bit address space.
    PtrOutOfRange(u64),
    /// The message decoded cleanly but left trailing bytes.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
            WireError::PtrOutOfRange(p) => {
                write!(
                    f,
                    "pointer {p:#x} outside the 32-bit simulated address space"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// One request from a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Validate a call's arguments against `function`'s wrapper plan.
    Validate {
        /// Target function name.
        function: String,
        /// Argument values, in call order.
        args: Vec<SimValue>,
    },
    /// Walk `function`'s robust-type plan: prototype, per-argument
    /// robust type, and the active check each argument resolves to.
    Explain {
        /// Target function name.
        function: String,
    },
    /// The session's aggregated counters so far.
    Report,
    /// Stop the daemon (after acknowledging).
    Shutdown,
    /// The daemon-wide live statistics snapshot.
    Stats {
        /// Include wall-clock latency percentiles (nondeterministic;
        /// only populated while the telemetry gate is on).
        timings: bool,
    },
}

/// The verdict of one `Validate` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateVerdict {
    /// Every active check passed.
    Admit,
    /// The function is exported but carries no checks (safe, or checks
    /// disabled by configuration) — the call is passed through.
    AdmitUnchecked,
    /// A check failed.
    Reject {
        /// Index of the violating argument.
        arg: u16,
        /// Notation of the check that failed.
        check: String,
    },
    /// A check failed, but a repair-mode wrapper would fix the
    /// argument and let the call proceed. Only emitted when the daemon
    /// runs with [`repair_hints`](crate::PlanConfig::repair_hints)
    /// enabled — the flag is the wire version gate, so clients that
    /// predate this tag never see it.
    WouldRepair {
        /// Index of the violating (repairable) argument.
        arg: u16,
        /// Notation of the check that failed.
        check: String,
    },
    /// The daemon has no plan or declaration for the function.
    UnknownFunction,
}

/// One argument's entry in an `Explained` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainArg {
    /// The discovered robust type notation (`-` if unconstrained).
    pub robust: String,
    /// The checkable supertype the wrapper actually enforces (`-` if
    /// the argument is left unchecked).
    pub check: String,
}

/// Per-function validate outcome totals in a [`StatsReply`] —
/// deterministic (logical-event counts, worker-count invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnOutcome {
    /// Function name, in the daemon's plan order.
    pub function: String,
    /// Validates admitted with all checks passing.
    pub admitted: u64,
    /// Validates rejected by a failing check.
    pub rejected: u64,
    /// Validates admitted because the function carries no checks.
    pub unchecked: u64,
}

/// One worker's live counters in a [`StatsReply`] — nondeterministic
/// (which worker serves which connection is a scheduling accident).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (0-based).
    pub worker: u16,
    /// Request frames this worker served.
    pub frames: u64,
    /// Requests this worker served.
    pub requests: u64,
}

/// One latency histogram summary in a [`StatsReply`] — opt-in, only
/// populated while the telemetry gate is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingStat {
    /// Metric name (request kind).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// p50 upper bound (nanoseconds).
    pub p50: u64,
    /// p99 upper bound (nanoseconds).
    pub p99: u64,
}

/// The payload of a `Stats` response: the daemon's live observability
/// snapshot.
///
/// The **deterministic subset** — [`totals`](StatsReply::totals) and
/// [`functions`](StatsReply::functions) — counts logical events, so
/// for the same sequential request history it is byte-identical for
/// any `--workers` value (the CI stats-smoke job diffs it). Everything
/// else is live scheduling state and excluded from that contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Global `(name, value)` totals, fixed order — deterministic.
    pub totals: Vec<(String, u64)>,
    /// Per-function validate outcomes, plan order — deterministic.
    pub functions: Vec<FnOutcome>,
    /// Per-worker live counters — nondeterministic.
    pub workers: Vec<WorkerStat>,
    /// Highest connection-queue depth observed — nondeterministic.
    pub queue_highwater: u64,
    /// Connections shed with a busy frame — nondeterministic.
    pub shed: u64,
    /// Latency summaries (empty unless requested and the telemetry
    /// gate is on) — nondeterministic.
    pub timings: Vec<TimingStat>,
}

/// One response from the daemon. Mirrors [`Request`] one-to-one; a
/// request frame of *n* messages is answered by a response frame of
/// *n* messages in the same order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Validate`].
    Validated(ValidateVerdict),
    /// Answer to [`Request::Explain`].
    Explained {
        /// `Some((prototype, args))` when the function is known.
        info: Option<(String, Vec<ExplainArg>)>,
    },
    /// Answer to [`Request::Report`]: `(name, value)` counters in a
    /// fixed, documented order (see [`crate::daemon::SessionStats`]).
    Reported {
        /// Counter names and values, deterministic order.
        counters: Vec<(String, u64)>,
    },
    /// Answer to [`Request::Shutdown`].
    Bye,
    /// The request was well-formed but unserveable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
}

// ---- primitive readers/writers -------------------------------------

/// A bounds-checked cursor over a message payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Strings longer than a u16 length prefix cannot be represented;
/// encoders truncate rather than wrap (checks/prototypes are far
/// shorter in practice).
pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

// ---- SimValue codec -------------------------------------------------

const VAL_INT: u8 = 0;
const VAL_PTR: u8 = 1;
const VAL_DOUBLE: u8 = 2;
const VAL_VOID: u8 = 3;

fn put_value(out: &mut Vec<u8>, v: SimValue) {
    match v {
        SimValue::Int(i) => {
            out.push(VAL_INT);
            put_u64(out, i as u64);
        }
        SimValue::Ptr(p) => {
            out.push(VAL_PTR);
            put_u64(out, u64::from(p));
        }
        SimValue::Double(d) => {
            out.push(VAL_DOUBLE);
            put_u64(out, d.to_bits());
        }
        SimValue::Void => out.push(VAL_VOID),
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<SimValue, WireError> {
    match c.u8()? {
        VAL_INT => Ok(SimValue::Int(c.u64()? as i64)),
        VAL_PTR => {
            let raw = c.u64()?;
            let p = u32::try_from(raw).map_err(|_| WireError::PtrOutOfRange(raw))?;
            Ok(SimValue::Ptr(p))
        }
        VAL_DOUBLE => Ok(SimValue::Double(f64::from_bits(c.u64()?))),
        VAL_VOID => Ok(SimValue::Void),
        t => Err(WireError::UnknownTag(t)),
    }
}

// ---- Request codec --------------------------------------------------

const REQ_PING: u8 = 0;
const REQ_VALIDATE: u8 = 1;
const REQ_EXPLAIN: u8 = 2;
const REQ_REPORT: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_STATS: u8 = 5;

/// `Stats` request flag: include latency percentiles.
const STATS_FLAG_TIMINGS: u8 = 1;

impl Request {
    /// Append the wire form of this request to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Validate { function, args } => {
                out.push(REQ_VALIDATE);
                put_string(out, function);
                out.push(args.len().min(u8::MAX as usize) as u8);
                for &a in args.iter().take(u8::MAX as usize) {
                    put_value(out, a);
                }
            }
            Request::Explain { function } => {
                out.push(REQ_EXPLAIN);
                put_string(out, function);
            }
            Request::Report => out.push(REQ_REPORT),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Stats { timings } => {
                out.push(REQ_STATS);
                out.push(if *timings { STATS_FLAG_TIMINGS } else { 0 });
            }
        }
    }

    /// Decode one request occupying exactly `buf`.
    ///
    /// # Errors
    ///
    /// Rejects truncation, unknown tags, bad strings, out-of-range
    /// pointers, and trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(buf);
        let req = Self::decode_from(&mut c)?;
        if c.remaining() != 0 {
            return Err(WireError::TrailingBytes(c.remaining()));
        }
        Ok(req)
    }

    pub(crate) fn decode_from(c: &mut Cursor<'_>) -> Result<Request, WireError> {
        match c.u8()? {
            REQ_PING => Ok(Request::Ping),
            REQ_VALIDATE => {
                let function = c.string()?;
                let argc = c.u8()? as usize;
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(get_value(c)?);
                }
                Ok(Request::Validate { function, args })
            }
            REQ_EXPLAIN => Ok(Request::Explain {
                function: c.string()?,
            }),
            REQ_REPORT => Ok(Request::Report),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            REQ_STATS => Ok(Request::Stats {
                timings: c.u8()? & STATS_FLAG_TIMINGS != 0,
            }),
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

// ---- Response codec -------------------------------------------------

const RSP_PONG: u8 = 0;
const RSP_VALIDATED: u8 = 1;
const RSP_EXPLAINED: u8 = 2;
const RSP_REPORTED: u8 = 3;
const RSP_BYE: u8 = 4;
const RSP_ERROR: u8 = 5;
const RSP_STATS: u8 = 6;

const VERDICT_ADMIT: u8 = 0;
const VERDICT_ADMIT_UNCHECKED: u8 = 1;
const VERDICT_REJECT: u8 = 2;
const VERDICT_UNKNOWN_FUNCTION: u8 = 3;
const VERDICT_WOULD_REPAIR: u8 = 4;

impl Response {
    /// Append the wire form of this response to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong => out.push(RSP_PONG),
            Response::Validated(v) => {
                out.push(RSP_VALIDATED);
                match v {
                    ValidateVerdict::Admit => out.push(VERDICT_ADMIT),
                    ValidateVerdict::AdmitUnchecked => out.push(VERDICT_ADMIT_UNCHECKED),
                    ValidateVerdict::Reject { arg, check } => {
                        out.push(VERDICT_REJECT);
                        put_u16(out, *arg);
                        put_string(out, check);
                    }
                    ValidateVerdict::WouldRepair { arg, check } => {
                        out.push(VERDICT_WOULD_REPAIR);
                        put_u16(out, *arg);
                        put_string(out, check);
                    }
                    ValidateVerdict::UnknownFunction => out.push(VERDICT_UNKNOWN_FUNCTION),
                }
            }
            Response::Explained { info } => {
                out.push(RSP_EXPLAINED);
                match info {
                    None => out.push(0),
                    Some((proto, args)) => {
                        out.push(1);
                        put_string(out, proto);
                        out.push(args.len().min(u8::MAX as usize) as u8);
                        for a in args.iter().take(u8::MAX as usize) {
                            put_string(out, &a.robust);
                            put_string(out, &a.check);
                        }
                    }
                }
            }
            Response::Reported { counters } => {
                out.push(RSP_REPORTED);
                put_u16(out, counters.len().min(u16::MAX as usize) as u16);
                for (name, value) in counters.iter().take(u16::MAX as usize) {
                    put_string(out, name);
                    put_u64(out, *value);
                }
            }
            Response::Bye => out.push(RSP_BYE),
            Response::Error { message } => {
                out.push(RSP_ERROR);
                put_string(out, message);
            }
            Response::Stats(s) => {
                out.push(RSP_STATS);
                put_u16(out, s.totals.len().min(u16::MAX as usize) as u16);
                for (name, value) in s.totals.iter().take(u16::MAX as usize) {
                    put_string(out, name);
                    put_u64(out, *value);
                }
                put_u16(out, s.functions.len().min(u16::MAX as usize) as u16);
                for f in s.functions.iter().take(u16::MAX as usize) {
                    put_string(out, &f.function);
                    put_u64(out, f.admitted);
                    put_u64(out, f.rejected);
                    put_u64(out, f.unchecked);
                }
                put_u16(out, s.workers.len().min(u16::MAX as usize) as u16);
                for w in s.workers.iter().take(u16::MAX as usize) {
                    put_u16(out, w.worker);
                    put_u64(out, w.frames);
                    put_u64(out, w.requests);
                }
                put_u64(out, s.queue_highwater);
                put_u64(out, s.shed);
                put_u16(out, s.timings.len().min(u16::MAX as usize) as u16);
                for t in s.timings.iter().take(u16::MAX as usize) {
                    put_string(out, &t.name);
                    put_u64(out, t.count);
                    put_u64(out, t.p50);
                    put_u64(out, t.p99);
                }
            }
        }
    }

    /// Decode one response occupying exactly `buf`.
    ///
    /// # Errors
    ///
    /// Rejects truncation, unknown tags, bad strings, and trailing
    /// bytes.
    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(buf);
        let rsp = Self::decode_from(&mut c)?;
        if c.remaining() != 0 {
            return Err(WireError::TrailingBytes(c.remaining()));
        }
        Ok(rsp)
    }

    pub(crate) fn decode_from(c: &mut Cursor<'_>) -> Result<Response, WireError> {
        match c.u8()? {
            RSP_PONG => Ok(Response::Pong),
            RSP_VALIDATED => {
                let verdict = match c.u8()? {
                    VERDICT_ADMIT => ValidateVerdict::Admit,
                    VERDICT_ADMIT_UNCHECKED => ValidateVerdict::AdmitUnchecked,
                    VERDICT_REJECT => ValidateVerdict::Reject {
                        arg: c.u16()?,
                        check: c.string()?,
                    },
                    VERDICT_WOULD_REPAIR => ValidateVerdict::WouldRepair {
                        arg: c.u16()?,
                        check: c.string()?,
                    },
                    VERDICT_UNKNOWN_FUNCTION => ValidateVerdict::UnknownFunction,
                    t => return Err(WireError::UnknownTag(t)),
                };
                Ok(Response::Validated(verdict))
            }
            RSP_EXPLAINED => {
                let info = match c.u8()? {
                    0 => None,
                    1 => {
                        let proto = c.string()?;
                        let argc = c.u8()? as usize;
                        let mut args = Vec::with_capacity(argc);
                        for _ in 0..argc {
                            args.push(ExplainArg {
                                robust: c.string()?,
                                check: c.string()?,
                            });
                        }
                        Some((proto, args))
                    }
                    t => return Err(WireError::UnknownTag(t)),
                };
                Ok(Response::Explained { info })
            }
            RSP_REPORTED => {
                let n = c.u16()? as usize;
                let mut counters = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = c.string()?;
                    let value = c.u64()?;
                    counters.push((name, value));
                }
                Ok(Response::Reported { counters })
            }
            RSP_BYE => Ok(Response::Bye),
            RSP_ERROR => Ok(Response::Error {
                message: c.string()?,
            }),
            RSP_STATS => {
                let n = c.u16()? as usize;
                let mut totals = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = c.string()?;
                    let value = c.u64()?;
                    totals.push((name, value));
                }
                let n = c.u16()? as usize;
                let mut functions = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    functions.push(FnOutcome {
                        function: c.string()?,
                        admitted: c.u64()?,
                        rejected: c.u64()?,
                        unchecked: c.u64()?,
                    });
                }
                let n = c.u16()? as usize;
                let mut workers = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    workers.push(WorkerStat {
                        worker: c.u16()?,
                        frames: c.u64()?,
                        requests: c.u64()?,
                    });
                }
                let queue_highwater = c.u64()?;
                let shed = c.u64()?;
                let n = c.u16()? as usize;
                let mut timings = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    timings.push(TimingStat {
                        name: c.string()?,
                        count: c.u64()?,
                        p50: c.u64()?,
                        p99: c.u64()?,
                    });
                }
                Ok(Response::Stats(StatsReply {
                    totals,
                    functions,
                    workers,
                    queue_highwater,
                    shed,
                    timings,
                }))
            }
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(Request::decode(&buf).unwrap(), req);
    }

    fn roundtrip_rsp(rsp: Response) {
        let mut buf = Vec::new();
        rsp.encode(&mut buf);
        assert_eq!(Response::decode(&buf).unwrap(), rsp);
    }

    #[test]
    fn every_kind_round_trips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Validate {
            function: "strcpy".into(),
            args: vec![
                SimValue::Ptr(0x1000),
                SimValue::Ptr(0),
                SimValue::Int(-1),
                SimValue::Double(2.5),
                SimValue::Void,
            ],
        });
        roundtrip_req(Request::Explain {
            function: "fgets".into(),
        });
        roundtrip_req(Request::Report);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Stats { timings: false });
        roundtrip_req(Request::Stats { timings: true });

        roundtrip_rsp(Response::Pong);
        roundtrip_rsp(Response::Validated(ValidateVerdict::Admit));
        roundtrip_rsp(Response::Validated(ValidateVerdict::AdmitUnchecked));
        roundtrip_rsp(Response::Validated(ValidateVerdict::Reject {
            arg: 1,
            check: "RNTS".into(),
        }));
        roundtrip_rsp(Response::Validated(ValidateVerdict::WouldRepair {
            arg: 0,
            check: "WNTS".into(),
        }));
        roundtrip_rsp(Response::Validated(ValidateVerdict::UnknownFunction));
        roundtrip_rsp(Response::Explained { info: None });
        roundtrip_rsp(Response::Explained {
            info: Some((
                "char *strcpy(char *dst, const char *src)".into(),
                vec![
                    ExplainArg {
                        robust: "WNTS".into(),
                        check: "WNTS".into(),
                    },
                    ExplainArg {
                        robust: "-".into(),
                        check: "-".into(),
                    },
                ],
            )),
        });
        roundtrip_rsp(Response::Reported {
            counters: vec![("requests".into(), 7), ("validates".into(), 3)],
        });
        roundtrip_rsp(Response::Bye);
        roundtrip_rsp(Response::Error {
            message: "nope".into(),
        });
        roundtrip_rsp(Response::Stats(StatsReply::default()));
        roundtrip_rsp(Response::Stats(full_stats_reply()));
    }

    fn full_stats_reply() -> StatsReply {
        StatsReply {
            totals: vec![("frames".into(), 10), ("requests".into(), 25)],
            functions: vec![
                FnOutcome {
                    function: "strlen".into(),
                    admitted: 5,
                    rejected: 2,
                    unchecked: 0,
                },
                FnOutcome {
                    function: "abs".into(),
                    admitted: 0,
                    rejected: 0,
                    unchecked: 3,
                },
            ],
            workers: vec![
                WorkerStat {
                    worker: 0,
                    frames: 7,
                    requests: 20,
                },
                WorkerStat {
                    worker: 1,
                    frames: 3,
                    requests: 5,
                },
            ],
            queue_highwater: 4,
            shed: 1,
            timings: vec![TimingStat {
                name: "validate".into(),
                count: 7,
                p50: 1023,
                p99: 4095,
            }],
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Request::Validate {
            function: "abs".into(),
            args: vec![SimValue::Int(3)],
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Request::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        buf.push(0);
        assert_eq!(
            Request::decode(&buf),
            Err(WireError::TrailingBytes(1)),
            "a trailing byte must be rejected"
        );
    }

    #[test]
    fn stats_truncation_and_trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Response::Stats(full_stats_reply()).encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Response::decode(&buf[..cut]).is_err(),
                "stats prefix of {cut} bytes must not decode"
            );
        }
        buf.push(0);
        assert_eq!(Response::decode(&buf), Err(WireError::TrailingBytes(1)));

        let mut buf = Vec::new();
        Request::Stats { timings: true }.encode(&mut buf);
        assert!(Request::decode(&buf[..1]).is_err(), "flag byte is required");
    }

    #[test]
    fn out_of_range_pointers_are_rejected() {
        let mut buf = vec![super::REQ_VALIDATE];
        put_string(&mut buf, "abs");
        buf.push(1);
        buf.push(super::VAL_PTR);
        put_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert_eq!(
            Request::decode(&buf),
            Err(WireError::PtrOutOfRange(u64::from(u32::MAX) + 1))
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(Request::decode(&[9]), Err(WireError::UnknownTag(9)));
        assert_eq!(Response::decode(&[9]), Err(WireError::UnknownTag(9)));
        assert_eq!(
            Response::decode(&[super::RSP_VALIDATED, 9]),
            Err(WireError::UnknownTag(9))
        );
        // Tag 5 is the first unassigned verdict tag: a client one
        // version ahead of this codec must get a clean decode error,
        // exactly as pre-repair clients do for tag 4.
        assert_eq!(
            Response::decode(&[super::RSP_VALIDATED, 5]),
            Err(WireError::UnknownTag(5))
        );
    }
}
