//! Drive a request script over a connection and collect the replies.
//!
//! The client is transport-agnostic — anything `Read + Write` works:
//! a Unix socket (`healers serve send`), an in-process duplex pipe
//! (`healers serve exec`, tests, bench). It enforces the protocol's
//! one-response-per-request batching invariant and hands back both the
//! decoded responses and the **exact reply bytes**, which is what the
//! CI determinism job diffs across `--workers` values.

use std::fmt;
use std::io::{Read, Write};

use crate::frame::{encode_frame, read_frame, write_frame, FrameError, Limits, DIR_RESPONSE};
use crate::proto::{Response, ValidateVerdict, WireError};
use crate::script::Script;

/// A failed script replay.
#[derive(Debug)]
pub enum ClientError {
    /// Frame-level failure (transport, framing, hostile header).
    Frame(FrameError),
    /// A response message that does not decode.
    Wire(WireError),
    /// A structurally valid reply that breaks the batching contract.
    BadReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client: {e}"),
            ClientError::Wire(e) => write!(f, "client: {e}"),
            ClientError::BadReply(m) => write!(f, "client: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// Everything a script replay produced.
#[derive(Debug)]
pub struct ScriptReplies {
    /// The exact reply-stream bytes, frame after frame — the unit the
    /// determinism contract is stated (and diffed) in.
    pub raw: Vec<u8>,
    /// The decoded responses, one inner vec per request frame.
    pub frames: Vec<Vec<Response>>,
}

/// Replay `script` over `conn`: write each request frame, read its
/// response frame, stop after the frame that answers a `Shutdown`.
///
/// # Errors
///
/// Transport failures, undecodable replies, or contract violations
/// (wrong direction, wrong batch size).
pub fn run_script(
    conn: &mut (impl Read + Write),
    script: &Script,
    limits: &Limits,
) -> Result<ScriptReplies, ClientError> {
    let mut raw = Vec::new();
    let mut frames = Vec::new();
    for requests in &script.frames {
        let mut messages = Vec::with_capacity(requests.len());
        for req in requests {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            messages.push(buf);
        }
        write_frame(conn, crate::frame::DIR_REQUEST, &messages)?;

        let reply = read_frame(conn, limits)?;
        if reply.direction != DIR_RESPONSE {
            return Err(ClientError::BadReply("expected a response frame".into()));
        }
        if reply.messages.len() != requests.len() {
            return Err(ClientError::BadReply(format!(
                "sent {} request(s), got {} response(s)",
                requests.len(),
                reply.messages.len()
            )));
        }
        // The codec has a unique encoding, so re-encoding the parsed
        // frame reproduces the bytes that came off the wire.
        raw.extend_from_slice(&encode_frame(reply.direction, &reply.messages));
        let mut decoded = Vec::with_capacity(reply.messages.len());
        for msg in &reply.messages {
            decoded.push(Response::decode(msg)?);
        }
        let saw_shutdown = decoded.iter().any(|r| matches!(r, Response::Bye));
        frames.push(decoded);
        if saw_shutdown {
            break;
        }
    }
    Ok(ScriptReplies { raw, frames })
}

/// Render decoded responses as stable, line-oriented text — the output
/// of `healers serve exec` and `healers serve send`.
pub fn render(frames: &[Vec<Response>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, frame) in frames.iter().enumerate() {
        let _ = writeln!(out, "frame {i}:");
        for rsp in frame {
            match rsp {
                Response::Pong => out.push_str("  pong\n"),
                Response::Validated(v) => match v {
                    ValidateVerdict::Admit => out.push_str("  validated: admit\n"),
                    ValidateVerdict::AdmitUnchecked => {
                        out.push_str("  validated: admit (unchecked)\n");
                    }
                    ValidateVerdict::Reject { arg, check } => {
                        let _ = writeln!(out, "  validated: reject arg {arg} check {check}");
                    }
                    ValidateVerdict::UnknownFunction => {
                        out.push_str("  validated: unknown function\n");
                    }
                },
                Response::Explained { info: None } => out.push_str("  explained: unknown\n"),
                Response::Explained {
                    info: Some((proto, args)),
                } => {
                    let _ = writeln!(out, "  explained: {proto}");
                    for (j, a) in args.iter().enumerate() {
                        let _ = writeln!(out, "    arg {j}: robust {} check {}", a.robust, a.check);
                    }
                }
                Response::Reported { counters } => {
                    out.push_str("  reported:\n");
                    for (name, value) in counters {
                        let _ = writeln!(out, "    {name} {value}");
                    }
                }
                Response::Bye => out.push_str("  bye\n"),
                Response::Error { message } => {
                    let _ = writeln!(out, "  error: {message}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ExplainArg;

    #[test]
    fn render_is_stable_text() {
        let frames = vec![
            vec![
                Response::Pong,
                Response::Validated(ValidateVerdict::Reject {
                    arg: 1,
                    check: "RNTS".into(),
                }),
            ],
            vec![
                Response::Explained {
                    info: Some((
                        "extern int abs(int j);".into(),
                        vec![ExplainArg {
                            robust: "-".into(),
                            check: "-".into(),
                        }],
                    )),
                },
                Response::Reported {
                    counters: vec![("requests".into(), 4)],
                },
                Response::Bye,
            ],
        ];
        let text = render(&frames);
        assert_eq!(
            text,
            "frame 0:\n  pong\n  validated: reject arg 1 check RNTS\n\
             frame 1:\n  explained: extern int abs(int j);\n    arg 0: robust - check -\n\
             \x20 reported:\n    requests 4\n  bye\n"
        );
    }
}
