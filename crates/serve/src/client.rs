//! Drive a request script over a connection and collect the replies.
//!
//! The client is transport-agnostic — anything `Read + Write` works:
//! a Unix socket (`healers serve send`), an in-process duplex pipe
//! (`healers serve exec`, tests, bench). It enforces the protocol's
//! one-response-per-request batching invariant and hands back both the
//! decoded responses and the **exact reply bytes**, which is what the
//! CI determinism job diffs across `--workers` values.

use std::fmt;
use std::io::{Read, Write};

use crate::frame::{encode_frame, read_frame, write_frame, FrameError, Limits, DIR_RESPONSE};
use crate::proto::{Response, StatsReply, ValidateVerdict, WireError};
use crate::script::Script;

/// A failed script replay.
#[derive(Debug)]
pub enum ClientError {
    /// Frame-level failure (transport, framing, hostile header).
    Frame(FrameError),
    /// A response message that does not decode.
    Wire(WireError),
    /// A structurally valid reply that breaks the batching contract.
    BadReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client: {e}"),
            ClientError::Wire(e) => write!(f, "client: {e}"),
            ClientError::BadReply(m) => write!(f, "client: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// Everything a script replay produced.
#[derive(Debug)]
pub struct ScriptReplies {
    /// The exact reply-stream bytes, frame after frame — the unit the
    /// determinism contract is stated (and diffed) in.
    pub raw: Vec<u8>,
    /// The decoded responses, one inner vec per request frame.
    pub frames: Vec<Vec<Response>>,
}

/// Replay `script` over `conn`: write each request frame, read its
/// response frame, stop after the frame that answers a `Shutdown`.
///
/// # Errors
///
/// Transport failures, undecodable replies, or contract violations
/// (wrong direction, wrong batch size).
pub fn run_script(
    conn: &mut (impl Read + Write),
    script: &Script,
    limits: &Limits,
) -> Result<ScriptReplies, ClientError> {
    let mut raw = Vec::new();
    let mut frames = Vec::new();
    for requests in &script.frames {
        let mut messages = Vec::with_capacity(requests.len());
        for req in requests {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            messages.push(buf);
        }
        write_frame(conn, crate::frame::DIR_REQUEST, &messages)?;

        let reply = read_frame(conn, limits)?;
        if reply.direction != DIR_RESPONSE {
            return Err(ClientError::BadReply("expected a response frame".into()));
        }
        if reply.messages.len() != requests.len() {
            return Err(ClientError::BadReply(format!(
                "sent {} request(s), got {} response(s)",
                requests.len(),
                reply.messages.len()
            )));
        }
        // The codec has a unique encoding, so re-encoding the parsed
        // frame reproduces the bytes that came off the wire.
        raw.extend_from_slice(&encode_frame(reply.direction, &reply.messages));
        let mut decoded = Vec::with_capacity(reply.messages.len());
        for msg in &reply.messages {
            decoded.push(Response::decode(msg)?);
        }
        let saw_shutdown = decoded.iter().any(|r| matches!(r, Response::Bye));
        frames.push(decoded);
        if saw_shutdown {
            break;
        }
    }
    Ok(ScriptReplies { raw, frames })
}

/// Render decoded responses as stable, line-oriented text — the output
/// of `healers serve exec` and `healers serve send`.
pub fn render(frames: &[Vec<Response>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, frame) in frames.iter().enumerate() {
        let _ = writeln!(out, "frame {i}:");
        for rsp in frame {
            match rsp {
                Response::Pong => out.push_str("  pong\n"),
                Response::Validated(v) => match v {
                    ValidateVerdict::Admit => out.push_str("  validated: admit\n"),
                    ValidateVerdict::AdmitUnchecked => {
                        out.push_str("  validated: admit (unchecked)\n");
                    }
                    ValidateVerdict::Reject { arg, check } => {
                        let _ = writeln!(out, "  validated: reject arg {arg} check {check}");
                    }
                    ValidateVerdict::WouldRepair { arg, check } => {
                        let _ = writeln!(out, "  validated: would-repair arg {arg} check {check}");
                    }
                    ValidateVerdict::UnknownFunction => {
                        out.push_str("  validated: unknown function\n");
                    }
                },
                Response::Explained { info: None } => out.push_str("  explained: unknown\n"),
                Response::Explained {
                    info: Some((proto, args)),
                } => {
                    let _ = writeln!(out, "  explained: {proto}");
                    for (j, a) in args.iter().enumerate() {
                        let _ = writeln!(out, "    arg {j}: robust {} check {}", a.robust, a.check);
                    }
                }
                Response::Reported { counters } => {
                    out.push_str("  reported:\n");
                    for (name, value) in counters {
                        let _ = writeln!(out, "    {name} {value}");
                    }
                }
                Response::Bye => out.push_str("  bye\n"),
                Response::Error { message } => {
                    let _ = writeln!(out, "  error: {message}");
                }
                // Script transcripts are byte-diffed across worker
                // counts, so render only the deterministic subset of a
                // stats reply; `healers serve stats` shows the rest.
                Response::Stats(s) => {
                    out.push_str("  stats:\n");
                    for (name, value) in &s.totals {
                        let _ = writeln!(out, "    {name} {value}");
                    }
                    for f in &s.functions {
                        let _ = writeln!(
                            out,
                            "    fn {} admitted {} rejected {} unchecked {}",
                            f.function, f.admitted, f.rejected, f.unchecked
                        );
                    }
                }
            }
        }
    }
    out
}

/// Render a full stats reply — the default view of `healers serve
/// stats`. Unlike script transcripts this includes the live,
/// scheduling-dependent sections (per-worker counters, queue
/// high-water, shed, timings), which is why it is a separate view.
pub fn render_stats(s: &StatsReply) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("totals:\n");
    for (name, value) in &s.totals {
        let _ = writeln!(out, "  {name} {value}");
    }
    out.push_str("functions:\n");
    for f in &s.functions {
        let _ = writeln!(
            out,
            "  {} admitted {} rejected {} unchecked {}",
            f.function, f.admitted, f.rejected, f.unchecked
        );
    }
    out.push_str("workers:\n");
    for w in &s.workers {
        let _ = writeln!(
            out,
            "  worker {}: frames {} requests {}",
            w.worker, w.frames, w.requests
        );
    }
    let _ = writeln!(out, "queue highwater: {}", s.queue_highwater);
    let _ = writeln!(out, "shed: {}", s.shed);
    if !s.timings.is_empty() {
        out.push_str("timings:\n");
        for t in &s.timings {
            let _ = writeln!(
                out,
                "  {} count {} p50 {}ns p99 {}ns",
                t.name, t.count, t.p50, t.p99
            );
        }
    }
    out
}

/// Render only the deterministic subset of a stats reply — byte-stable
/// for any `--workers` value given the same sequential client traffic.
/// The CI stats-smoke job diffs this view across worker counts.
pub fn render_stats_deterministic(s: &StatsReply) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in &s.totals {
        let _ = writeln!(out, "{name} {value}");
    }
    for f in &s.functions {
        let _ = writeln!(
            out,
            "fn {} admitted {} rejected {} unchecked {}",
            f.function, f.admitted, f.rejected, f.unchecked
        );
    }
    out
}

/// Render a stats reply in the Prometheus text exposition format —
/// `healers serve stats --prom`. Totals and per-function outcomes
/// become labelled counters, queue high-water a gauge, and timings
/// (when present) summary quantiles, mirroring
/// [`healers_trace::metrics::MetricsRegistry::render_prometheus`] for
/// wire-carried data.
pub fn render_stats_prometheus(s: &StatsReply) -> String {
    use healers_trace::metrics::prom_name;
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in &s.totals {
        let name = prom_name(&format!("healers_serve_{name}"));
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    if !s.functions.is_empty() {
        out.push_str("# TYPE healers_serve_validate_outcomes_total counter\n");
        for f in &s.functions {
            for (outcome, value) in [
                ("admitted", f.admitted),
                ("rejected", f.rejected),
                ("unchecked", f.unchecked),
            ] {
                let _ = writeln!(
                    out,
                    "healers_serve_validate_outcomes_total{{function=\"{}\",outcome=\"{outcome}\"}} {value}",
                    f.function
                );
            }
        }
    }
    if !s.workers.is_empty() {
        out.push_str("# TYPE healers_serve_worker_frames_total counter\n");
        for w in &s.workers {
            let _ = writeln!(
                out,
                "healers_serve_worker_frames_total{{worker=\"{}\"}} {}",
                w.worker, w.frames
            );
        }
        out.push_str("# TYPE healers_serve_worker_requests_total counter\n");
        for w in &s.workers {
            let _ = writeln!(
                out,
                "healers_serve_worker_requests_total{{worker=\"{}\"}} {}",
                w.worker, w.requests
            );
        }
    }
    let _ = writeln!(
        out,
        "# TYPE healers_serve_queue_highwater gauge\nhealers_serve_queue_highwater {}",
        s.queue_highwater
    );
    let _ = writeln!(
        out,
        "# TYPE healers_serve_shed_total counter\nhealers_serve_shed_total {}",
        s.shed
    );
    for t in &s.timings {
        let name = prom_name(&format!("healers_serve_{}", t.name));
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", t.p50);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", t.p99);
        let _ = writeln!(out, "{name}_count {}", t.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ExplainArg;

    #[test]
    fn stats_render_omits_the_nondeterministic_sections() {
        use crate::proto::{FnOutcome, StatsReply, WorkerStat};
        let frames = vec![vec![Response::Stats(StatsReply {
            totals: vec![("frames".into(), 2)],
            functions: vec![FnOutcome {
                function: "strlen".into(),
                admitted: 1,
                rejected: 0,
                unchecked: 0,
            }],
            workers: vec![WorkerStat {
                worker: 0,
                frames: 2,
                requests: 3,
            }],
            queue_highwater: 5,
            shed: 1,
            timings: Vec::new(),
        })]];
        let text = render(&frames);
        assert_eq!(
            text,
            "frame 0:\n  stats:\n    frames 2\n\
             \x20   fn strlen admitted 1 rejected 0 unchecked 0\n"
        );
    }

    fn sample_reply() -> StatsReply {
        use crate::proto::{FnOutcome, TimingStat, WorkerStat};
        StatsReply {
            totals: vec![("requests".into(), 3), ("validates".into(), 2)],
            functions: vec![FnOutcome {
                function: "strlen".into(),
                admitted: 1,
                rejected: 1,
                unchecked: 0,
            }],
            workers: vec![WorkerStat {
                worker: 0,
                frames: 2,
                requests: 3,
            }],
            queue_highwater: 4,
            shed: 1,
            timings: vec![TimingStat {
                name: "validate".into(),
                count: 2,
                p50: 512,
                p99: 1024,
            }],
        }
    }

    #[test]
    fn full_stats_view_includes_the_live_sections() {
        let text = render_stats(&sample_reply());
        assert!(text.contains("totals:\n  requests 3\n  validates 2\n"));
        assert!(text.contains("  strlen admitted 1 rejected 1 unchecked 0\n"));
        assert!(text.contains("  worker 0: frames 2 requests 3\n"));
        assert!(text.contains("queue highwater: 4\nshed: 1\n"));
        assert!(text.contains("  validate count 2 p50 512ns p99 1024ns\n"));
    }

    #[test]
    fn deterministic_stats_view_is_totals_and_functions_only() {
        let text = render_stats_deterministic(&sample_reply());
        assert_eq!(
            text,
            "requests 3\nvalidates 2\nfn strlen admitted 1 rejected 1 unchecked 0\n"
        );
    }

    #[test]
    fn prometheus_stats_view_is_well_formed_exposition_text() {
        let text = render_stats_prometheus(&sample_reply());
        assert!(text.contains("# TYPE healers_serve_requests counter\nhealers_serve_requests 3\n"));
        assert!(text.contains(
            "healers_serve_validate_outcomes_total{function=\"strlen\",outcome=\"rejected\"} 1\n"
        ));
        assert!(text.contains("healers_serve_worker_frames_total{worker=\"0\"} 2\n"));
        assert!(text.contains("# TYPE healers_serve_queue_highwater gauge\n"));
        assert!(text.contains("healers_serve_validate{quantile=\"0.99\"} 1024\n"));
        assert!(text.contains("healers_serve_validate_count 2\n"));
        // Every non-comment line is `name{labels}? value` — the shape a
        // Prometheus scraper accepts.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (metric, value) = line.rsplit_once(' ').expect("metric and value");
            assert!(!metric.is_empty(), "{line}");
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn render_is_stable_text() {
        let frames = vec![
            vec![
                Response::Pong,
                Response::Validated(ValidateVerdict::Reject {
                    arg: 1,
                    check: "RNTS".into(),
                }),
            ],
            vec![
                Response::Explained {
                    info: Some((
                        "extern int abs(int j);".into(),
                        vec![ExplainArg {
                            robust: "-".into(),
                            check: "-".into(),
                        }],
                    )),
                },
                Response::Reported {
                    counters: vec![("requests".into(), 4)],
                },
                Response::Bye,
            ],
        ];
        let text = render(&frames);
        assert_eq!(
            text,
            "frame 0:\n  pong\n  validated: reject arg 1 check RNTS\n\
             frame 1:\n  explained: extern int abs(int j);\n    arg 0: robust - check -\n\
             \x20 reported:\n    requests 4\n  bye\n"
        );
    }
}
