//! The checking core: `Arc`-shared, read-only wrapper plans.
//!
//! [`ServePlans::build`] runs once at daemon startup. It verifies the
//! persistent declaration cache strictly (a corrupt or truncated entry
//! is a startup error, never a silent re-derivation), obtains every
//! target's declaration through the campaign orchestrator — on a warm
//! cache this performs **zero injected calls**, which the returned
//! [`CampaignMetrics`] proves — and freezes the result into an
//! immutable plan set: the precomputed per-argument checkable
//! supertypes of [`healers_core::WrapperBuilder`], a canonical
//! simulated [`World`] to probe against, and empty tracking tables.
//!
//! Everything here is `&self`: validation walks the wrapper's
//! build-time [`healers_core::CompiledPlan`] claim ops through
//! [`healers_core::eval_op`], which probes the world read-only, so one
//! `Arc<ServePlans>` serves every worker thread without locks, clones,
//! or per-request allocation beyond the reply buffer. The name →
//! function dispatch can be hoisted out of a request loop with
//! [`ServePlans::resolve`] + [`ServePlans::validate_resolved`].
//!
//! # The canonical world
//!
//! Pointer checks need memory to probe. The plan set carries a world
//! built deterministically at startup: [`World::new`] plus two scratch
//! allocations — a NUL-terminated string ([`ServePlans::scratch_str`])
//! and a 4 KiB writable buffer ([`ServePlans::scratch_buf`]). Because
//! world construction is deterministic, these addresses are the same
//! in every daemon and every client ([`scratch_addrs`] recomputes them
//! without a daemon), which is what lets request scripts name them
//! symbolically (`ptr:str`, `ptr:buf+N`) and still produce
//! byte-identical reply streams everywhere.

use std::fmt;
use std::io;
use std::path::PathBuf;

use healers_ballista::ballista_targets;
use healers_campaign::cache::CacheError;
use healers_campaign::{fingerprint::fingerprint, Campaign, CampaignConfig, CampaignMetrics};
use healers_core::checker::{CheckCapabilities, CheckCounters, Tables};
use healers_core::{eval_op, FnId, WrapperBuilder, WrapperConfig};
use healers_inject::FaultInjector;
use healers_libc::{Libc, World};
use healers_simproc::{Addr, SimValue};

use crate::proto::{ExplainArg, ValidateVerdict};

/// The scratch string every daemon world carries.
pub const SCRATCH_TEXT: &str = "healers-serve scratch";

/// Size of the writable scratch buffer (bytes).
pub const SCRATCH_BUF_LEN: u32 = 4096;

/// Configuration for [`ServePlans::build`].
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Functions to serve plans for (empty = all 86 Ballista targets).
    pub functions: Vec<String>,
    /// Persistent declaration cache directory (`None` = derive fresh).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads for a cold-start analysis.
    pub jobs: usize,
    /// Answer failing validates with
    /// [`ValidateVerdict::WouldRepair`] instead of
    /// [`ValidateVerdict::Reject`]. Off by default: the flag is the
    /// wire version gate for verdict tag 4, so a daemon only emits it
    /// when the operator opted every client in.
    pub repair_hints: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            functions: Vec::new(),
            cache_dir: None,
            jobs: 1,
            repair_hints: false,
        }
    }
}

/// Everything that can fail building the plan set.
#[derive(Debug)]
pub enum BuildError {
    /// A requested function is not exported by the library.
    NotExported(String),
    /// The declaration cache holds a corrupt, truncated, or
    /// version-mismatched entry.
    Cache(CacheError),
    /// Filesystem failure (cache directory creation or write).
    Io(io::Error),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NotExported(name) => {
                write!(f, "serve: {name} is not exported by the library")
            }
            BuildError::Cache(e) => write!(f, "serve: {e}"),
            BuildError::Io(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Cache(e) => Some(e),
            BuildError::Io(e) => Some(e),
            BuildError::NotExported(_) => None,
        }
    }
}

impl From<io::Error> for BuildError {
    fn from(e: io::Error) -> Self {
        BuildError::Io(e)
    }
}

impl From<CacheError> for BuildError {
    fn from(e: CacheError) -> Self {
        BuildError::Cache(e)
    }
}

/// The deterministic scratch addresses of the canonical serve world:
/// `(string, buffer)`. Recomputable anywhere — clients use this to
/// encode symbolic pointers without talking to a daemon.
pub fn scratch_addrs() -> (Addr, Addr) {
    let mut world = World::new();
    let s = world.alloc_cstr(SCRATCH_TEXT);
    let b = world.alloc_buf(SCRATCH_BUF_LEN);
    (s, b)
}

/// The immutable, share-everywhere checking core.
pub struct ServePlans {
    wrapper: healers_core::RobustnessWrapper,
    world: World,
    tables: Tables,
    caps: CheckCapabilities,
    scratch_str: Addr,
    scratch_buf: Addr,
    functions: Vec<String>,
    repair_hints: bool,
}

impl fmt::Debug for ServePlans {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServePlans")
            .field("functions", &self.functions.len())
            .field("scratch_str", &format_args!("{:#x}", self.scratch_str))
            .field("scratch_buf", &format_args!("{:#x}", self.scratch_buf))
            .finish()
    }
}

impl ServePlans {
    /// Build the plan set: strict cache verification, campaign-backed
    /// analysis (warm cache ⇒ zero injected calls), wrapper planning,
    /// and the canonical world.
    ///
    /// # Errors
    ///
    /// A function the library does not export, a corrupt cache entry,
    /// or a filesystem failure.
    pub fn build(
        libc: &Libc,
        config: &PlanConfig,
    ) -> Result<(ServePlans, CampaignMetrics), BuildError> {
        let functions: Vec<String> = if config.functions.is_empty() {
            ballista_targets().iter().map(|s| s.to_string()).collect()
        } else {
            config.functions.clone()
        };
        for name in &functions {
            if libc.get(name).is_none() {
                return Err(BuildError::NotExported(name.clone()));
            }
        }

        // Strict cache pass: reject damage before the lenient campaign
        // lookup could paper over it as a miss (and silently re-inject).
        if let Some(dir) = &config.cache_dir {
            let cache = healers_campaign::DeclCache::open(dir)?;
            for name in &functions {
                let injector = FaultInjector::new(libc, name).expect("validated above");
                let fp = fingerprint(&[&injector.signature()]);
                cache.load_checked(name, fp)?;
            }
        }

        let campaign = Campaign::new(&CampaignConfig {
            jobs: config.jobs.max(1),
            cache_dir: config.cache_dir.clone(),
            ..CampaignConfig::default()
        })?;
        let refs: Vec<&str> = functions.iter().map(String::as_str).collect();
        let (decls, metrics) = campaign.analyze(libc, &refs)?;
        campaign.finish()?;

        let wrapper = WrapperBuilder::new()
            .decls(decls)
            .config(WrapperConfig::full_auto())
            .build();

        let mut world = World::new();
        let scratch_str = world.alloc_cstr(SCRATCH_TEXT);
        let scratch_buf = world.alloc_buf(SCRATCH_BUF_LEN);

        Ok((
            ServePlans {
                wrapper,
                world,
                tables: Tables::default(),
                caps: CheckCapabilities {
                    stateful_heap: false, // the service tracks no client heap
                    dir_tracking: false,
                    file_tracking: false,
                },
                scratch_str,
                scratch_buf,
                functions,
                repair_hints: config.repair_hints,
            },
            metrics,
        ))
    }

    /// The functions this plan set serves, in request order.
    pub fn functions(&self) -> &[String] {
        &self.functions
    }

    /// Address of the canonical NUL-terminated scratch string.
    pub fn scratch_str(&self) -> Addr {
        self.scratch_str
    }

    /// Address of the canonical writable scratch buffer.
    pub fn scratch_buf(&self) -> Addr {
        self.scratch_buf
    }

    /// Resolve a function name to its hot-path handle once; reuse it
    /// across many [`ServePlans::validate_resolved`] calls to keep the
    /// dispatch lookup out of a request loop. `None` means the daemon
    /// has no declaration for the name ([`ValidateVerdict::UnknownFunction`]).
    pub fn resolve(&self, function: &str) -> Option<FnId> {
        self.wrapper
            .resolve(function)
            .filter(|&id| self.wrapper.has_decl(id))
    }

    /// Validate `args` against `function`'s compiled wrapper plan.
    /// Pure read: probes the canonical world, mutates nothing but the
    /// caller's check counters.
    pub fn validate(
        &self,
        function: &str,
        args: &[SimValue],
        ctrs: &mut CheckCounters,
    ) -> ValidateVerdict {
        match self.resolve(function) {
            Some(id) => self.validate_resolved(id, args, ctrs),
            None => ValidateVerdict::UnknownFunction,
        }
    }

    /// [`ServePlans::validate`] with the name lookup already hoisted:
    /// walks the claim prefix of the function's [`CompiledPlan`]
    /// straight off the flat op array.
    ///
    /// [`CompiledPlan`]: healers_core::CompiledPlan
    pub fn validate_resolved(
        &self,
        id: FnId,
        args: &[SimValue],
        ctrs: &mut CheckCounters,
    ) -> ValidateVerdict {
        let Some(ops) = self.wrapper.claim_ops(id) else {
            return ValidateVerdict::AdmitUnchecked;
        };
        for op in ops {
            if !eval_op(&self.world, &self.tables, &self.caps, args, op, ctrs) {
                let arg = op.arg as u16;
                let check = op.ty.expect("claim ops carry a claim").notation();
                // Every claim op has a repair strategy in the wrapper
                // (`repair_one` is total over `OpAction`), so under
                // the hint gate a failing claim is always repairable.
                return if self.repair_hints {
                    ValidateVerdict::WouldRepair { arg, check }
                } else {
                    ValidateVerdict::Reject { arg, check }
                };
            }
        }
        ValidateVerdict::Admit
    }

    /// The lattice-walk summary for `function`: its prototype plus, per
    /// argument, the discovered robust type and the checkable
    /// supertype the wrapper actually enforces.
    pub fn explain(&self, function: &str) -> Option<(String, Vec<ExplainArg>)> {
        let decl = self.wrapper.decl(function)?;
        let plan = self.wrapper.plan(function);
        let dash = || "-".to_string();
        let args = decl
            .robust_args
            .iter()
            .enumerate()
            .map(|(i, r)| ExplainArg {
                robust: r.map(|t| t.notation()).unwrap_or_else(dash),
                check: plan
                    .and_then(|p| p.get(i).copied().flatten())
                    .map(|t| t.notation())
                    .unwrap_or_else(dash),
            })
            .collect();
        Some((format!("extern {};", decl.proto), args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans_for(functions: &[&str]) -> ServePlans {
        let libc = Libc::standard();
        let config = PlanConfig {
            functions: functions.iter().map(|s| s.to_string()).collect(),
            ..PlanConfig::default()
        };
        ServePlans::build(&libc, &config).unwrap().0
    }

    #[test]
    fn scratch_addresses_are_deterministic_and_recomputable() {
        let plans = plans_for(&["abs"]);
        let (s, b) = scratch_addrs();
        assert_eq!(plans.scratch_str(), s);
        assert_eq!(plans.scratch_buf(), b);
        let again = plans_for(&["strcpy", "strlen"]);
        assert_eq!(again.scratch_str(), s, "independent of the target list");
    }

    #[test]
    fn validate_admits_rejects_and_classifies() {
        let plans = plans_for(&["strlen", "abs", "strcpy"]);
        let mut ctrs = CheckCounters::default();

        // A readable NUL-terminated string: admitted.
        let verdict = plans.validate("strlen", &[SimValue::Ptr(plans.scratch_str())], &mut ctrs);
        assert_eq!(verdict, ValidateVerdict::Admit);

        // A null pointer where a string is required: rejected with the
        // violating argument and check named.
        match plans.validate("strlen", &[SimValue::NULL], &mut ctrs) {
            ValidateVerdict::Reject { arg: 0, check } => {
                assert!(!check.is_empty());
            }
            v => panic!("expected Reject, got {v:?}"),
        }

        // A safe function has no plan: passed through unchecked.
        assert_eq!(
            plans.validate("abs", &[SimValue::Int(-5)], &mut ctrs),
            ValidateVerdict::AdmitUnchecked
        );

        // Unknown function.
        assert_eq!(
            plans.validate("frobnicate", &[], &mut ctrs),
            ValidateVerdict::UnknownFunction
        );

        // strcpy into the writable scratch buffer from the scratch
        // string: both pointer checks pass.
        assert_eq!(
            plans.validate(
                "strcpy",
                &[
                    SimValue::Ptr(plans.scratch_buf()),
                    SimValue::Ptr(plans.scratch_str()),
                ],
                &mut ctrs,
            ),
            ValidateVerdict::Admit
        );
        assert!(ctrs.run_probes > 0 || ctrs.nul_scans > 0);
    }

    #[test]
    fn resolved_validation_matches_name_based_validation() {
        let plans = plans_for(&["strlen", "abs", "strcpy"]);
        let id = plans.resolve("strlen").unwrap();
        let cases: Vec<Vec<SimValue>> = vec![
            vec![SimValue::Ptr(plans.scratch_str())],
            vec![SimValue::NULL],
            vec![SimValue::Ptr(0xdead_0000)],
            vec![SimValue::Int(7)],
            vec![],
        ];
        for args in &cases {
            let mut a = CheckCounters::default();
            let mut b = CheckCounters::default();
            let by_name = plans.validate("strlen", args, &mut a);
            let by_id = plans.validate_resolved(id, args, &mut b);
            assert_eq!(by_name, by_id, "verdicts diverged for {args:?}");
            assert_eq!(a, b, "counters diverged for {args:?}");
        }
        assert!(plans.resolve("frobnicate").is_none());
        let abs = plans.resolve("abs").unwrap();
        let mut ctrs = CheckCounters::default();
        assert_eq!(
            plans.validate_resolved(abs, &[SimValue::Int(1)], &mut ctrs),
            ValidateVerdict::AdmitUnchecked
        );
    }

    #[test]
    fn repair_hints_turn_rejects_into_would_repair() {
        let libc = Libc::standard();
        let config = PlanConfig {
            functions: vec!["strlen".into(), "abs".into()],
            repair_hints: true,
            ..PlanConfig::default()
        };
        let plans = ServePlans::build(&libc, &config).unwrap().0;
        let mut ctrs = CheckCounters::default();
        // Passing and unchecked verdicts are untouched by the gate.
        assert_eq!(
            plans.validate("strlen", &[SimValue::Ptr(plans.scratch_str())], &mut ctrs),
            ValidateVerdict::Admit
        );
        assert_eq!(
            plans.validate("abs", &[SimValue::Int(-5)], &mut ctrs),
            ValidateVerdict::AdmitUnchecked
        );
        // A failing claim now carries the repair hint, with the same
        // argument index and check notation a Reject would name.
        let hinted = plans.validate("strlen", &[SimValue::NULL], &mut ctrs);
        let plain = plans_for(&["strlen"]).validate("strlen", &[SimValue::NULL], &mut ctrs);
        match (hinted, plain) {
            (
                ValidateVerdict::WouldRepair { arg: ha, check: hc },
                ValidateVerdict::Reject { arg: pa, check: pc },
            ) => {
                assert_eq!(ha, pa);
                assert_eq!(hc, pc);
            }
            (h, p) => panic!("expected WouldRepair/Reject, got {h:?} / {p:?}"),
        }
    }

    #[test]
    fn explain_names_robust_types_and_active_checks() {
        let plans = plans_for(&["strcpy", "abs"]);
        let (proto, args) = plans.explain("strcpy").unwrap();
        assert!(proto.starts_with("extern "));
        assert_eq!(args.len(), 2);
        assert!(args.iter().any(|a| a.check != "-"), "{args:?}");
        let (_, abs_args) = plans.explain("abs").unwrap();
        assert!(abs_args.iter().all(|a| a.check == "-"));
        assert!(plans.explain("frobnicate").is_none());
    }
}
