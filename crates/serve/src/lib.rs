//! healers-serve — hardening-as-a-service.
//!
//! The paper compiles its robustness wrappers into the protected
//! process; every client re-derives every check plan. This crate turns
//! the checking core into a long-lived facility (the ROADMAP's
//! millions-of-users story): a daemon builds the wrapper plans **once**
//! — from the persistent declaration cache, so a warm start performs
//! zero injected calls — freezes them behind an
//! [`Arc`](std::sync::Arc), and answers
//! validate/explain/report requests over a framed, length-prefixed
//! binary protocol.
//!
//! The crate split mirrors the harness/membrane separation of the
//! reference repos: the *service shell* ([`daemon`], [`frame`],
//! [`pipe`]) knows nothing about robustness checking, and the *checking
//! core* ([`plans`]) knows nothing about sockets. Everything is
//! dependency-free std: threads and blocking I/O — no async runtime.
//!
//! * [`proto`] — request/response message model and byte codec;
//! * [`frame`] — the versioned, length-prefixed batch frame around
//!   messages, with hostile-input limits;
//! * [`pipe`] — a bounded in-process duplex byte transport (the test
//!   and bench transport; Unix sockets are the production one);
//! * [`plans`] — [`ServePlans`]: the `Arc`-shared read-only checking
//!   core built from the declaration cache;
//! * [`daemon`] — the accept loop, bounded connection queue with
//!   shedding, and the per-connection session worker pool;
//! * [`script`] — the request-script DSL used by `healers serve exec`,
//!   `healers serve send`, and the CI determinism diff;
//! * [`client`] — drive a request script over any connection and
//!   collect the raw reply stream;
//! * [`mod@bench`] — the in-process load generator behind
//!   `healers bench serve` and the `BENCH_serve.json` gate.
//!
//! # Determinism contract
//!
//! A connection's reply bytes are a pure function of that connection's
//! request bytes and the daemon's plan set. Sessions share no mutable
//! state — [`proto::Request::Report`] aggregates the *session's own*
//! counters, never daemon globals — and one worker owns a connection
//! from accept to close, answering frames strictly in order. Reply
//! streams are therefore byte-identical for any `--workers` value; the
//! CI serve-smoke job diffs them.
//!
//! [`proto::Request::Stats`] is the one deliberate, explicitly scoped
//! exception: its reply reports *daemon-wide* live state. The carve-out
//! is itself contractual — the reply's **deterministic subset**
//! (global totals and per-function validate outcomes) counts logical
//! events of the request history and stays byte-identical for any
//! `--workers` given the same sequential client traffic (the CI
//! stats-smoke job diffs it), while per-worker counters, the queue
//! high-water mark, shed counts, and opt-in `--timings` percentiles
//! are live scheduling state outside the contract. Script transcripts
//! render only the deterministic subset.

pub mod bench;
pub mod client;
pub mod daemon;
pub mod frame;
pub mod pipe;
pub mod plans;
pub mod proto;
pub mod script;

pub use bench::{BenchConfig, BenchReport};
pub use client::run_script;
pub use daemon::{Daemon, DaemonConfig, ServeCounters, StatsHub};
pub use frame::{FrameError, Limits, MAGIC, PROTOCOL_VERSION};
pub use pipe::{duplex, DuplexStream};
pub use plans::{PlanConfig, ServePlans};
pub use proto::{
    FnOutcome, Request, Response, StatsReply, TimingStat, ValidateVerdict, WireError, WorkerStat,
};
pub use script::Script;
