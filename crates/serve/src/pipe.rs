//! A bounded in-process duplex byte transport.
//!
//! [`duplex`] returns two connected stream ends, each implementing
//! blocking [`Read`]/[`Write`] over a pair of capacity-bounded byte
//! pipes. The bound is the backpressure mechanism the daemon's memory
//! contract rests on: a writer facing a full pipe **blocks** (it does
//! not grow a buffer), exactly like a full socket send buffer, so a
//! slow reader throttles its peer instead of ballooning it. Tests
//! observe the bound directly via [`DuplexStream::peer_buffered`].
//!
//! This is the test and bench transport; production connections use
//! Unix sockets, which have the same blocking-write shape.

use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// One direction's shared state: a bounded byte queue plus closed
/// flags for each side.
struct PipeState {
    buf: std::collections::VecDeque<u8>,
    capacity: usize,
    /// The write end dropped: readers drain what is left, then EOF.
    write_closed: bool,
    /// The read end dropped: writers fail with `BrokenPipe`.
    read_closed: bool,
}

struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    fn new(capacity: usize) -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
                write_closed: false,
                read_closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    fn write(&self, mut bytes: &[u8]) -> io::Result<usize> {
        let total = bytes.len();
        let mut state = self.state.lock().unwrap();
        while !bytes.is_empty() {
            if state.read_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "peer closed its read end",
                ));
            }
            let room = state.capacity - state.buf.len();
            if room == 0 {
                state = self.writable.wait(state).unwrap();
                continue;
            }
            let n = room.min(bytes.len());
            state.buf.extend(&bytes[..n]);
            bytes = &bytes[n..];
            self.readable.notify_all();
        }
        Ok(total)
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.state.lock().unwrap();
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for (slot, byte) in out.iter_mut().zip(state.buf.drain(..n)) {
                    *slot = byte;
                }
                self.writable.notify_all();
                return Ok(n);
            }
            if state.write_closed {
                return Ok(0);
            }
            state = self.readable.wait(state).unwrap();
        }
    }

    fn close(&self, write_end: bool) {
        let mut state = self.state.lock().unwrap();
        if write_end {
            state.write_closed = true;
        } else {
            state.read_closed = true;
        }
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn buffered(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }
}

/// One end of an in-process duplex connection.
///
/// Dropping the stream closes both directions for this end: the peer's
/// reads see EOF once the buffer drains, and the peer's writes fail
/// with `BrokenPipe`.
pub struct DuplexStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl std::fmt::Debug for DuplexStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DuplexStream")
            .field("rx_buffered", &self.rx.buffered())
            .field("tx_buffered", &self.tx.buffered())
            .finish()
    }
}

impl DuplexStream {
    /// Bytes this end has written that the peer has not yet read — the
    /// observable send-buffer occupancy the backpressure tests bound.
    pub fn peer_buffered(&self) -> usize {
        self.tx.buffered()
    }

    /// Bytes available to read at this end without blocking.
    pub fn buffered(&self) -> usize {
        self.rx.buffered()
    }
}

impl Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        self.tx.close(true);
        self.rx.close(false);
    }
}

/// A connected pair of duplex stream ends, each direction bounded at
/// `capacity` bytes.
pub fn duplex(capacity: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new(capacity);
    let b_to_a = Pipe::new(capacity);
    (
        DuplexStream {
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
        },
        DuplexStream {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn bytes_flow_both_ways() {
        let (mut a, mut b) = duplex(16);
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn writer_blocks_at_capacity_instead_of_growing() {
        let (mut a, mut b) = duplex(8);
        let writer = std::thread::spawn(move || {
            a.write_all(&[7u8; 64]).unwrap();
            a
        });
        // The writer can make progress only as the reader drains; the
        // buffered byte count never exceeds the capacity.
        let mut seen = 0usize;
        let mut buf = [0u8; 8];
        while seen < 64 {
            assert!(b.buffered() <= 8, "pipe grew past its capacity");
            let n = b.read(&mut buf).unwrap();
            assert!(n > 0);
            seen += n;
        }
        writer.join().unwrap();
    }

    #[test]
    fn drop_signals_eof_and_broken_pipe() {
        let (mut a, mut b) = duplex(8);
        a.write_all(b"xy").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"xy");
        assert_eq!(
            b.write_all(b"z").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}
