//! End-to-end daemon tests over the in-process transport: the
//! determinism contract (byte-identical reply streams for any worker
//! count), warm-start behaviour (zero injected calls off a warm
//! declaration cache), backpressure (slow readers throttle, full
//! queues shed), session isolation, and hostile-input handling.

use std::io::{Read, Write};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use healers_libc::Libc;
use healers_serve::daemon::PipeListener;
use healers_serve::frame::{read_frame, write_frame, Limits, DIR_REQUEST, DIR_RESPONSE};
use healers_serve::pipe::{duplex, DuplexStream};
use healers_serve::{
    run_script, Daemon, DaemonConfig, PlanConfig, Request, Response, Script, ServePlans,
};

const SCRIPT: &str = "\
ping
validate strlen ptr:str
validate strlen ptr:null
validate strcpy ptr:buf ptr:str
validate abs int:-7
validate frobnicate void

explain strcpy
explain abs
report

validate strcpy ptr:null ptr:str
report
shutdown
";

fn test_plans() -> Arc<ServePlans> {
    let libc = Libc::standard();
    let config = PlanConfig {
        functions: vec!["strlen".into(), "strcpy".into(), "abs".into()],
        ..PlanConfig::default()
    };
    Arc::new(ServePlans::build(&libc, &config).unwrap().0)
}

fn spawn_daemon(
    plans: &Arc<ServePlans>,
    workers: usize,
    queue_depth: usize,
) -> (Sender<DuplexStream>, Daemon) {
    let (dial, listener) = PipeListener::new();
    let daemon = Daemon::spawn(
        Box::new(listener),
        Arc::clone(plans),
        DaemonConfig {
            workers,
            queue_depth,
            limits: Limits::default(),
        },
    );
    (dial, daemon)
}

fn dial(dial: &Sender<DuplexStream>) -> DuplexStream {
    let (local, remote) = duplex(64 * 1024);
    dial.send(remote).expect("accept loop alive");
    local
}

fn finish(daemon: Daemon) {
    daemon.trigger_shutdown();
    daemon.join().unwrap();
}

/// The tentpole guarantee: the reply stream for a fixed script is a
/// pure function of the script, not of `--workers`.
#[test]
fn reply_streams_are_byte_identical_for_any_worker_count() {
    let plans = test_plans();
    let script = Script::parse(SCRIPT).unwrap();
    let mut streams = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (tx, daemon) = spawn_daemon(&plans, workers, 8);
        let mut conn = dial(&tx);
        let replies = run_script(&mut conn, &script, &Limits::default()).unwrap();
        drop(conn);
        drop(tx);
        finish(daemon);
        assert!(!replies.raw.is_empty());
        streams.push((workers, replies.raw));
    }
    let (_, reference) = &streams[0];
    for (workers, raw) in &streams[1..] {
        assert_eq!(
            raw, reference,
            "reply bytes for --workers {workers} diverge from --workers 1"
        );
    }
}

/// Warm start: with a warm declaration cache, building the plan set
/// performs zero injected calls — proven by the campaign trace
/// counters, not by timing.
#[test]
fn warm_start_builds_plans_with_zero_injected_calls() {
    let dir = std::env::temp_dir().join(format!("healers-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let libc = Libc::standard();
    let config = PlanConfig {
        functions: vec!["strlen".into(), "strcpy".into(), "abs".into()],
        cache_dir: Some(dir.clone()),
        ..PlanConfig::default()
    };

    let (_, cold) = ServePlans::build(&libc, &config).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, 3);
    assert!(cold.injected_calls > 0, "cold start must inject");

    let (warm_plans, warm) = ServePlans::build(&libc, &config).unwrap();
    assert_eq!(warm.cache_hits, 3, "every function served from cache");
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(
        warm.injected_calls, 0,
        "a warm start must perform zero injected calls"
    );
    // And the warm plan set still checks correctly.
    let mut ctrs = healers_core::checker::CheckCounters::default();
    assert_eq!(
        warm_plans.validate(
            "strlen",
            &[healers_simproc::SimValue::Ptr(warm_plans.scratch_str())],
            &mut ctrs
        ),
        healers_serve::ValidateVerdict::Admit
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupt cache entry fails a serve startup loudly instead of being
/// silently re-derived.
#[test]
fn corrupt_cache_entry_fails_startup() {
    let dir = std::env::temp_dir().join(format!("healers-serve-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let libc = Libc::standard();
    let config = PlanConfig {
        functions: vec!["strlen".into()],
        cache_dir: Some(dir.clone()),
        ..PlanConfig::default()
    };
    ServePlans::build(&libc, &config).unwrap();
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "xml"))
        .expect("cache entry written");
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() - 7]).unwrap();

    let err = ServePlans::build(&libc, &config).unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("checksum"),
        "truncation must be named: {text}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Report counters are session-scoped: two interleaved connections
/// each see only their own traffic.
#[test]
fn report_counters_are_session_scoped() {
    let plans = test_plans();
    let (tx, daemon) = spawn_daemon(&plans, 4, 8);
    let mut a = dial(&tx);
    let mut b = dial(&tx);

    let ping = Script::parse("ping\nping\nping\n\nreport\n").unwrap();
    let one = Script::parse("ping\n\nreport\n").unwrap();
    let ra = run_script(&mut a, &ping, &Limits::default()).unwrap();
    let rb = run_script(&mut b, &one, &Limits::default()).unwrap();

    let counters = |frames: &[Vec<Response>]| -> Vec<(String, u64)> {
        match &frames[1][0] {
            Response::Reported { counters } => counters.clone(),
            other => panic!("expected Reported, got {other:?}"),
        }
    };
    let ca = counters(&ra.frames);
    let cb = counters(&rb.frames);
    let get = |c: &[(String, u64)], k: &str| c.iter().find(|(n, _)| n == k).unwrap().1;
    assert_eq!(get(&ca, "pings"), 3);
    assert_eq!(get(&ca, "requests"), 4, "the report counts itself");
    assert_eq!(get(&cb, "pings"), 1);
    assert_eq!(get(&cb, "requests"), 2);

    drop((a, b, tx));
    finish(daemon);
}

/// A slow reader throttles its own connection: the daemon writes
/// replies straight into the bounded pipe and blocks there, so the
/// bytes buffered toward the client never exceed the pipe capacity,
/// and the next frame is not even processed until the reader drains.
#[test]
fn slow_reader_is_throttled_not_buffered() {
    const CAPACITY: usize = 1024;
    let plans = test_plans();
    let (tx, daemon) = spawn_daemon(&plans, 1, 2);
    let (mut conn, remote) = duplex(CAPACITY);
    tx.send(remote).unwrap();

    // One frame whose reply (~5 bytes/pong plus framing) far exceeds
    // the pipe capacity.
    let ping: Vec<u8> = {
        let mut m = Vec::new();
        Request::Ping.encode(&mut m);
        m
    };
    let messages = vec![ping; 400];
    write_frame(&mut conn, DIR_REQUEST, &messages).unwrap();

    // Without reading a byte, the daemon must park on the full pipe.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        conn.buffered() <= CAPACITY,
        "daemon buffered {} bytes toward a non-reading client",
        conn.buffered()
    );

    // Draining releases the worker and the full reply arrives intact.
    let reply = read_frame(&mut conn, &Limits::default()).unwrap();
    assert_eq!(reply.direction, DIR_RESPONSE);
    assert_eq!(reply.messages.len(), 400);
    for msg in &reply.messages {
        assert_eq!(Response::decode(msg).unwrap(), Response::Pong);
    }

    drop((conn, tx));
    finish(daemon);
}

/// A full connection queue sheds new connections with a `busy` error
/// frame instead of queueing without bound.
#[test]
fn full_connection_queue_sheds_with_a_busy_frame() {
    let plans = test_plans();
    let (tx, daemon) = spawn_daemon(&plans, 1, 1);
    let settle = || std::thread::sleep(Duration::from_millis(150));

    // A occupies the single worker (a served ping proves it was
    // dequeued, leaving the queue empty).
    let mut a = dial(&tx);
    let ping = Script::parse("ping\n").unwrap();
    run_script(&mut a, &ping, &Limits::default()).unwrap();

    // B fills the 1-deep queue; C must be shed.
    let b = dial(&tx);
    settle();
    let mut c = dial(&tx);
    settle();

    let reply = read_frame(&mut c, &Limits::default()).unwrap();
    assert_eq!(reply.direction, DIR_RESPONSE);
    assert_eq!(reply.messages.len(), 1);
    match Response::decode(&reply.messages[0]).unwrap() {
        Response::Error { message } => assert!(message.contains("busy"), "{message}"),
        other => panic!("expected a busy error, got {other:?}"),
    }
    // And the shed connection is closed.
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_eq!(
        daemon
            .counters()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // A and B are still serviceable: close A so the worker picks up B.
    drop(a);
    let mut b = b;
    run_script(&mut b, &ping, &Limits::default()).unwrap();

    drop((b, tx));
    finish(daemon);
}

/// Malformed framing gets one error frame back, then the connection is
/// closed — no resynchronization guesswork, no panic.
#[test]
fn malformed_frames_get_an_error_frame_then_eof() {
    let plans = test_plans();
    let (tx, daemon) = spawn_daemon(&plans, 1, 2);
    let mut conn = dial(&tx);
    conn.write_all(b"GARBAGEGARBAGEGARBAGE").unwrap();

    let reply = read_frame(&mut conn, &Limits::default()).unwrap();
    assert_eq!(reply.direction, DIR_RESPONSE);
    match Response::decode(&reply.messages[0]).unwrap() {
        Response::Error { message } => {
            assert!(message.contains("protocol error"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must be closed after the error");

    drop((conn, tx));
    finish(daemon);
}

/// An undecodable message inside a well-formed frame is answered in
/// position, keeping the one-reply-per-request alignment for the rest
/// of the batch.
#[test]
fn bad_messages_are_answered_in_position() {
    let plans = test_plans();
    let (tx, daemon) = spawn_daemon(&plans, 1, 2);
    let mut conn = dial(&tx);

    let mut ping = Vec::new();
    Request::Ping.encode(&mut ping);
    let messages = vec![ping.clone(), vec![0xEE], ping];
    write_frame(&mut conn, DIR_REQUEST, &messages).unwrap();
    let reply = read_frame(&mut conn, &Limits::default()).unwrap();
    assert_eq!(reply.messages.len(), 3);
    assert_eq!(
        Response::decode(&reply.messages[0]).unwrap(),
        Response::Pong
    );
    assert!(matches!(
        Response::decode(&reply.messages[1]).unwrap(),
        Response::Error { .. }
    ));
    assert_eq!(
        Response::decode(&reply.messages[2]).unwrap(),
        Response::Pong
    );

    drop((conn, tx));
    finish(daemon);
}

/// A `Stats` request reports daemon-wide live counters, and its
/// deterministic subset (global totals, per-function outcomes) is
/// identical for any worker count after the same sequential traffic.
#[test]
fn stats_deterministic_subset_is_worker_count_invariant() {
    let plans = test_plans();
    let traffic =
        Script::parse("validate strlen ptr:str\nvalidate strlen ptr:null\nvalidate abs int:-7\n")
            .unwrap();
    let stats_script = Script::parse("stats\n").unwrap();
    let mut snapshots = Vec::new();
    for workers in [1usize, 4] {
        let (tx, daemon) = spawn_daemon(&plans, workers, 8);
        let mut conn = dial(&tx);
        run_script(&mut conn, &traffic, &Limits::default()).unwrap();
        drop(conn);
        // Sequential: the traffic connection is closed before stats.
        let mut conn = dial(&tx);
        let replies = run_script(&mut conn, &stats_script, &Limits::default()).unwrap();
        drop((conn, tx));
        finish(daemon);
        let Response::Stats(s) = &replies.frames[0][0] else {
            panic!("expected Stats, got {:?}", replies.frames[0][0]);
        };
        // Live sections are present and plausible.
        assert_eq!(s.workers.len(), workers);
        assert!(s.queue_highwater >= 1);
        assert!(s.timings.is_empty(), "timings are opt-in");
        snapshots.push((s.totals.clone(), s.functions.clone()));
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "deterministic stats subset diverged between workers 1 and 4"
    );
    let (totals, functions) = &snapshots[0];
    let get = |k: &str| totals.iter().find(|(n, _)| n == k).unwrap().1;
    assert_eq!(get("connections"), 2);
    assert_eq!(get("validates"), 3);
    assert_eq!(get("admits"), 2, "strlen ptr:str + abs unchecked");
    assert_eq!(get("rejects"), 1);
    let strlen = functions.iter().find(|f| f.function == "strlen").unwrap();
    assert_eq!(
        (strlen.admitted, strlen.rejected, strlen.unchecked),
        (1, 1, 0)
    );
    let abs = functions.iter().find(|f| f.function == "abs").unwrap();
    assert_eq!((abs.admitted, abs.rejected, abs.unchecked), (0, 0, 1));
}

/// A `Shutdown` request is acknowledged with `Bye` and stops the
/// daemon: the accept loop exits and every worker drains.
#[test]
fn shutdown_request_stops_the_daemon() {
    let plans = test_plans();
    let (tx, daemon) = spawn_daemon(&plans, 2, 4);
    let mut conn = dial(&tx);
    let script = Script::parse("shutdown\n").unwrap();
    let replies = run_script(&mut conn, &script, &Limits::default()).unwrap();
    assert_eq!(replies.frames, vec![vec![Response::Bye]]);
    drop(conn);
    // join() without trigger_shutdown(): the request did the stopping.
    drop(tx);
    daemon.join().unwrap();
}
