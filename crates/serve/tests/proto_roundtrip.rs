//! Property tests for the serve wire format: every request/response
//! kind round-trips through its codec, whole frames round-trip through
//! the frame codec, and hostile bytes — truncations, oversized length
//! prefixes, unknown protocol versions, random garbage — are rejected
//! with an error, never a panic or an over-read.

use proptest::prelude::*;

use healers_serve::frame::{
    encode_frame, read_frame, FrameError, Limits, DIR_REQUEST, DIR_RESPONSE, HEADER_LEN,
};
use healers_serve::proto::{ExplainArg, Request, Response, ValidateVerdict};
use healers_simproc::SimValue;

fn arb_value() -> impl Strategy<Value = SimValue> {
    prop_oneof![
        any::<i64>().prop_map(SimValue::Int),
        any::<u32>().prop_map(SimValue::Ptr),
        any::<i64>().prop_map(|b| SimValue::Double(b as f64)),
        Just(SimValue::Void),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,24}"
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        (arb_name(), prop::collection::vec(arb_value(), 0..8))
            .prop_map(|(function, args)| { Request::Validate { function, args } }),
        arb_name().prop_map(|function| Request::Explain { function }),
        Just(Request::Report),
        Just(Request::Shutdown),
    ]
}

fn arb_verdict() -> impl Strategy<Value = ValidateVerdict> {
    prop_oneof![
        Just(ValidateVerdict::Admit),
        Just(ValidateVerdict::AdmitUnchecked),
        (any::<u16>(), "[A-Z0-9_]{1,12}")
            .prop_map(|(arg, check)| ValidateVerdict::Reject { arg, check }),
        Just(ValidateVerdict::UnknownFunction),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let explain_args = prop::collection::vec(
        ("[A-Z-]{1,8}", "[A-Z-]{1,8}").prop_map(|(robust, check)| ExplainArg { robust, check }),
        0..6,
    );
    prop_oneof![
        Just(Response::Pong),
        arb_verdict().prop_map(Response::Validated),
        Just(Response::Explained { info: None }),
        ("[ -~]{0,40}", explain_args).prop_map(|(proto, args)| Response::Explained {
            info: Some((proto, args)),
        }),
        prop::collection::vec((arb_name(), any::<u64>()), 0..16)
            .prop_map(|counters| Response::Reported { counters }),
        Just(Response::Bye),
        "[ -~]{0,60}".prop_map(|message| Response::Error { message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_round_trips(req in arb_request()) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        prop_assert_eq!(Request::decode(&buf).unwrap(), req);
    }

    #[test]
    fn every_response_round_trips(rsp in arb_response()) {
        let mut buf = Vec::new();
        rsp.encode(&mut buf);
        prop_assert_eq!(Response::decode(&buf).unwrap(), rsp);
    }

    #[test]
    fn truncated_requests_never_decode_and_never_panic(req in arb_request()) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        for cut in 0..buf.len() {
            prop_assert!(Request::decode(&buf[..cut]).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn frames_round_trip(
        direction in prop_oneof![Just(DIR_REQUEST), Just(DIR_RESPONSE)],
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12),
    ) {
        let bytes = encode_frame(direction, &messages);
        let frame = read_frame(&mut bytes.as_slice(), &Limits::default()).unwrap();
        prop_assert_eq!(frame.direction, direction);
        prop_assert_eq!(frame.messages, messages);
    }

    #[test]
    fn truncated_frames_are_rejected(
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..6),
        frac in 0.0f64..1.0,
    ) {
        let bytes = encode_frame(DIR_REQUEST, &messages);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = read_frame(&mut &bytes[..cut], &Limits::default()).unwrap_err();
        prop_assert!(
            matches!(err, FrameError::Truncated | FrameError::Eof),
            "cut at {}: {:?}", cut, err
        );
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocation(extra in 1u32..u32::MAX >> 1) {
        let limits = Limits::default();
        let mut bytes = encode_frame(DIR_REQUEST, &[b"hello".to_vec()]);
        let hostile = limits.max_frame_len + extra.min(u32::MAX - limits.max_frame_len);
        bytes[9..13].copy_from_slice(&hostile.to_le_bytes());
        // Only the header is supplied: if the reader tried to consume
        // the advertised payload it would report truncation instead.
        let err = read_frame(&mut &bytes[..HEADER_LEN], &limits).unwrap_err();
        prop_assert!(matches!(err, FrameError::Oversized(n) if n == hostile), "{:?}", err);
    }

    #[test]
    fn unknown_protocol_versions_are_rejected(version in 0u16..u16::MAX) {
        prop_assume!(version != healers_serve::PROTOCOL_VERSION);
        let mut bytes = encode_frame(DIR_REQUEST, &[b"x".to_vec()]);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice(), &Limits::default()).unwrap_err();
        prop_assert!(matches!(err, FrameError::BadVersion(v) if v == version), "{:?}", err);
    }

    #[test]
    fn random_bytes_never_panic_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        // Errors are fine; panics and over-reads are not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = read_frame(&mut bytes.as_slice(), &Limits::default());
    }

    #[test]
    fn batch_counts_that_cannot_fit_are_rejected(count in 2u16..1024) {
        // A frame whose header claims `count` messages but whose
        // payload is a single empty message's length prefix.
        let mut bytes = encode_frame(DIR_REQUEST, &[Vec::new()]);
        bytes[7..9].copy_from_slice(&count.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice(), &Limits::default()).unwrap_err();
        prop_assert!(matches!(err, FrameError::MisframedPayload), "{:?}", err);
    }
}
