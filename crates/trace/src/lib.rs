//! healers-trace — the unified telemetry core.
//!
//! The pipeline's instrumentation used to be three disconnected pieces:
//! `WrapperStats` counters in the wrapper, the JSONL journal in
//! healers-campaign, and raw fault values in simproc. This crate is the
//! shared layer under all of them:
//!
//! * [`hist`] — fixed log2-bucket latency [`Histogram`]s: 64 buckets,
//!   constant memory, mergeable, with percentile queries;
//! * [`collector`] — spans and counters, buffered per thread in a
//!   [`ThreadBuffer`] and drained over a channel by one
//!   [`Collector`] thread (the same single-writer pattern as the
//!   campaign journal);
//! * [`chrome`] — a [`ChromeTrace`] builder emitting trace-event JSON
//!   loadable in `chrome://tracing` / Perfetto;
//! * [`json`] — the workspace's hand-rolled JSON emitter and
//!   validating parser (moved here from healers-campaign so every
//!   exporter shares one implementation);
//! * [`metrics`] — the live observability plane: a process-global
//!   [`MetricsRegistry`] of named counters/gauges/histograms with
//!   Prometheus-text and JSON exposition (`healers serve stats`,
//!   campaign `--progress`);
//! * [`recorder`] — the fault [`FlightRecorder`]: a fixed-capacity
//!   ring buffer of recent structured events (check failures, injected
//!   faults, frame errors, queue sheds), snapshotted on crashes and
//!   attached to `healers explain`.
//!
//! # The gate
//!
//! Telemetry that costs anything on a hot path is switched by one
//! process-global atomic: instrumentation sites call [`enabled`] —
//! a single `Relaxed` load — and skip all collection work when it is
//! off. Counters that are plain integer increments stay unconditional;
//! only clock reads, allocations, and histogram updates hide behind
//! the gate. The crate has no dependencies, so any layer of the
//! workspace can use it.

pub mod chrome;
pub mod collector;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod recorder;

use std::sync::atomic::{AtomicBool, Ordering};

pub use chrome::ChromeTrace;
pub use collector::{Collector, EventSender, ThreadBuffer, TraceRecord};
pub use hist::Histogram;
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use recorder::{FlightEvent, FlightRecorder};

/// The process-global telemetry gate. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection switched on? One relaxed atomic load — the
/// entire disabled-mode cost at an instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switch telemetry collection on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_defaults_off_and_toggles() {
        // Other tests in this binary do not touch the gate, so the
        // default is observable here.
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
