//! Span and counter collection over a single-writer channel.
//!
//! The same shape as the campaign journal: any number of producer
//! threads, one consumer. Producers buffer records locally in a
//! [`ThreadBuffer`] (so a hot loop pays a `Vec::push`, not a channel
//! send, per record) and ship full batches; one [`Collector`] thread
//! drains the channel and owns the merged record stream. Senders
//! outliving the collector are harmless: a send after shutdown is
//! silently dropped, never a panic — the instrumented program must not
//! be able to crash itself through its telemetry.
//!
//! Gating is the *call site's* job: hot paths consult
//! [`crate::enabled`] before building records. The collector itself is
//! explicit machinery — constructing one is already opting in.

use std::sync::mpsc::{self, Sender};
use std::thread::{self, JoinHandle};

/// One telemetry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A span opened at logical timestamp `ts`.
    SpanBegin {
        /// Span name.
        name: String,
        /// Logical timestamp (caller-defined unit, e.g. journal seq).
        ts: u64,
    },
    /// The matching span close.
    SpanEnd {
        /// Span name.
        name: String,
        /// Logical timestamp.
        ts: u64,
    },
    /// A sampled counter value.
    Counter {
        /// Counter name.
        name: String,
        /// Logical timestamp.
        ts: u64,
        /// The sampled value.
        value: i64,
    },
    /// One latency sample (nanoseconds).
    Latency {
        /// Metric name.
        name: String,
        /// The sample.
        nanos: u64,
    },
}

/// Producer half: clone one per thread. Sends are infallible — after
/// the collector shuts down they become no-ops.
#[derive(Debug, Clone)]
pub struct EventSender {
    tx: Option<Sender<Vec<TraceRecord>>>,
}

/// Default batch size for [`ThreadBuffer`].
const BATCH: usize = 256;

impl EventSender {
    /// A sender wired to nothing: every send is a no-op. Lets
    /// instrumented code hold a sender unconditionally.
    pub fn disabled() -> Self {
        EventSender { tx: None }
    }

    /// A per-thread buffer feeding this sender.
    pub fn buffer(&self) -> ThreadBuffer {
        ThreadBuffer {
            records: Vec::new(),
            sender: self.clone(),
        }
    }

    /// Ship one batch. Dropped silently if the collector is gone.
    pub fn send(&self, batch: Vec<TraceRecord>) {
        if batch.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            let _ = tx.send(batch);
        }
    }
}

/// A thread-local record buffer: push cheaply, flush in batches.
/// Flushes itself on drop, so records cannot be lost by forgetting the
/// final flush.
#[derive(Debug)]
pub struct ThreadBuffer {
    records: Vec<TraceRecord>,
    sender: EventSender,
}

impl ThreadBuffer {
    /// Append one record, shipping the batch when full.
    pub fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
        if self.records.len() >= BATCH {
            self.flush();
        }
    }

    /// Ship everything buffered so far.
    pub fn flush(&mut self) {
        self.sender.send(std::mem::take(&mut self.records));
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Consumer half: one thread draining all producers into a record
/// vector.
#[derive(Debug)]
pub struct Collector {
    sender: EventSender,
    drainer: Option<JoinHandle<Vec<TraceRecord>>>,
}

impl Collector {
    /// Spawn the drainer thread.
    pub fn start() -> Self {
        let (tx, rx) = mpsc::channel::<Vec<TraceRecord>>();
        let drainer = thread::Builder::new()
            .name("trace-collector".into())
            .spawn(move || {
                let mut all = Vec::new();
                // An empty batch is the shutdown sentinel (only
                // `finish` produces one — `EventSender::send` never
                // ships an empty batch); breaking on it lets `finish`
                // join the drainer while producers still hold senders.
                // Exhaustion of every sender also ends the loop.
                for batch in rx {
                    if batch.is_empty() {
                        break;
                    }
                    all.extend(batch);
                }
                all
            })
            .expect("spawn trace collector");
        Collector {
            sender: EventSender { tx: Some(tx) },
            drainer: Some(drainer),
        }
    }

    /// A new producer handle.
    pub fn sender(&self) -> EventSender {
        self.sender.clone()
    }

    /// Shut down and return every record received, in arrival order.
    /// Outstanding [`EventSender`] clones keep working as no-ops.
    pub fn finish(mut self) -> Vec<TraceRecord> {
        if let Some(tx) = self.sender.tx.take() {
            let _ = tx.send(Vec::new());
        }
        match self.drainer.take() {
            Some(handle) => match handle.join() {
                Ok(records) => records,
                Err(panic) => std::panic::resume_unwind(panic),
            },
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency(name: &str, nanos: u64) -> TraceRecord {
        TraceRecord::Latency {
            name: name.to_string(),
            nanos,
        }
    }

    #[test]
    fn multi_thread_batches_all_arrive() {
        let collector = Collector::start();
        let workers = 4;
        let per_worker = 1000usize;
        thread::scope(|scope| {
            for w in 0..workers {
                let sender = collector.sender();
                scope.spawn(move || {
                    let mut buf = sender.buffer();
                    for i in 0..per_worker {
                        buf.record(latency(&format!("w{w}"), i as u64));
                    }
                    // No explicit flush: drop must ship the tail batch.
                });
            }
        });
        let records = collector.finish();
        assert_eq!(records.len(), workers * per_worker);
        for w in 0..workers {
            let name = format!("w{w}");
            let count = records
                .iter()
                .filter(|r| matches!(r, TraceRecord::Latency { name: n, .. } if *n == name))
                .count();
            assert_eq!(count, per_worker, "lost records from worker {w}");
        }
    }

    #[test]
    fn send_after_shutdown_is_a_silent_no_op() {
        let collector = Collector::start();
        let sender = collector.sender();
        let mut buf = sender.buffer();
        buf.record(latency("before", 1));
        buf.flush();
        let records = collector.finish();
        assert_eq!(records.len(), 1);
        // The collector is gone; these must not panic, on push, on
        // flush, or on drop.
        buf.record(latency("after", 2));
        buf.flush();
        sender.send(vec![latency("after", 3)]);
        drop(buf);
    }

    #[test]
    fn disabled_sender_accepts_everything() {
        let sender = EventSender::disabled();
        let mut buf = sender.buffer();
        for i in 0..10_000 {
            buf.record(latency("x", i));
        }
        buf.flush();
        // Buffer must not grow without bound when wired to nothing.
        assert!(buf.records.is_empty());
    }

    #[test]
    fn thread_exit_flush_survives_an_active_flight_recorder() {
        // Regression guard in the spirit of the PR 3 drainer-sentinel
        // fix: the drainer treats an *empty* batch as the shutdown
        // sentinel, so nothing a worker thread does on its way out —
        // including logging events into the flight recorder between
        // records — may cause a ThreadBuffer to ship an empty or
        // truncated tail batch and silently end the drain early.
        let recorder = crate::recorder::FlightRecorder::new(8);
        let collector = Collector::start();
        let per_worker = 100usize;
        thread::scope(|scope| {
            for w in 0..3 {
                let sender = collector.sender();
                let recorder = &recorder;
                scope.spawn(move || {
                    let mut buf = sender.buffer();
                    for i in 0..per_worker {
                        buf.record(latency(&format!("w{w}"), i as u64));
                        if i % 10 == 0 {
                            recorder.record("check-failure", "strcpy", "mid-batch event");
                        }
                    }
                    // Last act before thread exit: a recorder event,
                    // then the implicit drop-flush of the tail batch.
                    recorder.record("fault-injected", "gets", "thread exiting");
                });
            }
        });
        let records = collector.finish();
        assert_eq!(
            records.len(),
            3 * per_worker,
            "drop-flush lost records while the recorder was live"
        );
        assert!(recorder.recorded() > 0);
        assert_eq!(recorder.len(), 8);
    }

    #[test]
    fn spans_and_counters_round_trip() {
        let collector = Collector::start();
        let mut buf = collector.sender().buffer();
        buf.record(TraceRecord::SpanBegin {
            name: "inject:strcpy".into(),
            ts: 1,
        });
        buf.record(TraceRecord::Counter {
            name: "queue_depth".into(),
            ts: 2,
            value: 5,
        });
        buf.record(TraceRecord::SpanEnd {
            name: "inject:strcpy".into(),
            ts: 7,
        });
        buf.flush();
        let records = collector.finish();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0],
            TraceRecord::SpanBegin {
                name: "inject:strcpy".into(),
                ts: 1
            }
        );
    }
}
