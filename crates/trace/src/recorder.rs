//! The fault flight recorder: a fixed-capacity ring buffer of recent
//! structured events.
//!
//! Post-hoc artifacts (the campaign journal, `Report`) tell you *what*
//! went wrong; the flight recorder tells you *what happened just
//! before*. Rare-but-interesting events — check failures, injected
//! faults, frame decode errors, queue sheds — are appended with
//! [`FlightRecorder::record`]; when a wrapped call crashes or a
//! violation fires, the last N events are snapshotted, attached to
//! `healers explain` provenance, and dumpable as JSONL.
//!
//! # Concurrency
//!
//! Writers claim a slot with one atomic `fetch_add` ticket (lock-free
//! ordering decision), then take that slot's own mutex to store the
//! event — so concurrent writers never serialise against each other
//! unless they collide on the same slot a full lap apart, in which
//! case the *newer* event wins (a flight recorder keeps the recent
//! past, not the complete history). Recording is only performed on
//! rare paths (violations, faults, protocol errors), never on the
//! per-call hot path, so the per-event cost is irrelevant to
//! throughput gates.
//!
//! # Determinism
//!
//! Event sequence numbers order the snapshot. Under parallel writers
//! the interleaving is scheduling-dependent, which is why recorder
//! output is attached to *diagnostic* artifacts (explain, crash dumps)
//! and never to the byte-diffed deterministic ones.

use crate::json::JsonObject;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Capacity of the process-global [`flight`] recorder.
pub const FLIGHT_CAPACITY: usize = 64;

/// One recorded event: a ticket, a static kind tag, the function
/// involved (empty when not applicable), and a free-form detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number: the ticket claimed at record time.
    pub seq: u64,
    /// Event class, e.g. `"check-failure"`, `"fault-injected"`,
    /// `"frame-error"`, `"queue-shed"`.
    pub kind: &'static str,
    /// The library function involved, when the event has one.
    pub function: String,
    /// Human-readable specifics (fault site, error text, …).
    pub detail: String,
}

impl FlightEvent {
    /// Render the event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("seq", self.seq)
            .str("kind", self.kind)
            .str("function", &self.function)
            .str("detail", &self.detail)
            .finish()
    }
}

/// A fixed-capacity ring buffer of [`FlightEvent`]s. See the module
/// docs for the concurrency model.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events
    /// (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Append one event, overwriting the oldest if full.
    pub fn record(&self, kind: &'static str, function: &str, detail: &str) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap();
        // A writer a full lap ahead may already have stored a newer
        // event in this slot; recent beats old.
        if guard.as_ref().is_none_or(|e| e.seq < seq) {
            *guard = Some(FlightEvent {
                seq,
                kind,
                function: function.to_string(),
                detail: detail.to_string(),
            });
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events currently held: `min(recorded, capacity)`.
    pub fn len(&self) -> usize {
        (self.recorded() as usize).min(self.slots.len())
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// The held events in sequence order, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The snapshot as JSONL: one event object per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Drop every held event and reset the ticket counter. Test and
    /// run-boundary hygiene.
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap() = None;
        }
        self.next.store(0, Ordering::Relaxed);
    }
}

/// The process-global flight recorder ([`FLIGHT_CAPACITY`] events).
pub fn flight() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(|| FlightRecorder::new(FLIGHT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn records_in_order_and_wraps() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for i in 0..6u64 {
            rec.record("check-failure", "strcpy", &format!("event {i}"));
        }
        assert_eq!(rec.recorded(), 6);
        assert_eq!(rec.len(), 4);
        let snap = rec.snapshot();
        // Oldest two (seq 0, 1) were overwritten.
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(snap[3].detail, "event 5");
    }

    #[test]
    fn jsonl_lines_validate() {
        let rec = FlightRecorder::new(8);
        rec.record("fault-injected", "asctime", "fault at 0x7000 \"wild\"");
        rec.record("queue-shed", "", "queue full at depth 16");
        let dump = rec.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json::validate(line).unwrap();
        }
        assert!(lines[0].contains("\"kind\":\"fault-injected\""));
        assert!(lines[1].contains("\"function\":\"\""));
    }

    #[test]
    fn clear_resets_everything() {
        let rec = FlightRecorder::new(2);
        rec.record("frame-error", "", "bad magic");
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.snapshot().len(), 0);
        rec.record("frame-error", "", "again");
        assert_eq!(rec.snapshot()[0].seq, 0);
    }

    #[test]
    fn concurrent_writers_keep_the_recent_past() {
        let rec = std::sync::Arc::new(FlightRecorder::new(16));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        rec.record("check-failure", "memset", &format!("t{t} i{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 400);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 16);
        // The survivors are the highest-numbered tickets, in order.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert!(seqs.iter().all(|&s| s >= 400 - 16));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let rec = FlightRecorder::new(0);
        rec.record("check-failure", "x", "y");
        assert_eq!(rec.len(), 1);
    }
}
