//! Fixed log2-bucket histograms.
//!
//! Latency distributions are heavy-tailed, so the usual trade applies:
//! exact quantiles need unbounded memory, but quantiles with a
//! factor-of-two error bound need only one counter per bit. A
//! [`Histogram`] is 64 `u64` buckets — bucket *i* covers the values
//! whose binary representation has *i* significant bits, i.e. the range
//! `[2^(i-1), 2^i)` (bucket 0 holds exactly the value 0). Recording is
//! a `leading_zeros` and an array increment; merging is element-wise
//! addition, which makes per-thread histograms foldable in any order
//! with a deterministic result.

/// Number of buckets — one per possible bit length of a `u64`.
pub const BUCKETS: usize = 64;

/// A fixed-size log2-bucket histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(n={}", self.total)?;
        if self.total > 0 {
            write!(
                f,
                ", p50≤{}, p99≤{}",
                self.percentile(50.0),
                self.percentile(99.0)
            )?;
        }
        write!(f, ")")
    }
}

/// The bucket index for `value`: its bit length, capped at the last
/// bucket.
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `i` can hold (inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Fold another histogram into this one. Element-wise addition:
    /// commutative and associative, so per-thread histograms merge to
    /// the same result in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// An upper bound on the `p`-th percentile (`0 < p ≤ 100`): the
    /// inclusive upper edge of the bucket containing the sample of that
    /// rank. Exact to within a factor of two by construction. Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in
    /// ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(8), 255);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn percentiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        // p50 of 1..=1000 is 500; the bucket bound must cover it and
        // stay within a factor of two.
        let p50 = h.percentile(50.0);
        assert!((500..=1023).contains(&p50), "p50 bound {p50}");
        let p99 = h.percentile(99.0);
        assert!((990..=1023).contains(&p99), "p99 bound {p99}");
        assert_eq!(h.percentile(100.0), 1023);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples = [3u64, 17, 900, 0, 65_536, 1, 1, 42];
        let mut serial = Histogram::new();
        for &s in &samples {
            serial.record(s);
        }
        let (left, right) = samples.split_at(3);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial);
    }

    #[test]
    fn empty_percentile_is_zero_at_every_p() {
        // Edge contract: percentile of an empty histogram is 0 for any
        // p, including the extremes — never a bucket bound, never a
        // panic.
        let h = Histogram::new();
        for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0, "empty percentile at p={p}");
        }
    }

    #[test]
    fn top_bucket_saturates_at_u64_max() {
        // Edge contract: every value with 64 significant bits lands in
        // the last bucket, whose inclusive upper bound is u64::MAX —
        // the one bucket where the factor-of-two error bound widens to
        // "somewhere above 2^62".
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 3);
        for p in [1.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), u64::MAX);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(u64::MAX, 3)], "all three share bucket 63");
    }

    #[test]
    fn merge_of_differently_populated_histograms() {
        // Edge contract: merging histograms with disjoint bucket
        // occupancy (including one empty side) is plain element-wise
        // addition — totals add, every source bucket survives, and
        // merging an empty histogram is the identity.
        let mut small = Histogram::new();
        for _ in 0..1000 {
            small.record(2);
        }
        let mut large = Histogram::new();
        large.record(1 << 40);
        let mut merged = small.clone();
        merged.merge(&large);
        assert_eq!(merged.count(), 1001);
        // The lone huge sample is past p99 but is the p100 bound.
        assert_eq!(merged.percentile(99.0), small.percentile(99.0));
        assert_eq!(merged.percentile(100.0), large.percentile(100.0));
        let mut identity = small.clone();
        identity.merge(&Histogram::new());
        assert_eq!(identity, small);
        let mut from_empty = Histogram::new();
        from_empty.merge(&small);
        assert_eq!(from_empty, small);
    }

    #[test]
    fn single_sample_percentile_is_its_bucket_bound() {
        let mut h = Histogram::new();
        h.record(100);
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 127);
        }
    }
}
