//! Chrome trace-event JSON emission.
//!
//! The [trace-event format] is the lingua franca of timeline viewers:
//! `chrome://tracing`, Perfetto, and speedscope all load it. A
//! [`ChromeTrace`] accumulates events and renders the object-form
//! document `{"traceEvents":[...]}`. Only the three event kinds the
//! campaign timeline needs are provided: complete spans (`"X"`),
//! instants (`"i"`), and counters (`"C"`). Timestamps are
//! caller-defined integers — the campaign uses journal sequence
//! numbers, which is what makes its exported timeline deterministic
//! across worker counts.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::JsonObject;

/// An accumulating trace-event document builder.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn base(name: &str, phase: &str, tid: u64, ts: u64) -> JsonObject {
        JsonObject::new()
            .str("name", name)
            .str("ph", phase)
            .u64("pid", 1)
            .u64("tid", tid)
            .u64("ts", ts)
    }

    /// A complete span (`"X"`): `name` on lane `tid`, from `ts` for
    /// `dur` timestamp units.
    pub fn complete(&mut self, name: &str, tid: u64, ts: u64, dur: u64) {
        self.events
            .push(Self::base(name, "X", tid, ts).u64("dur", dur).finish());
    }

    /// An instant event (`"i"`), thread-scoped.
    pub fn instant(&mut self, name: &str, tid: u64, ts: u64) {
        self.events
            .push(Self::base(name, "i", tid, ts).str("s", "t").finish());
    }

    /// A counter sample (`"C"`): the viewer draws `name` as a stacked
    /// area chart over time.
    pub fn counter(&mut self, name: &str, ts: u64, value: u64) {
        self.events.push(
            Self::base(name, "C", 0, ts)
                .raw("args", &JsonObject::new().u64("value", value).finish())
                .finish(),
        );
    }

    /// Render the full `{"traceEvents":[...]}` document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn rendered_document_is_valid_json() {
        let mut t = ChromeTrace::new();
        t.complete("inject:strcpy", 0, 10, 42);
        t.instant("cache:asctime", 1, 11);
        t.counter("workers", 12, 3);
        let doc = t.render();
        json::validate(doc.trim()).unwrap();
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"args\":{\"value\":3}"));
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let doc = ChromeTrace::new().render();
        json::validate(doc.trim()).unwrap();
    }

    #[test]
    fn event_names_are_escaped() {
        let mut t = ChromeTrace::new();
        t.complete("weird \"name\"\n", 0, 0, 1);
        json::validate(t.render().trim()).unwrap();
    }
}
