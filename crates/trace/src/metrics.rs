//! Process-global metrics plane: named counters, gauges, and gated
//! latency histograms.
//!
//! The wrapper's `WrapperStats`, the serve daemon's `ServeCounters`,
//! and the campaign's `CampaignMetrics` are all *session-scoped*: they
//! answer "what happened in this run" after the run ends. The
//! [`MetricsRegistry`] is the live complement — a process-global table
//! of named metrics any layer can bump and any observer can snapshot
//! while the process is running (`healers serve stats`, the campaign
//! `--progress` heartbeat).
//!
//! # Cost model
//!
//! A [`Counter`] is one `AtomicU64`; incrementing it is a single
//! `Relaxed` `fetch_add` — cheap enough to live unconditionally on the
//! zero-alloc `precheck` hot path. Registration (name lookup) takes a
//! lock, so hot paths resolve their `Arc<Counter>` handle **once** at
//! construction time and keep it; the per-event cost is then exactly
//! the atomic add. Anything that reads a clock ([`MetricsRegistry::
//! record_timing`]) hides behind the [`crate::enabled`] gate, same as
//! the rest of the telemetry layer.
//!
//! # Determinism
//!
//! Counters and gauges bump on *logical* events (a validate admitted, a
//! frame decoded, a fault injected), so for a fixed workload the
//! snapshot of the deterministic subset is byte-identical regardless of
//! `--jobs` / `--workers`. Timing histograms are wall-clock derived and
//! therefore opt-in, exactly like `report --timings`. Snapshots iterate
//! a `BTreeMap`, so rendering order is the sorted name order — stable
//! across runs and platforms.

use crate::hist::Histogram;
use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event counter. One relaxed atomic add
/// per event; safe to share across threads via `Arc`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins (or high-water-mark) instantaneous measurement.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named table of [`Counter`]s, [`Gauge`]s, and latency
/// [`Histogram`]s. See the module docs for the cost and determinism
/// contracts. Most code uses the process-wide [`global`] instance;
/// tests construct their own to stay isolated from parallel tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    timings: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register-or-get the counter named `name`. Takes a lock: call
    /// once at construction time and keep the `Arc` for hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Register-or-get the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Record one latency sample into the histogram named `name`.
    /// Callers gate the *clock read* behind [`crate::enabled`]; this
    /// method records unconditionally so tests can drive it directly.
    pub fn record_timing(&self, name: &str, nanos: u64) {
        let mut map = self.timings.lock().unwrap();
        map.entry(name.to_string()).or_default().record(nanos);
    }

    /// All counters as sorted `(name, value)` pairs — the
    /// deterministic subset of a snapshot.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().unwrap();
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All gauges as sorted `(name, value)` pairs.
    pub fn gauge_snapshot(&self) -> Vec<(String, u64)> {
        let map = self.gauges.lock().unwrap();
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All timing histograms, sorted by name.
    pub fn timing_snapshot(&self) -> Vec<(String, Histogram)> {
        let map = self.timings.lock().unwrap();
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Zero every counter and gauge and drop every histogram. Test and
    /// campaign-start hygiene; live observers never call this.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.set(0);
        }
        self.timings.lock().unwrap().clear();
    }

    /// Render the registry in the Prometheus text exposition format:
    /// one `# TYPE` line per metric, counters as `counter`, gauges as
    /// `gauge`, and (when `include_timings`) histograms as `summary`
    /// quantiles. Names are sanitised to `[a-zA-Z0-9_:]`.
    pub fn render_prometheus(&self, include_timings: bool) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            let name = prom_name(&name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in self.gauge_snapshot() {
            let name = prom_name(&name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        if include_timings {
            for (name, hist) in self.timing_snapshot() {
                let name = prom_name(&name);
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (q, p) in [("0.5", 50.0), ("0.99", 99.0)] {
                    out.push_str(&format!(
                        "{name}{{quantile=\"{q}\"}} {}\n",
                        hist.percentile(p)
                    ));
                }
                out.push_str(&format!("{name}_count {}\n", hist.count()));
            }
        }
        out
    }

    /// Render the registry as one JSON object:
    /// `{"counters":{...},"gauges":{...}[,"timings":{...}]}`.
    pub fn render_json(&self, include_timings: bool) -> String {
        let mut counters = JsonObject::new();
        for (name, value) in self.counter_snapshot() {
            counters = counters.u64(&name, value);
        }
        let mut gauges = JsonObject::new();
        for (name, value) in self.gauge_snapshot() {
            gauges = gauges.u64(&name, value);
        }
        let mut doc = JsonObject::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish());
        if include_timings {
            let mut timings = JsonObject::new();
            for (name, hist) in self.timing_snapshot() {
                let entry = JsonObject::new()
                    .u64("count", hist.count())
                    .u64("p50", hist.percentile(50.0))
                    .u64("p99", hist.percentile(99.0))
                    .finish();
                timings = timings.raw(&name, &entry);
            }
            doc = doc.raw("timings", &timings.finish());
        }
        doc.finish()
    }
}

/// Sanitise a metric name for the Prometheus exposition format:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit is prefixed with `_`. Shared with the serve stats client,
/// which renders wire-carried counters in the same format.
pub fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// The process-global registry. Hot paths resolve handles from it once
/// ([`MetricsRegistry::counter`]) and keep the `Arc`.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        let b = reg.counter("b_total");
        let a = reg.counter("a_total");
        a.add(3);
        b.inc();
        // Register-or-get returns the same underlying counter.
        reg.counter("a_total").inc();
        assert_eq!(
            reg.counter_snapshot(),
            vec![("a_total".to_string(), 4), ("b_total".to_string(), 1)]
        );
    }

    #[test]
    fn gauge_set_and_high_water() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        c.add(7);
        reg.gauge("g").set(2);
        reg.record_timing("lat", 100);
        reg.reset();
        assert_eq!(c.get(), 0, "held handles see the reset");
        assert_eq!(reg.gauge_snapshot(), vec![("g".to_string(), 0)]);
        assert!(reg.timing_snapshot().is_empty());
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("serve_frames_total").add(10);
        reg.gauge("queue depth!").set(3);
        reg.record_timing("validate_ns", 900);
        let text = reg.render_prometheus(true);
        assert!(text.contains("# TYPE serve_frames_total counter\n"));
        assert!(text.contains("serve_frames_total 10\n"));
        // Invalid characters sanitised.
        assert!(text.contains("queue_depth_ 3\n"));
        assert!(text.contains("validate_ns{quantile=\"0.5\"} 1023\n"));
        assert!(text.contains("validate_ns_count 1\n"));
        // Every line is `# TYPE name kind` or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split_whitespace().count() == 2,
                "malformed exposition line {line:?}"
            );
        }
        // Timings are opt-in.
        assert!(!reg.render_prometheus(false).contains("quantile"));
    }

    #[test]
    fn json_rendering_validates() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(1);
        reg.gauge("g").set(2);
        reg.record_timing("t", 5);
        let doc = reg.render_json(true);
        json::validate(&doc).unwrap();
        assert!(doc.contains("\"counters\":{\"a\":1}"));
        assert!(doc.contains("\"p50\":7"));
        let doc = reg.render_json(false);
        json::validate(&doc).unwrap();
        assert!(!doc.contains("timings"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("test_metrics_global_singleton");
        let before = c.get();
        global().counter("test_metrics_global_singleton").inc();
        assert_eq!(c.get(), before + 1);
    }
}
