//! Hand-rolled JSON emission and validation.
//!
//! The campaign journal writes one JSON object per line (JSONL), and
//! the trace exporters write whole documents. The workspace builds
//! offline with no serde, so this module provides the tiny subset
//! needed: an object builder that escapes strings correctly, and a
//! validating parser used by tests and tooling to prove emitted output
//! is well-formed JSON. (It lives in healers-trace — the lowest layer
//! that emits JSON — and healers-campaign re-exports it.)

/// Escape `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-rendered JSON (e.g. a nested
    /// object from another builder). The caller vouches for its
    /// validity.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Add an array-of-strings field.
    pub fn str_array(mut self, key: &str, values: &[String]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('"');
            self.buf.push_str(&escape(v));
            self.buf.push('"');
        }
        self.buf.push(']');
        self
    }

    /// Render the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Validate that `text` is one complete JSON value (object, array,
/// string, number, boolean, or null), returning a description of the
/// first syntax error. Used to prove journal lines are parseable.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    skip_ws(&bytes, &mut pos);
    value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn value(b: &[char], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some('{') => object(b, pos),
        Some('[') => array(b, pos),
        Some('"') => string(b, pos),
        Some('t') => literal(b, pos, "true"),
        Some('f') => literal(b, pos, "false"),
        Some('n') => literal(b, pos, "null"),
        Some(c) if *c == '-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected {c:?} at offset {pos}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn object(b: &[char], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn array(b: &[char], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn string(b: &[char], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            '"' => {
                *pos += 1;
                return Ok(());
            }
            '\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some('u') => {
                        for _ in 0..4 {
                            *pos += 1;
                            if !b.get(*pos).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at offset {pos}"));
                            }
                        }
                        *pos += 1;
                    }
                    Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => *pos += 1,
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c if (c as u32) < 0x20 => {
                return Err(format!("raw control character at offset {pos}"));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[char], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    let digits = |pos: &mut usize| {
        let from = *pos;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&'.') {
        *pos += 1;
        if !digits(pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some('e' | 'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some('+' | '-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

fn literal(b: &[char], pos: &mut usize, word: &str) -> Result<(), String> {
    for expect in word.chars() {
        if b.get(*pos) != Some(&expect) {
            return Err(format!("bad literal at offset {pos}"));
        }
        *pos += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_validates() {
        let line = JsonObject::new()
            .str("event", "classified")
            .str("function", "weird \"name\"\n")
            .u64("calls", 123)
            .bool("safe", false)
            .str_array("robust", &["R_ARRAY[44]".to_string(), "NTS".to_string()])
            .finish();
        validate(&line).unwrap();
        assert!(line.contains("\\\"name\\\"\\n"));
    }

    #[test]
    fn raw_nests_prerendered_objects() {
        let inner = JsonObject::new().u64("value", 7).finish();
        let line = JsonObject::new()
            .str("name", "workers")
            .raw("args", &inner)
            .finish();
        validate(&line).unwrap();
        assert_eq!(line, "{\"name\":\"workers\",\"args\":{\"value\":7}}");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,",
            "\"open",
            "{\"a\":1,}",
            "tru",
            "1.2.3",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn accepts_plain_values() {
        for good in ["{}", "[]", "0", "-1.5e9", "true", "null", "\"x\""] {
            validate(good).unwrap_or_else(|e| panic!("{good:?}: {e}"));
        }
    }
}
