//! Property tests: the simulated C functions agree with their Rust
//! reference semantics on valid inputs.

use proptest::prelude::*;

use healers_libc::{Libc, World};
use healers_simproc::SimValue;

fn setup() -> (Libc, World) {
    (Libc::standard(), World::new())
}

fn p(a: u32) -> SimValue {
    SimValue::Ptr(a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// strlen agrees with the Rust length for any NUL-free content.
    #[test]
    fn strlen_matches(text in "[ -~]{0,200}") {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr(&text);
        let r = libc.call(&mut w, "strlen", &[p(s)]).unwrap();
        prop_assert_eq!(r.as_int() as usize, text.len());
    }

    /// strcpy really copies: destination reads back as the source.
    #[test]
    fn strcpy_copies(text in "[ -~]{0,100}") {
        let (libc, mut w) = setup();
        let src = w.alloc_cstr(&text);
        let dst = w.alloc_buf(128);
        libc.call(&mut w, "strcpy", &[p(dst), p(src)]).unwrap();
        prop_assert_eq!(w.read_cstr_lossy(dst).unwrap(), text);
    }

    /// strcmp has the sign of Rust byte-slice comparison.
    #[test]
    fn strcmp_matches(a in "[ -~]{0,40}", b in "[ -~]{0,40}") {
        let (libc, mut w) = setup();
        let pa = w.alloc_cstr(&a);
        let pb = w.alloc_cstr(&b);
        let r = libc.call(&mut w, "strcmp", &[p(pa), p(pb)]).unwrap().as_int();
        let expect = a.as_bytes().cmp(b.as_bytes());
        prop_assert_eq!(r.signum(), match expect {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        });
    }

    /// strchr finds exactly what Rust's find sees.
    #[test]
    fn strchr_matches(text in "[a-z]{0,60}", needle in b'a'..=b'z') {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr(&text);
        let r = libc
            .call(&mut w, "strchr", &[p(s), SimValue::Int(i64::from(needle))])
            .unwrap();
        match text.bytes().position(|b| b == needle) {
            Some(i) => prop_assert_eq!(r.as_ptr(), s + i as u32),
            None => prop_assert!(r.is_null()),
        }
    }

    /// strstr agrees with Rust's substring search.
    #[test]
    fn strstr_matches(hay in "[ab]{0,30}", needle in "[ab]{1,4}") {
        let (libc, mut w) = setup();
        let h = w.alloc_cstr(&hay);
        let n = w.alloc_cstr(&needle);
        let r = libc.call(&mut w, "strstr", &[p(h), p(n)]).unwrap();
        match hay.find(&needle) {
            Some(i) => prop_assert_eq!(r.as_ptr(), h + i as u32),
            None => prop_assert!(r.is_null()),
        }
    }

    /// atoi agrees with Rust's parse for canonical decimal strings.
    #[test]
    fn atoi_matches(n in -1_000_000i64..1_000_000) {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr(&n.to_string());
        let r = libc.call(&mut w, "atoi", &[p(s)]).unwrap();
        prop_assert_eq!(r.as_int(), n);
    }

    /// strtol round-trips any i32 in any base from 2 to 36.
    #[test]
    fn strtol_roundtrips(n in any::<i32>(), base in 2u32..=36) {
        let (libc, mut w) = setup();
        let text = if n < 0 {
            format!("-{}", to_radix(n.unsigned_abs(), base))
        } else {
            to_radix(n.unsigned_abs(), base)
        };
        let s = w.alloc_cstr(&text);
        let end = w.alloc_buf(4);
        let r = libc
            .call(&mut w, "strtol", &[p(s), p(end), SimValue::Int(i64::from(base))])
            .unwrap();
        prop_assert_eq!(r.as_int(), i64::from(n));
        // endptr points at the terminator.
        prop_assert_eq!(w.proc.mem.read_u32(end).unwrap(), s + text.len() as u32);
    }

    /// sprintf %d then sscanf %d is the identity.
    #[test]
    fn printf_scanf_roundtrip(n in any::<i32>()) {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(64);
        let fmt = w.alloc_cstr("%d");
        libc.call(&mut w, "sprintf", &[p(buf), p(fmt), SimValue::Int(i64::from(n))])
            .unwrap();
        let out = w.alloc_buf(4);
        let r = libc.call(&mut w, "sscanf", &[p(buf), p(fmt), p(out)]).unwrap();
        prop_assert_eq!(r, SimValue::Int(1));
        prop_assert_eq!(w.proc.mem.read_i32(out).unwrap(), n);
    }

    /// memmove with arbitrary overlap equals Rust's copy_within.
    #[test]
    fn memmove_matches_copy_within(
        data in prop::collection::vec(any::<u8>(), 32..64),
        src_off in 0usize..16,
        dst_off in 0usize..16,
        len in 0usize..16,
    ) {
        let (libc, mut w) = setup();
        let base = w.alloc_buf(64);
        w.proc.mem.write_bytes(base, &data).unwrap();
        libc.call(
            &mut w,
            "memmove",
            &[
                p(base + dst_off as u32),
                p(base + src_off as u32),
                SimValue::Int(len as i64),
            ],
        )
        .unwrap();
        let mut expect = data.clone();
        expect.copy_within(src_off..src_off + len, dst_off);
        prop_assert_eq!(w.proc.mem.read_bytes(base, data.len() as u32).unwrap(), expect);
    }

    /// gmtime ∘ mktime is the identity on the epoch range.
    #[test]
    fn gmtime_mktime_roundtrip(t in 0i64..2_000_000_000) {
        let (libc, mut w) = setup();
        let tp = w.alloc_buf(4);
        w.proc.mem.write_i32(tp, t as i32).unwrap();
        let tm = libc.call(&mut w, "gmtime", &[p(tp)]).unwrap();
        // Copy the static tm into a writable buffer for mktime.
        let copy = w.alloc_buf(44);
        let bytes = w.proc.mem.read_bytes(tm.as_ptr(), 44).unwrap();
        w.proc.mem.write_bytes(copy, &bytes).unwrap();
        let back = libc.call(&mut w, "mktime", &[p(copy)]).unwrap();
        prop_assert_eq!(back.as_int(), t);
    }

    /// toupper/tolower agree with Rust for the full valid domain.
    #[test]
    fn case_conversion_matches(c in 0i64..=255) {
        let (libc, mut w) = setup();
        let up = libc.call(&mut w, "toupper", &[SimValue::Int(c)]).unwrap().as_int();
        let down = libc.call(&mut w, "tolower", &[SimValue::Int(c)]).unwrap().as_int();
        prop_assert_eq!(up as u8, (c as u8).to_ascii_uppercase());
        prop_assert_eq!(down as u8, (c as u8).to_ascii_lowercase());
    }
}

fn to_radix(mut n: u32, base: u32) -> String {
    if n == 0 {
        return "0".to_string();
    }
    let digits = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::new();
    while n > 0 {
        out.push(digits[(n % base) as usize]);
        n /= base;
    }
    out.reverse();
    String::from_utf8(out).unwrap()
}
