//! `ctype.h`: classification via the classic `__ctype_b` lookup table.
//!
//! The real glibc implements `isalpha(c)` as an unchecked index into a
//! table sized for `c ∈ [-128, 255]`. Passing a wild `int` (as Ballista
//! does) indexes far outside the table — historically a real crash
//! vector. The simulated table lives in its own pair of pages with
//! unmapped neighbors, so wild indices genuinely fault.

use healers_simproc::{Addr, Protection, SimFault, SimValue, PAGE_SIZE};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, World};

/// Classification bits stored per table entry.
const CT_UPPER: u8 = 0x01;
const CT_LOWER: u8 = 0x02;
const CT_DIGIT: u8 = 0x04;
const CT_SPACE: u8 = 0x08;
const CT_PUNCT: u8 = 0x10;
const CT_PRINT: u8 = 0x20;

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("isalpha", |w, a| classify(w, a, CT_UPPER | CT_LOWER)),
        ("isdigit", |w, a| classify(w, a, CT_DIGIT)),
        ("isalnum", |w, a| {
            classify(w, a, CT_UPPER | CT_LOWER | CT_DIGIT)
        }),
        ("isspace", |w, a| classify(w, a, CT_SPACE)),
        ("isupper", |w, a| classify(w, a, CT_UPPER)),
        ("islower", |w, a| classify(w, a, CT_LOWER)),
        ("ispunct", |w, a| classify(w, a, CT_PUNCT)),
        ("isprint", |w, a| classify(w, a, CT_PRINT)),
        ("toupper", toupper),
        ("tolower", tolower),
    ]
}

/// The classification table occupies one dedicated page; index 0 of the
/// table corresponds to `c = -128` at offset 1024 so the page boundaries
/// surround it relatively tightly.
const TABLE_PAGE: Addr = 0x0a00_0000;
const TABLE_BIAS: u32 = 1024;

fn table_base(w: &mut World) -> Addr {
    if !w.proc.mem.is_mapped(TABLE_PAGE) {
        w.proc.mem.map(TABLE_PAGE, PAGE_SIZE, Protection::ReadWrite);
        for c in -128i32..=255 {
            let byte = (c & 0xff) as u8;
            let mut bits = 0u8;
            if byte.is_ascii_uppercase() {
                bits |= CT_UPPER;
            }
            if byte.is_ascii_lowercase() {
                bits |= CT_LOWER;
            }
            if byte.is_ascii_digit() {
                bits |= CT_DIGIT;
            }
            if byte.is_ascii_whitespace() {
                bits |= CT_SPACE;
            }
            if byte.is_ascii_punctuation() {
                bits |= CT_PUNCT;
            }
            if (0x20..0x7f).contains(&byte) {
                bits |= CT_PRINT;
            }
            let off = (TABLE_BIAS as i64 + i64::from(c)) as u32;
            w.proc
                .mem
                .write_u8(TABLE_PAGE + off, bits)
                .expect("ctype table init");
        }
        w.proc
            .mem
            .protect(TABLE_PAGE, PAGE_SIZE, Protection::ReadOnly);
    }
    TABLE_PAGE + TABLE_BIAS
}

/// The unchecked table lookup shared by all `is*` functions. A wild `c`
/// computes an address outside the table page and faults.
fn lookup(w: &mut World, c: i64) -> Result<u8, SimFault> {
    let base = table_base(w);
    let addr = (i64::from(base) + c) as u32;
    w.proc.mem.read_u8(addr)
}

fn classify(w: &mut World, args: &[SimValue], mask: u8) -> Result<SimValue, SimFault> {
    let c = int_arg(args, 0);
    let bits = lookup(w, c)?;
    Ok(SimValue::Int(i64::from(bits & mask != 0)))
}

fn toupper(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let c = int_arg(args, 0);
    let bits = lookup(w, c)?;
    if bits & CT_LOWER != 0 {
        Ok(SimValue::Int(c - 32))
    } else {
        Ok(SimValue::Int(c))
    }
}

fn tolower(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let c = int_arg(args, 0);
    let bits = lookup(w, c)?;
    if bits & CT_UPPER != 0 {
        Ok(SimValue::Int(c + 32))
    } else {
        Ok(SimValue::Int(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    #[test]
    fn classification_basics() {
        let (libc, mut w) = setup();
        let cases = [
            ("isalpha", b'a' as i64, 1),
            ("isalpha", b'7' as i64, 0),
            ("isdigit", b'7' as i64, 1),
            ("isspace", b' ' as i64, 1),
            ("isupper", b'Q' as i64, 1),
            ("islower", b'Q' as i64, 0),
            ("ispunct", b'!' as i64, 1),
            ("isprint", 0x07, 0),
            ("isalnum", b'z' as i64, 1),
        ];
        for (f, c, expect) in cases {
            let r = libc.call(&mut w, f, &[SimValue::Int(c)]).unwrap();
            assert_eq!(r, SimValue::Int(expect), "{f}({c})");
        }
    }

    #[test]
    fn case_conversion() {
        let (libc, mut w) = setup();
        assert_eq!(
            libc.call(&mut w, "toupper", &[SimValue::Int(i64::from(b'a'))])
                .unwrap(),
            SimValue::Int(i64::from(b'A'))
        );
        assert_eq!(
            libc.call(&mut w, "tolower", &[SimValue::Int(i64::from(b'A'))])
                .unwrap(),
            SimValue::Int(i64::from(b'a'))
        );
        assert_eq!(
            libc.call(&mut w, "toupper", &[SimValue::Int(i64::from(b'5'))])
                .unwrap(),
            SimValue::Int(i64::from(b'5'))
        );
    }

    #[test]
    fn eof_is_in_range() {
        // isalpha(EOF) must be legal per ISO C.
        let (libc, mut w) = setup();
        let r = libc.call(&mut w, "isalpha", &[SimValue::Int(-1)]).unwrap();
        assert_eq!(r, SimValue::Int(0));
    }

    #[test]
    fn wild_int_crashes_like_the_real_table() {
        let (libc, mut w) = setup();
        for c in [100_000i64, -100_000, i64::from(i32::MAX)] {
            let err = libc
                .call(&mut w, "isalpha", &[SimValue::Int(c)])
                .unwrap_err();
            assert!(err.segv_addr().is_some(), "isalpha({c}) should fault");
        }
    }
}
