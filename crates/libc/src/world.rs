//! The combined machine image: process memory + kernel + libc-internal
//! state.

use std::collections::BTreeMap;

use healers_os::Kernel;
use healers_simproc::{Addr, CowStats, SimFault, SimProcess, SimValue, WorldSnapshot};

use crate::file;

/// The complete state a simulated program runs against. Cloning a `World`
/// snapshots everything — process memory, heap metadata, kernel state —
/// which is how calls are sandboxed for fault containment. The copy is
/// copy-on-write throughout ([`WorldSnapshot`]): page frames, the page
/// table, the heap block table, and filesystem contents are all
/// reference-shared until one image writes.
#[derive(Debug, Clone)]
pub struct World {
    /// The process image (memory, heap, errno, fuel).
    pub proc: SimProcess,
    /// The kernel (filesystem, descriptors, terminals, clock).
    pub kernel: Kernel,
    /// Environment variables (canonical store; string images are
    /// materialized into static memory on demand by `getenv`).
    pub env: BTreeMap<String, String>,
    /// `rand`/`srand` LCG state.
    pub rand_state: u64,
    /// Counter for `tmpfile`/`tmpnam` names.
    pub tmp_counter: u32,
    /// Address of the `stdin` FILE object.
    pub stdin_file: Addr,
    /// Address of the `stdout` FILE object.
    pub stdout_file: Addr,
    /// Address of the `stderr` FILE object.
    pub stderr_file: Addr,
}

impl World {
    /// A fresh world: standard kernel layout, standard streams wired to
    /// the terminal, a small default environment.
    pub fn new() -> Self {
        let mut proc = SimProcess::new();
        // The stdio mode-string scratch buffer: an 8-byte internal buffer
        // placed at the very end of its own page, with the next page
        // unmapped. `fopen`/`freopen`/`fdopen` copy the caller's mode
        // string here without a bounds check — the glibc-2.2-era bug the
        // paper's fault injector discovers (mode strings longer than 7
        // characters overflow and fault).
        proc.mem.map(
            crate::stdio::MODE_SCRATCH_PAGE,
            healers_simproc::PAGE_SIZE,
            healers_simproc::Protection::ReadWrite,
        );
        let kernel = Kernel::with_standard_layout();
        let stdin_file = file::create_file_object(&mut proc, 0, file::F_READ);
        let stdout_file = file::create_file_object(&mut proc, 1, file::F_WRITE);
        let stderr_file = file::create_file_object(&mut proc, 2, file::F_WRITE);
        let mut env = BTreeMap::new();
        env.insert("HOME".to_string(), "/home/user".to_string());
        env.insert("PATH".to_string(), "/bin:/usr/bin".to_string());
        env.insert("TZ".to_string(), "UTC".to_string());
        World {
            proc,
            kernel,
            env,
            rand_state: 1,
            tmp_counter: 0,
            stdin_file,
            stdout_file,
            stderr_file,
        }
    }

    /// A fresh world with the heap in guarded (electric-fence) mode, as
    /// used by the fault injector.
    pub fn new_guarded() -> Self {
        let mut w = World::new();
        w.proc.heap.set_mode(healers_simproc::HeapMode::Guarded);
        w
    }

    /// Allocate a NUL-terminated string on the heap and return its
    /// address.
    ///
    /// # Panics
    ///
    /// Panics on heap exhaustion (a harness configuration error).
    pub fn alloc_cstr(&mut self, s: &str) -> Addr {
        let bytes = s.as_bytes();
        let addr = self
            .proc
            .heap_alloc(bytes.len() as u32 + 1)
            .expect("harness out of simulated memory");
        self.proc
            .write_cstr(addr, bytes)
            .expect("fresh allocation must be writable");
        addr
    }

    /// Allocate a raw buffer on the heap.
    ///
    /// # Panics
    ///
    /// Panics on heap exhaustion (a harness configuration error).
    pub fn alloc_buf(&mut self, len: u32) -> Addr {
        self.proc
            .heap_alloc(len)
            .expect("harness out of simulated memory")
    }

    /// Read a NUL-terminated string at `addr` as UTF-8 (lossy).
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    pub fn read_cstr_lossy(&mut self, addr: Addr) -> Result<String, SimFault> {
        let bytes = self.proc.read_cstr(addr)?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Set `errno` and return an error value — the standard C error
    /// convention (`errno = e; return v;`).
    pub fn fail(&mut self, e: i32, v: SimValue) -> Result<SimValue, SimFault> {
        self.proc.set_errno(e);
        Ok(v)
    }
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

impl WorldSnapshot for World {
    fn snapshot(&self) -> Self {
        let mut child = self.clone();
        child.proc = self.proc.snapshot();
        child
    }

    fn deep_clone(&self) -> Self {
        let mut child = self.clone();
        child.proc = self.proc.deep_clone();
        child.kernel = self.kernel.deep_clone();
        child
    }

    fn cow_stats(&self) -> CowStats {
        self.proc.cow_stats()
    }
}

/// Fetch argument `i` as a pointer (C's weakly-typed call boundary:
/// integers coerce).
pub fn ptr_arg(args: &[SimValue], i: usize) -> Addr {
    args.get(i).copied().unwrap_or(SimValue::Void).as_ptr()
}

/// Fetch argument `i` as an integer.
pub fn int_arg(args: &[SimValue], i: usize) -> i64 {
    args.get(i).copied().unwrap_or(SimValue::Void).as_int()
}

/// Fetch argument `i` as a double.
pub fn dbl_arg(args: &[SimValue], i: usize) -> f64 {
    args.get(i).copied().unwrap_or(SimValue::Void).as_double()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_world_has_standard_streams() {
        let mut w = World::new();
        assert_ne!(w.stdin_file, 0);
        let (fin, fout, ferr) = (w.stdin_file, w.stdout_file, w.stderr_file);
        assert_eq!(file::read_fileno(&mut w, fin).unwrap(), 0);
        assert_eq!(file::read_fileno(&mut w, fout).unwrap(), 1);
        assert_eq!(file::read_fileno(&mut w, ferr).unwrap(), 2);
    }

    #[test]
    fn alloc_cstr_roundtrip() {
        let mut w = World::new();
        let a = w.alloc_cstr("robust");
        assert_eq!(w.read_cstr_lossy(a).unwrap(), "robust");
    }

    #[test]
    fn world_clone_isolates_env() {
        let mut w = World::new();
        let mut w2 = w.clone();
        w2.env.insert("X".into(), "1".into());
        assert!(!w.env.contains_key("X"));
        w.env.insert("Y".into(), "2".into());
        assert!(!w2.env.contains_key("Y"));
    }

    #[test]
    fn arg_helpers_tolerate_missing_args() {
        assert_eq!(ptr_arg(&[], 0), 0);
        assert_eq!(int_arg(&[SimValue::Int(9)], 0), 9);
        assert_eq!(int_arg(&[SimValue::Int(9)], 5), 0);
        assert_eq!(dbl_arg(&[SimValue::Double(1.5)], 0), 1.5);
    }
}
