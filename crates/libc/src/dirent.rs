//! `dirent.h`: directory streams.
//!
//! `DIR` is the paper's example of a data structure that **cannot** be
//! validated statelessly: "POSIX does not define any function to verify
//! that a pointer points to a valid directory structure" (§5.2). The
//! wrapper must therefore track directory pointers in an internal table —
//! the manual/semi-automatic step of §6. Here, `closedir` on a garbage
//! pointer genuinely frees garbage and aborts, and `readdir` on a
//! corrupted `DIR` chases a garbage buffer pointer.

use healers_os::OpenFlags;
use healers_simproc::{SimFault, SimValue};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, ptr_arg, World};

/// Size of the `DIR` structure.
pub const DIR_SIZE: u32 = 32;
/// Size of `struct dirent` (`d_ino` + `d_off` + `d_reclen` + `d_type` +
/// `d_name[256]`, padded).
pub const DIRENT_SIZE: u32 = 268;

/// Byte offset of the descriptor field inside `DIR`.
pub const OFF_FD: u32 = 0;
/// Byte offset of the position field inside `DIR`.
pub const OFF_LOC: u32 = 4;
/// Byte offset of the dirent-buffer pointer inside `DIR`.
pub const OFF_BUF: u32 = 12;

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("opendir", opendir),
        ("readdir", readdir),
        ("closedir", closedir),
        ("rewinddir", rewinddir),
        ("seekdir", seekdir),
        ("telldir", telldir),
    ]
}

fn opendir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let name = w.read_cstr_lossy(path)?;
    let node = match w.kernel.vfs.resolve(&name) {
        Ok(n) => n,
        Err(e) => return w.fail(e, SimValue::NULL),
    };
    if w.kernel.vfs.kind(node) != healers_os::NodeKind::Directory {
        return w.fail(healers_os::errno::ENOTDIR, SimValue::NULL);
    }
    let fd = match w.kernel.open(&name, OpenFlags::read_only(), 0) {
        Ok(fd) => fd,
        Err(e) => return w.fail(e, SimValue::NULL),
    };
    let (Ok(dirp), Ok(buf)) = (w.proc.heap_alloc(DIR_SIZE), w.proc.heap_alloc(DIRENT_SIZE)) else {
        let _ = w.kernel.close(fd);
        return w.fail(healers_os::errno::ENOMEM, SimValue::NULL);
    };
    w.proc.mem.write_i32(dirp + OFF_FD, fd)?;
    w.proc.mem.write_i32(dirp + OFF_LOC, 0)?;
    w.proc.mem.write_u32(dirp + 8, DIRENT_SIZE)?;
    w.proc.mem.write_u32(dirp + OFF_BUF, buf)?;
    Ok(SimValue::Ptr(dirp))
}

fn readdir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let dirp = ptr_arg(args, 0);
    let fd = w.proc.mem.read_i32(dirp + OFF_FD)?;
    let loc = w.proc.mem.read_i32(dirp + OFF_LOC)?;
    let entry = match w.kernel.read_dir_entry(fd, loc.max(0) as u32) {
        Ok(Some(e)) => e,
        Ok(None) => return Ok(SimValue::NULL),
        Err(e) => return w.fail(e, SimValue::NULL),
    };
    // Chase the (possibly corrupted) buffer pointer and marshal the
    // dirent into it — a garbage DIR* crashes right here.
    let buf = w.proc.mem.read_u32(dirp + OFF_BUF)?;
    w.proc.mem.write_u32(buf, entry.ino)?;
    w.proc.mem.write_i32(buf + 4, loc + 1)?;
    w.proc.mem.write_u16(buf + 8, DIRENT_SIZE as u16)?;
    w.proc.mem.write_u8(buf + 10, entry.d_type)?;
    let name_bytes: Vec<u8> = entry.name.bytes().take(255).collect();
    w.proc.mem.write_bytes(buf + 11, &name_bytes)?;
    w.proc.mem.write_u8(buf + 11 + name_bytes.len() as u32, 0)?;
    w.proc.mem.write_i32(dirp + OFF_LOC, loc + 1)?;
    Ok(SimValue::Ptr(buf))
}

fn closedir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let dirp = ptr_arg(args, 0);
    let fd = w.proc.mem.read_i32(dirp + OFF_FD)?;
    let buf = w.proc.mem.read_u32(dirp + OFF_BUF)?;
    let close_result = w.kernel.close(fd);
    // Free the dirent buffer and the DIR itself. On a garbage or
    // already-closed DIR these frees hit the allocator's consistency
    // checks and abort — the crash §6 could not eliminate automatically.
    for ptr in [buf, dirp] {
        if ptr != 0 {
            if let Err(e) = w.proc.heap_free(ptr) {
                return Err(SimFault::Abort {
                    reason: e.to_string(),
                });
            }
        }
    }
    match close_result {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn rewinddir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let dirp = ptr_arg(args, 0);
    w.proc.mem.write_i32(dirp + OFF_LOC, 0)?;
    Ok(SimValue::Void)
}

fn seekdir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let dirp = ptr_arg(args, 0);
    let pos = int_arg(args, 1) as i32;
    w.proc.mem.write_i32(dirp + OFF_LOC, pos)?;
    Ok(SimValue::Void)
}

fn telldir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let dirp = ptr_arg(args, 0);
    let loc = w.proc.mem.read_i32(dirp + OFF_LOC)?;
    Ok(SimValue::Int(i64::from(loc)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;
    use healers_os::errno::EBADF;
    use healers_simproc::INVALID_PTR;

    fn setup() -> (Libc, World) {
        let libc = Libc::standard();
        let mut w = World::new();
        w.kernel.write_file("/tmp/f1", b"1").unwrap();
        w.kernel.write_file("/tmp/f2", b"2").unwrap();
        (libc, w)
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    #[test]
    fn opendir_readdir_closedir_cycle() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/tmp");
        let dirp = libc.call(&mut w, "opendir", &[p(path)]).unwrap();
        assert_ne!(dirp, SimValue::NULL);

        let e1 = libc.call(&mut w, "readdir", &[dirp]).unwrap();
        let name1 = w.read_cstr_lossy(e1.as_ptr() + 11).unwrap();
        assert_eq!(name1, "f1");
        let e2 = libc.call(&mut w, "readdir", &[dirp]).unwrap();
        let name2 = w.read_cstr_lossy(e2.as_ptr() + 11).unwrap();
        assert_eq!(name2, "f2");
        let e3 = libc.call(&mut w, "readdir", &[dirp]).unwrap();
        assert_eq!(e3, SimValue::NULL);

        assert_eq!(
            libc.call(&mut w, "closedir", &[dirp]).unwrap(),
            SimValue::Int(0)
        );
    }

    #[test]
    fn telldir_seekdir_rewinddir() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/tmp");
        let dirp = libc.call(&mut w, "opendir", &[p(path)]).unwrap();
        libc.call(&mut w, "readdir", &[dirp]).unwrap();
        assert_eq!(
            libc.call(&mut w, "telldir", &[dirp]).unwrap(),
            SimValue::Int(1)
        );
        libc.call(&mut w, "rewinddir", &[dirp]).unwrap();
        assert_eq!(
            libc.call(&mut w, "telldir", &[dirp]).unwrap(),
            SimValue::Int(0)
        );
        libc.call(&mut w, "seekdir", &[dirp, SimValue::Int(1)])
            .unwrap();
        let e = libc.call(&mut w, "readdir", &[dirp]).unwrap();
        assert_eq!(w.read_cstr_lossy(e.as_ptr() + 11).unwrap(), "f2");
    }

    #[test]
    fn opendir_errors() {
        let (libc, mut w) = setup();
        let missing = w.alloc_cstr("/nonexistent");
        let r = libc.call(&mut w, "opendir", &[p(missing)]).unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), healers_os::errno::ENOENT);

        let file = w.alloc_cstr("/tmp/f1");
        let r = libc.call(&mut w, "opendir", &[p(file)]).unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), healers_os::errno::ENOTDIR);

        assert!(libc.call(&mut w, "opendir", &[SimValue::NULL]).is_err());
    }

    #[test]
    fn closedir_garbage_pointer_aborts() {
        // §5.2/§6: the closedir failure that stateless checking cannot
        // prevent — a readable heap block that was never a DIR.
        let (libc, mut w) = setup();
        let junk = w.alloc_buf(DIR_SIZE);
        w.proc.mem.write_i32(junk + OFF_FD, 1).unwrap();
        w.proc.mem.write_u32(junk + OFF_BUF, 0).unwrap();
        let interior = junk + 4; // not a block start → abort in free
        let _ = interior;
        // Write a garbage buf pointer that IS a valid heap range but not
        // a block start: freeing it aborts.
        w.proc.mem.write_u32(junk + OFF_BUF, junk + 8).unwrap();
        let err = libc.call(&mut w, "closedir", &[p(junk)]).unwrap_err();
        assert!(err.is_abort());
    }

    #[test]
    fn closedir_double_close_aborts() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/tmp");
        let dirp = libc.call(&mut w, "opendir", &[p(path)]).unwrap();
        libc.call(&mut w, "closedir", &[dirp]).unwrap();
        // The DIR's pages are revoked only in guarded mode; in packed
        // mode the memory stays readable, so the second closedir reaches
        // the allocator and aborts on the double free.
        let err = libc.call(&mut w, "closedir", &[dirp]).unwrap_err();
        assert!(err.is_abort() || err.segv_addr().is_some());
    }

    #[test]
    fn readdir_invalid_pointer_crashes() {
        let (libc, mut w) = setup();
        assert!(libc.call(&mut w, "readdir", &[p(INVALID_PTR)]).is_err());
        assert!(libc.call(&mut w, "readdir", &[SimValue::NULL]).is_err());
    }

    #[test]
    fn readdir_corrupted_buffer_pointer_crashes() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/tmp");
        let dirp = libc.call(&mut w, "opendir", &[p(path)]).unwrap();
        w.proc
            .mem
            .write_u32(dirp.as_ptr() + OFF_BUF, INVALID_PTR)
            .unwrap();
        let err = libc.call(&mut w, "readdir", &[dirp]).unwrap_err();
        assert_eq!(err.segv_addr(), Some(INVALID_PTR));
    }

    #[test]
    fn readdir_stale_fd_reports_ebadf() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/tmp");
        let dirp = libc.call(&mut w, "opendir", &[p(path)]).unwrap();
        let fd = w.proc.mem.read_i32(dirp.as_ptr() + OFF_FD).unwrap();
        w.kernel.close(fd).unwrap();
        let r = libc.call(&mut w, "readdir", &[dirp]).unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), EBADF);
    }
}
