//! `time.h`: calendar conversion on the 44-byte `struct tm`.
//!
//! `asctime` is the paper's running example (Figure 2): its robust
//! argument type is `R_ARRAY_NULL[44]` — a null pointer or a readable
//! block of at least 44 bytes. The implementations here read/write the
//! struct through simulated memory, so that property is discoverable by
//! the fault injector rather than asserted.

use healers_os::errno::EINVAL;
use healers_simproc::{Addr, SimFault, SimValue};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, ptr_arg, World};

/// Size of `struct tm` on the target (9 ints + `long` + `char *`).
pub const TM_SIZE: u32 = 44;

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("time", time_),
        ("stime", stime),
        ("asctime", asctime),
        ("ctime", ctime),
        ("gmtime", gmtime),
        ("localtime", gmtime), // the simulated TZ is always UTC
        ("mktime", mktime),
        ("strftime", strftime),
        ("difftime", difftime),
    ]
}

/// Broken-down time, mirroring `struct tm`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tm {
    /// Seconds `[0,60]`.
    pub sec: i32,
    /// Minutes `[0,59]`.
    pub min: i32,
    /// Hours `[0,23]`.
    pub hour: i32,
    /// Day of month `[1,31]`.
    pub mday: i32,
    /// Month `[0,11]`.
    pub mon: i32,
    /// Years since 1900.
    pub year: i32,
    /// Day of week `[0,6]` (Sunday = 0).
    pub wday: i32,
    /// Day of year `[0,365]`.
    pub yday: i32,
    /// Daylight-saving flag.
    pub isdst: i32,
}

/// Read a `struct tm` image from simulated memory. Reads the full 44
/// bytes, including the trailing `tm_gmtoff`/`tm_zone` fields — which is
/// why the robust size is 44, not 36.
///
/// # Errors
///
/// Faults if any of the 44 bytes is unreadable.
pub fn read_tm(w: &mut World, addr: Addr) -> Result<Tm, SimFault> {
    let bytes = w.proc.mem.read_bytes(addr, TM_SIZE)?;
    let f = |i: usize| i32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
    Ok(Tm {
        sec: f(0),
        min: f(1),
        hour: f(2),
        mday: f(3),
        mon: f(4),
        year: f(5),
        wday: f(6),
        yday: f(7),
        isdst: f(8),
    })
}

/// Write a `struct tm` image to simulated memory (all 44 bytes;
/// `tm_gmtoff` = 0 and `tm_zone` = a static "UTC" string).
///
/// # Errors
///
/// Faults if any byte is unwritable.
pub fn write_tm(w: &mut World, addr: Addr, tm: &Tm) -> Result<(), SimFault> {
    let zone = w.proc.named_static("tz_utc", 4);
    w.proc.write_cstr(zone, b"UTC")?;
    for (i, v) in [
        tm.sec, tm.min, tm.hour, tm.mday, tm.mon, tm.year, tm.wday, tm.yday, tm.isdst,
    ]
    .iter()
    .enumerate()
    {
        w.proc.mem.write_i32(addr + (i as u32) * 4, *v)?;
    }
    w.proc.mem.write_i32(addr + 36, 0)?; // tm_gmtoff
    w.proc.mem.write_u32(addr + 40, zone)?; // tm_zone
    Ok(())
}

const DAYS_PER_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Convert an epoch timestamp to broken-down UTC time.
pub fn civil_from_epoch(t: i64) -> Tm {
    let days = t.div_euclid(86400);
    let secs = t.rem_euclid(86400);
    let mut year = 1970;
    let mut remaining = days;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if remaining >= i64::from(len) {
            remaining -= i64::from(len);
            year += 1;
        } else if remaining < 0 {
            year -= 1;
            remaining += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let yday = remaining as i32;
    let mut mon = 0;
    let mut mday = yday + 1;
    for (m, &len) in DAYS_PER_MONTH.iter().enumerate() {
        let len = len + i32::from(m == 1 && is_leap(year));
        if mday <= len {
            mon = m as i32;
            break;
        }
        mday -= len;
    }
    // Jan 1 1970 was a Thursday (wday 4).
    let wday = ((days + 4).rem_euclid(7)) as i32;
    Tm {
        sec: (secs % 60) as i32,
        min: ((secs / 60) % 60) as i32,
        hour: (secs / 3600) as i32,
        mday,
        mon,
        year: year - 1900,
        wday,
        yday,
        isdst: 0,
    }
}

/// Convert broken-down time to an epoch timestamp, normalizing
/// out-of-range fields the way `mktime` does.
pub fn epoch_from_civil(tm: &Tm) -> i64 {
    let year = i64::from(tm.year) + 1900;
    let mut days: i64 = 0;
    if year >= 1970 {
        for y in 1970..year {
            days += if is_leap(y as i32) { 366 } else { 365 };
        }
    } else {
        for y in year..1970 {
            days -= if is_leap(y as i32) { 366 } else { 365 };
        }
    }
    for m in 0..tm.mon.clamp(0, 11) {
        days += i64::from(DAYS_PER_MONTH[m as usize]) + i64::from(m == 1 && is_leap(year as i32));
    }
    days += i64::from(tm.mday) - 1;
    days * 86400 + i64::from(tm.hour) * 3600 + i64::from(tm.min) * 60 + i64::from(tm.sec)
}

const WDAY_NAMES: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
const MON_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn format_asctime(tm: &Tm) -> String {
    let wday = WDAY_NAMES.get(tm.wday as usize).copied().unwrap_or("???");
    let mon = MON_NAMES.get(tm.mon as usize).copied().unwrap_or("???");
    format!(
        "{} {} {:2} {:02}:{:02}:{:02} {}\n",
        wday,
        mon,
        tm.mday,
        tm.hour,
        tm.min,
        tm.sec,
        i64::from(tm.year) + 1900
    )
}

fn time_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let t = w.kernel.now();
    let out = ptr_arg(args, 0);
    if out != 0 {
        // Writing through a non-null invalid pointer faults — authentic.
        w.proc.mem.write_i32(out, t as i32)?;
    }
    Ok(SimValue::Int(t))
}

fn stime(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let when = ptr_arg(args, 0);
    // Dereferences unconditionally: stime(NULL) crashes.
    let t = w.proc.mem.read_i32(when)?;
    let delta = i64::from(t) - w.kernel.now();
    w.kernel.advance_clock(delta);
    Ok(SimValue::Int(0))
}

fn asctime(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let tp = ptr_arg(args, 0);
    if tp == 0 {
        // The glibc-2.2 behavior the paper's injector discovered: NULL is
        // tolerated (returns NULL, errno EINVAL) — hence the NULL branch
        // of R_ARRAY_NULL[44].
        return w.fail(EINVAL, SimValue::NULL);
    }
    let tm = read_tm(w, tp)?;
    let text = format_asctime(&tm);
    let buf = w.proc.named_static("asctime_buf", 40);
    w.proc.write_cstr(buf, text.as_bytes())?;
    Ok(SimValue::Ptr(buf))
}

fn ctime(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let tp = ptr_arg(args, 0);
    // Unlike asctime, ctime dereferences its argument unconditionally.
    let t = w.proc.mem.read_i32(tp)?;
    let tm = civil_from_epoch(i64::from(t));
    let text = format_asctime(&tm);
    let buf = w.proc.named_static("asctime_buf", 40);
    w.proc.write_cstr(buf, text.as_bytes())?;
    Ok(SimValue::Ptr(buf))
}

fn gmtime(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let tp = ptr_arg(args, 0);
    let t = w.proc.mem.read_i32(tp)?;
    let tm = civil_from_epoch(i64::from(t));
    let buf = w.proc.named_static("gmtime_buf", TM_SIZE);
    write_tm(w, buf, &tm)?;
    Ok(SimValue::Ptr(buf))
}

fn mktime(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let tp = ptr_arg(args, 0);
    let tm = read_tm(w, tp)?;
    let t = epoch_from_civil(&tm);
    // mktime normalizes the struct in place — it needs write access, so
    // its robust type is RW_ARRAY[44], not R_ARRAY[44].
    let normalized = civil_from_epoch(t);
    write_tm(w, tp, &normalized)?;
    Ok(SimValue::Int(t))
}

fn strftime(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let maxsize = int_arg(args, 1) as u32;
    let fmt = ptr_arg(args, 2);
    let tp = ptr_arg(args, 3);
    let fmt_bytes = w.proc.read_cstr(fmt)?;
    let tm = read_tm(w, tp)?;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < fmt_bytes.len() {
        w.proc.tick(1)?;
        let c = fmt_bytes[i];
        if c != b'%' || i + 1 >= fmt_bytes.len() {
            out.push(c);
            i += 1;
            continue;
        }
        i += 1;
        let conv = fmt_bytes[i];
        i += 1;
        let piece = match conv {
            b'Y' => format!("{}", i64::from(tm.year) + 1900),
            b'y' => format!("{:02}", (tm.year % 100).abs()),
            b'm' => format!("{:02}", tm.mon + 1),
            b'd' => format!("{:02}", tm.mday),
            b'H' => format!("{:02}", tm.hour),
            b'M' => format!("{:02}", tm.min),
            b'S' => format!("{:02}", tm.sec),
            b'a' => WDAY_NAMES
                .get(tm.wday as usize)
                .copied()
                .unwrap_or("???")
                .to_string(),
            b'b' => MON_NAMES
                .get(tm.mon as usize)
                .copied()
                .unwrap_or("???")
                .to_string(),
            b'j' => format!("{:03}", tm.yday + 1),
            b'%' => "%".to_string(),
            other => format!("%{}", other as char),
        };
        out.extend_from_slice(piece.as_bytes());
    }
    if out.len() as u32 + 1 > maxsize {
        return Ok(SimValue::Int(0));
    }
    w.proc.mem.write_bytes(s, &out)?;
    w.proc.mem.write_u8(s + out.len() as u32, 0)?;
    Ok(SimValue::Int(out.len() as i64))
}

fn difftime(_w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let t1 = int_arg(args, 0);
    let t0 = int_arg(args, 1);
    Ok(SimValue::Double((t1 - t0) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;
    use healers_simproc::INVALID_PTR;

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    #[test]
    fn civil_roundtrip() {
        for t in [
            0i64,
            86399,
            86400,
            1_000_000_000,
            951_782_400, /* 2000-02-29 */
        ] {
            let tm = civil_from_epoch(t);
            assert_eq!(epoch_from_civil(&tm), t, "roundtrip {t}");
        }
    }

    #[test]
    fn epoch_zero_is_jan_1_1970_thursday() {
        let tm = civil_from_epoch(0);
        assert_eq!((tm.year, tm.mon, tm.mday), (70, 0, 1));
        assert_eq!(tm.wday, 4);
        assert_eq!(tm.yday, 0);
    }

    #[test]
    fn leap_year_handling() {
        // 2000-02-29 12:00:00 UTC
        let tm = civil_from_epoch(951_825_600);
        assert_eq!(
            (tm.year + 1900, tm.mon, tm.mday, tm.hour),
            (2000, 1, 29, 12)
        );
    }

    #[test]
    fn asctime_reads_exactly_44_bytes() {
        let (libc, mut w) = setup();
        // A guarded 44-byte block: asctime succeeds.
        let mut wg = World::new_guarded();
        let buf = wg.alloc_buf(44);
        write_tm(&mut wg, buf, &civil_from_epoch(0)).unwrap();
        let r = libc.call(&mut wg, "asctime", &[p(buf)]).unwrap();
        let text = wg.read_cstr_lossy(r.as_ptr()).unwrap();
        assert_eq!(text, "Thu Jan  1 00:00:00 1970\n");

        // A guarded 43-byte block: the read of byte 43 faults.
        let short = wg.alloc_buf(43);
        let err = libc.call(&mut wg, "asctime", &[p(short)]).unwrap_err();
        assert_eq!(err.segv_addr(), Some(short + 43));
        let _ = &mut w;
    }

    #[test]
    fn asctime_null_returns_null_with_einval() {
        let (libc, mut w) = setup();
        w.proc.set_errno(0);
        let r = libc.call(&mut w, "asctime", &[SimValue::NULL]).unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn ctime_dereferences_null() {
        let (libc, mut w) = setup();
        assert!(libc.call(&mut w, "ctime", &[SimValue::NULL]).is_err());
        let t = w.alloc_buf(4);
        w.proc.mem.write_i32(t, 0).unwrap();
        let r = libc.call(&mut w, "ctime", &[p(t)]).unwrap();
        assert!(w
            .read_cstr_lossy(r.as_ptr())
            .unwrap()
            .starts_with("Thu Jan  1"));
    }

    #[test]
    fn gmtime_writes_static_tm() {
        let (libc, mut w) = setup();
        let t = w.alloc_buf(4);
        w.proc.mem.write_i32(t, 86400 + 3600).unwrap();
        let r = libc.call(&mut w, "gmtime", &[p(t)]).unwrap();
        let tm = read_tm(&mut w, r.as_ptr()).unwrap();
        assert_eq!((tm.mday, tm.hour), (2, 1));
    }

    #[test]
    fn mktime_normalizes_in_place() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(44);
        // 25 hours on Jan 1 1970 normalizes to Jan 2, 01:00.
        let tm = Tm {
            hour: 25,
            mday: 1,
            mon: 0,
            year: 70,
            ..Default::default()
        };
        write_tm(&mut w, buf, &tm).unwrap();
        let r = libc.call(&mut w, "mktime", &[p(buf)]).unwrap();
        assert_eq!(r, SimValue::Int(25 * 3600));
        let back = read_tm(&mut w, buf).unwrap();
        assert_eq!((back.mday, back.hour), (2, 1));
    }

    #[test]
    fn mktime_needs_write_access() {
        let libc = Libc::standard();
        let mut w = World::new();
        // A read-only tm: the normalize-write faults.
        let ro = w
            .proc
            .heap
            .alloc_with_prot(&mut w.proc.mem, 44, healers_simproc::Protection::ReadOnly)
            .unwrap();
        let err = libc.call(&mut w, "mktime", &[p(ro)]).unwrap_err();
        assert!(err.segv_addr().is_some());
    }

    #[test]
    fn time_writes_optional_out_param() {
        let (libc, mut w) = setup();
        let r = libc.call(&mut w, "time", &[SimValue::NULL]).unwrap();
        assert!(r.as_int() > 0);
        let out = w.alloc_buf(4);
        let r2 = libc.call(&mut w, "time", &[p(out)]).unwrap();
        assert_eq!(i64::from(w.proc.mem.read_i32(out).unwrap()), r2.as_int());
        assert!(libc.call(&mut w, "time", &[p(INVALID_PTR)]).is_err());
    }

    #[test]
    fn stime_sets_clock() {
        let (libc, mut w) = setup();
        let t = w.alloc_buf(4);
        w.proc.mem.write_i32(t, 1_234_567_890).unwrap();
        libc.call(&mut w, "stime", &[p(t)]).unwrap();
        assert_eq!(w.kernel.now(), 1_234_567_890);
        assert!(libc.call(&mut w, "stime", &[SimValue::NULL]).is_err());
    }

    #[test]
    fn strftime_formats() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(64);
        let fmt = w.alloc_cstr("%Y-%m-%d %H:%M:%S (%a)");
        let tmb = w.alloc_buf(44);
        write_tm(&mut w, tmb, &civil_from_epoch(0)).unwrap();
        let r = libc
            .call(
                &mut w,
                "strftime",
                &[p(buf), SimValue::Int(64), p(fmt), p(tmb)],
            )
            .unwrap();
        assert_eq!(w.read_cstr_lossy(buf).unwrap(), "1970-01-01 00:00:00 (Thu)");
        assert_eq!(r.as_int() as usize, "1970-01-01 00:00:00 (Thu)".len());
        // Too-small max returns 0.
        let r = libc
            .call(
                &mut w,
                "strftime",
                &[p(buf), SimValue::Int(4), p(fmt), p(tmb)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
    }

    #[test]
    fn difftime_is_pure() {
        let (libc, mut w) = setup();
        let r = libc
            .call(&mut w, "difftime", &[SimValue::Int(100), SimValue::Int(58)])
            .unwrap();
        assert_eq!(r, SimValue::Double(42.0));
    }
}
