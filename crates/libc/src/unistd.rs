//! `unistd.h` / `fcntl.h` / `sys/stat.h`: the thin syscall wrappers.
//!
//! Most of these are among the paper's nine never-crashing functions:
//! they take only scalar arguments and the kernel validates descriptors,
//! so the worst case is `EBADF`. The pointer-taking ones (`read`,
//! `write`, `stat`, `getcwd`, `pipe`, path functions) crash exactly where
//! their real counterparts do.

use healers_os::errno::{ENOMEM, ERANGE};
use healers_os::OpenFlags;
use healers_simproc::{SimFault, SimValue};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, ptr_arg, World};

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("open", open_),
        ("creat", creat),
        ("read", read_),
        ("write", write_),
        ("close", close_),
        ("lseek", lseek),
        ("dup", dup),
        ("dup2", dup2),
        ("pipe", pipe_),
        ("isatty", isatty),
        ("access", access),
        ("chdir", chdir),
        ("getcwd", getcwd),
        ("unlink", unlink),
        ("rmdir", rmdir),
        ("mkdir", mkdir),
        ("stat", stat_),
        ("fstat", fstat_),
        ("umask", umask),
        ("sleep", sleep_),
        ("getpid", getpid),
    ]
}

// O_* flag bits (Linux i386 numbering).
const O_WRONLY: i64 = 0o1;
const O_RDWR: i64 = 0o2;
const O_CREAT: i64 = 0o100;
const O_TRUNC: i64 = 0o1000;
const O_APPEND: i64 = 0o2000;

fn decode_oflags(oflag: i64) -> OpenFlags {
    let acc = oflag & 0o3;
    OpenFlags {
        read: acc == 0 || acc == O_RDWR,
        write: acc == O_WRONLY || acc == O_RDWR,
        append: oflag & O_APPEND != 0,
        create: oflag & O_CREAT != 0,
        truncate: oflag & O_TRUNC != 0,
    }
}

fn open_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let oflag = int_arg(args, 1);
    let mode = int_arg(args, 2) as u32;
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.open(&name, decode_oflags(oflag), mode) {
        Ok(fd) => Ok(SimValue::Int(i64::from(fd))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn creat(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let mode = int_arg(args, 1) as u32;
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.open(&name, OpenFlags::write_create(), mode) {
        Ok(fd) => Ok(SimValue::Int(i64::from(fd))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn read_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let buf = ptr_arg(args, 1);
    let count = int_arg(args, 2) as u32;
    match w.kernel.read(fd, count) {
        Ok(bytes) => {
            w.proc.tick(bytes.len() as u64)?;
            // Partial writes before a fault persist — authentic.
            w.proc.mem.write_bytes(buf, &bytes)?;
            Ok(SimValue::Int(bytes.len() as i64))
        }
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn write_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let buf = ptr_arg(args, 1);
    let count = int_arg(args, 2) as u32;
    w.proc.tick(u64::from(count))?;
    let bytes = w.proc.mem.read_bytes(buf, count)?;
    match w.kernel.write(fd, &bytes) {
        Ok(n) => Ok(SimValue::Int(i64::from(n))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn close_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    match w.kernel.close(fd) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn lseek(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let off = int_arg(args, 1);
    let whence = int_arg(args, 2) as i32;
    match w.kernel.lseek(fd, off, whence) {
        Ok(pos) => Ok(SimValue::Int(i64::from(pos))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn dup(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    match w.kernel.dup(fd) {
        Ok(n) => Ok(SimValue::Int(i64::from(n))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn dup2(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let newfd = int_arg(args, 1) as i32;
    match w.kernel.dup2(fd, newfd) {
        Ok(n) => Ok(SimValue::Int(i64::from(n))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn pipe_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let out = ptr_arg(args, 0);
    match w.kernel.pipe() {
        Ok((r, wr)) => {
            w.proc.mem.write_i32(out, r)?;
            w.proc.mem.write_i32(out + 4, wr)?;
            Ok(SimValue::Int(0))
        }
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn isatty(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    match w.kernel.isatty(fd) {
        Ok(()) => Ok(SimValue::Int(1)),
        Err(e) => w.fail(e, SimValue::Int(0)),
    }
}

fn access(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let mode = int_arg(args, 1) as i32;
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.access(&name, mode) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn chdir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.vfs.chdir(&name) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn getcwd(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let buf = ptr_arg(args, 0);
    let size = int_arg(args, 1) as u32;
    let cwd = w.kernel.vfs.cwd_path();
    if buf == 0 {
        // The glibc extension: allocate a buffer.
        match w.proc.heap_alloc(cwd.len() as u32 + 1) {
            Ok(p) => {
                w.proc.write_cstr(p, cwd.as_bytes())?;
                Ok(SimValue::Ptr(p))
            }
            Err(_) => w.fail(ENOMEM, SimValue::NULL),
        }
    } else {
        if (cwd.len() as u32) + 1 > size {
            return w.fail(ERANGE, SimValue::NULL);
        }
        // Size is checked, pointer validity is not: bad pointers fault.
        w.proc.write_cstr(buf, cwd.as_bytes())?;
        Ok(SimValue::Ptr(buf))
    }
}

fn unlink(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.vfs.unlink(&name) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn rmdir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.vfs.rmdir(&name) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn mkdir(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let mode = int_arg(args, 1) as u32;
    let name = w.read_cstr_lossy(path)?;
    let now = w.kernel.now();
    match w.kernel.vfs.mkdir(&name, mode, now) {
        Ok(_) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

/// Marshal a [`healers_os::FileStat`] into a `struct stat` image.
fn write_stat(
    w: &mut World,
    addr: healers_simproc::Addr,
    st: &healers_os::FileStat,
) -> Result<(), SimFault> {
    w.proc.mem.write_u32(addr, 1)?; // st_dev
    w.proc.mem.write_u32(addr + 4, st.ino)?;
    w.proc.mem.write_u32(addr + 8, st.mode)?;
    w.proc.mem.write_u32(addr + 12, st.nlink)?;
    w.proc.mem.write_u32(addr + 16, 1000)?; // st_uid
    w.proc.mem.write_u32(addr + 20, 1000)?; // st_gid
    w.proc.mem.write_i32(addr + 24, st.size as i32)?;
    for off in [28u32, 32, 36] {
        w.proc.mem.write_i32(addr + off, st.mtime as i32)?;
    }
    // Remaining bytes up to 88 are padding; touch the last byte so the
    // full struct must be writable, like a real 88-byte store.
    w.proc.mem.write_u8(addr + 87, 0)?;
    Ok(())
}

fn stat_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let out = ptr_arg(args, 1);
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.stat(&name) {
        Ok(st) => {
            write_stat(w, out, &st)?;
            Ok(SimValue::Int(0))
        }
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn fstat_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let out = ptr_arg(args, 1);
    match w.kernel.fstat(fd) {
        Ok(st) => {
            write_stat(w, out, &st)?;
            Ok(SimValue::Int(0))
        }
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn umask(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let mask = int_arg(args, 0) as u32;
    Ok(SimValue::Int(i64::from(w.kernel.umask(mask))))
}

fn sleep_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let secs = int_arg(args, 0);
    // Advances the simulated clock instantly; never hangs the simulation.
    w.kernel.advance_clock(secs.clamp(0, i64::from(u32::MAX)));
    Ok(SimValue::Int(0))
}

fn getpid(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let _ = args;
    Ok(SimValue::Int(i64::from(w.kernel.getpid())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;
    use healers_simproc::INVALID_PTR;

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    #[test]
    fn open_read_write_close_syscalls() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/tmp/u");
        let fd = libc
            .call(
                &mut w,
                "open",
                &[
                    p(path),
                    SimValue::Int(O_WRONLY | O_CREAT | O_TRUNC),
                    SimValue::Int(0o644),
                ],
            )
            .unwrap();
        assert!(fd.as_int() >= 3);
        let data = w.alloc_cstr("bytes");
        let n = libc
            .call(&mut w, "write", &[fd, p(data), SimValue::Int(5)])
            .unwrap();
        assert_eq!(n, SimValue::Int(5));
        libc.call(&mut w, "close", &[fd]).unwrap();

        let fd = libc
            .call(
                &mut w,
                "open",
                &[p(path), SimValue::Int(0), SimValue::Int(0)],
            )
            .unwrap();
        let buf = w.alloc_buf(16);
        let n = libc
            .call(&mut w, "read", &[fd, p(buf), SimValue::Int(16)])
            .unwrap();
        assert_eq!(n, SimValue::Int(5));
        assert_eq!(w.proc.mem.read_bytes(buf, 5).unwrap(), b"bytes");
    }

    #[test]
    fn the_nine_robust_functions_never_crash_on_wild_scalars() {
        // close, dup, dup2, lseek, isatty, sleep, umask, abs, labs — the
        // simulated counterparts of the paper's 9 never-failing functions.
        let (libc, mut w) = setup();
        let wild = [
            SimValue::Int(i64::from(i32::MIN)),
            SimValue::Int(-1),
            SimValue::Int(0),
            SimValue::Int(77),
            SimValue::Int(i64::from(i32::MAX)),
        ];
        for &a in &wild {
            for &b in &wild {
                for name in ["close", "dup", "isatty", "umask", "abs", "labs", "sleep"] {
                    libc.call(&mut w, name, &[a]).unwrap_or_else(|e| {
                        panic!("{name}({a}) crashed: {e}");
                    });
                }
                for name in ["dup2", "lseek"] {
                    libc.call(&mut w, name, &[a, b, SimValue::Int(0)])
                        .unwrap_or_else(|e| panic!("{name}({a},{b}) crashed: {e}"));
                }
            }
        }
    }

    #[test]
    fn read_into_bad_buffer_crashes() {
        let (libc, mut w) = setup();
        w.kernel.type_input(0, b"input!");
        let err = libc
            .call(
                &mut w,
                "read",
                &[SimValue::Int(0), p(INVALID_PTR), SimValue::Int(6)],
            )
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(INVALID_PTR));
    }

    #[test]
    fn write_from_bad_buffer_crashes() {
        let (libc, mut w) = setup();
        let err = libc
            .call(
                &mut w,
                "write",
                &[SimValue::Int(1), SimValue::NULL, SimValue::Int(4)],
            )
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(0));
    }

    #[test]
    fn stat_writes_88_bytes() {
        let (libc, mut w) = setup();
        let path = w.alloc_cstr("/etc/passwd");
        let buf = w.alloc_buf(88);
        let r = libc.call(&mut w, "stat", &[p(path), p(buf)]).unwrap();
        assert_eq!(r, SimValue::Int(0));
        let mode = w.proc.mem.read_u32(buf + 8).unwrap();
        assert_ne!(mode & healers_os::fs::S_IFREG, 0);

        // An 87-byte guarded buffer is too small.
        let mut wg = World::new_guarded();
        let path = wg.alloc_cstr("/etc/passwd");
        let small = wg.alloc_buf(87);
        let err = libc
            .call(&mut wg, "stat", &[p(path), p(small)])
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(small + 87));
    }

    #[test]
    fn fstat_distinguishes_tty() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(88);
        libc.call(&mut w, "fstat", &[SimValue::Int(0), p(buf)])
            .unwrap();
        let mode = w.proc.mem.read_u32(buf + 8).unwrap();
        assert_ne!(mode & healers_os::fs::S_IFCHR, 0);
        let r = libc
            .call(&mut w, "fstat", &[SimValue::Int(55), p(buf)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
    }

    #[test]
    fn getcwd_variants() {
        let (libc, mut w) = setup();
        let home = w.alloc_cstr("/home/user");
        libc.call(&mut w, "chdir", &[p(home)]).unwrap();
        // NULL buffer: allocates.
        let r = libc
            .call(&mut w, "getcwd", &[SimValue::NULL, SimValue::Int(0)])
            .unwrap();
        assert_eq!(w.read_cstr_lossy(r.as_ptr()).unwrap(), "/home/user");
        // Too-small size: ERANGE.
        let buf = w.alloc_buf(4);
        let r = libc
            .call(&mut w, "getcwd", &[p(buf), SimValue::Int(4)])
            .unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), ERANGE);
        // Good size, bad pointer: crash.
        assert!(libc
            .call(&mut w, "getcwd", &[p(INVALID_PTR), SimValue::Int(64)])
            .is_err());
    }

    #[test]
    fn pipe_writes_fd_pair() {
        let (libc, mut w) = setup();
        let fds = w.alloc_buf(8);
        let r = libc.call(&mut w, "pipe", &[p(fds)]).unwrap();
        assert_eq!(r, SimValue::Int(0));
        let rfd = w.proc.mem.read_i32(fds).unwrap();
        let wfd = w.proc.mem.read_i32(fds + 4).unwrap();
        assert_ne!(rfd, wfd);
        assert!(libc.call(&mut w, "pipe", &[SimValue::NULL]).is_err());
    }

    #[test]
    fn mkdir_unlink_rmdir_access() {
        let (libc, mut w) = setup();
        let d = w.alloc_cstr("/tmp/newdir");
        assert_eq!(
            libc.call(&mut w, "mkdir", &[p(d), SimValue::Int(0o755)])
                .unwrap(),
            SimValue::Int(0)
        );
        assert_eq!(
            libc.call(&mut w, "access", &[p(d), SimValue::Int(0)])
                .unwrap(),
            SimValue::Int(0)
        );
        assert_eq!(
            libc.call(&mut w, "rmdir", &[p(d)]).unwrap(),
            SimValue::Int(0)
        );
        let r = libc
            .call(&mut w, "access", &[p(d), SimValue::Int(0)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
    }

    #[test]
    fn sleep_advances_clock_without_hanging() {
        let (libc, mut w) = setup();
        let t0 = w.kernel.now();
        libc.call(&mut w, "sleep", &[SimValue::Int(i64::from(i32::MAX))])
            .unwrap();
        assert!(w.kernel.now() >= t0 + i64::from(i32::MAX));
    }

    #[test]
    fn getpid_is_positive() {
        let (libc, mut w) = setup();
        assert!(libc.call(&mut w, "getpid", &[]).unwrap().as_int() > 0);
    }
}
