//! `FILE` object marshaling.
//!
//! A `FILE` is a 148-byte structure living in *simulated memory* (see the
//! layout registered in [`healers_ctypes::layout`]). Keeping the object in
//! simulated memory — rather than in Rust state — is essential to
//! faithfulness: a corrupted or garbage `FILE*` behaves exactly like on a
//! real machine (e.g. `fileno` returns whatever garbage integer happens to
//! be at offset 56), which is what both the fault injector and the
//! wrapper's `fileno`+`fstat` validity check exercise.

use healers_simproc::{Addr, SimFault, SimProcess};

use crate::world::World;

/// Size of the `FILE` structure in bytes.
pub const FILE_SIZE: u32 = 148;

/// Offset of the `_flags` word (contains [`F_MAGIC`] plus mode bits).
pub const OFF_FLAGS: u32 = 0;
/// Offset of the pushback pointer. Like real stdio's `_IO_read_ptr`
/// games, pushback is pointer-based: the slot holds the address of the
/// pushed-back byte (normally [`OFF_UNGETC_BYTE`] within the stream
/// itself), or 0 when empty. Reading the pushback *dereferences* the
/// slot — which is exactly why a garbage `FILE` object crashes `fgetc`
/// on a real machine.
pub const OFF_UNGETC: u32 = 16;
/// Offset of the one-byte pushback storage.
pub const OFF_UNGETC_BYTE: u32 = 20;
/// Offset of the end-of-file indicator.
pub const OFF_EOF: u32 = 24;
/// Offset of the error indicator.
pub const OFF_ERROR: u32 = 28;
/// Offset of the file descriptor.
pub const OFF_FILENO: u32 = 56;
/// Offset of the buffering-mode word (set by `setvbuf`).
pub const OFF_BUFMODE: u32 = 60;
/// Offset of the caller-supplied buffer pointer (set by `setbuf`).
pub const OFF_BUFPTR: u32 = 8;

/// Magic value glibc stores in `_flags` (`_IO_MAGIC`).
pub const F_MAGIC: u32 = 0xFBAD_0000;
/// Stream open for reading.
pub const F_READ: u32 = 0x1;
/// Stream open for writing.
pub const F_WRITE: u32 = 0x2;
/// Stream in append mode.
pub const F_APPEND: u32 = 0x4;

/// Create a `FILE` object in static memory (for the standard streams).
pub fn create_file_object(proc: &mut SimProcess, fd: i32, mode_bits: u32) -> Addr {
    let addr = proc.static_alloc(FILE_SIZE);
    init_file_object(proc, addr, fd, mode_bits).expect("static memory must be writable");
    addr
}

/// Initialize the fields of a `FILE` object at `addr`.
///
/// # Errors
///
/// Faults if `addr` is not writable for [`FILE_SIZE`] bytes — which is
/// exactly what happens when `freopen` is handed a bogus stream.
pub fn init_file_object(
    proc: &mut SimProcess,
    addr: Addr,
    fd: i32,
    mode_bits: u32,
) -> Result<(), SimFault> {
    proc.mem.write_u32(addr + OFF_FLAGS, F_MAGIC | mode_bits)?;
    proc.mem.write_u32(addr + OFF_UNGETC, 0)?;
    proc.mem.write_i32(addr + OFF_EOF, 0)?;
    proc.mem.write_i32(addr + OFF_ERROR, 0)?;
    proc.mem.write_i32(addr + OFF_FILENO, fd)?;
    proc.mem.write_u32(addr + OFF_BUFMODE, 0)?;
    proc.mem.write_u32(addr + OFF_BUFPTR, 0)?;
    Ok(())
}

/// Read the descriptor stored in a `FILE`. No validation — garbage in,
/// garbage out, as on a real machine.
///
/// # Errors
///
/// Faults if the field is unreadable.
pub fn read_fileno(world: &mut World, stream: Addr) -> Result<i32, SimFault> {
    world.proc.mem.read_i32(stream + OFF_FILENO)
}

/// Read the `_flags` word.
///
/// # Errors
///
/// Faults if the field is unreadable.
pub fn read_flags(world: &mut World, stream: Addr) -> Result<u32, SimFault> {
    world.proc.mem.read_u32(stream + OFF_FLAGS)
}

/// Whether the `_flags` word carries the stream magic (used only by
/// diagnostic tooling; the simulated library itself never checks).
pub fn has_magic(flags: u32) -> bool {
    flags & 0xFFFF_0000 == F_MAGIC
}

/// Set the end-of-file indicator.
///
/// # Errors
///
/// Faults if the field is unwritable.
pub fn set_eof(world: &mut World, stream: Addr, eof: bool) -> Result<(), SimFault> {
    world.proc.mem.write_i32(stream + OFF_EOF, i32::from(eof))
}

/// Set the error indicator.
///
/// # Errors
///
/// Faults if the field is unwritable.
pub fn set_error(world: &mut World, stream: Addr, err: bool) -> Result<(), SimFault> {
    world.proc.mem.write_i32(stream + OFF_ERROR, i32::from(err))
}

/// Take the pushed-back character, if any. A non-zero pushback pointer
/// is dereferenced unconditionally — garbage streams crash here, like
/// real stdio chasing its read pointers.
///
/// # Errors
///
/// Faults if the slot is inaccessible or holds a garbage pointer.
pub fn take_ungetc(world: &mut World, stream: Addr) -> Result<Option<u8>, SimFault> {
    let slot = world.proc.mem.read_u32(stream + OFF_UNGETC)?;
    if slot == 0 {
        Ok(None)
    } else {
        let byte = world.proc.mem.read_u8(slot)?;
        world.proc.mem.write_u32(stream + OFF_UNGETC, 0)?;
        Ok(Some(byte))
    }
}

/// Push back one character.
///
/// # Errors
///
/// Faults if the stream object is unwritable.
pub fn store_ungetc(world: &mut World, stream: Addr, c: u8) -> Result<(), SimFault> {
    world.proc.mem.write_u8(stream + OFF_UNGETC_BYTE, c)?;
    world
        .proc
        .mem
        .write_u32(stream + OFF_UNGETC, stream + OFF_UNGETC_BYTE)
}

/// Parse an `fopen`-style mode string that has already been copied into
/// Rust. Returns `(read, write, append)` or `None` for an invalid leading
/// character.
pub fn parse_mode(mode: &[u8]) -> Option<(bool, bool, bool)> {
    let first = *mode.first()?;
    let plus = mode[1..].contains(&b'+');
    match first {
        b'r' => Some((true, plus, false)),
        b'w' => Some((plus, true, false)),
        b'a' => Some((plus, true, true)),
        _ => None,
    }
}

/// Mode bits for the `_flags` word from a parsed mode triple.
pub fn mode_bits(read: bool, write: bool, append: bool) -> u32 {
    let mut bits = 0;
    if read {
        bits |= F_READ;
    }
    if write {
        bits |= F_WRITE;
    }
    if append {
        bits |= F_APPEND;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_object_layout_roundtrip() {
        let mut w = World::new();
        let f = w.alloc_buf(FILE_SIZE);
        init_file_object(&mut w.proc, f, 7, F_READ | F_WRITE).unwrap();
        assert_eq!(read_fileno(&mut w, f).unwrap(), 7);
        assert!(has_magic(read_flags(&mut w, f).unwrap()));
        set_eof(&mut w, f, true).unwrap();
        assert_eq!(w.proc.mem.read_i32(f + OFF_EOF).unwrap(), 1);
    }

    #[test]
    fn ungetc_slot() {
        let mut w = World::new();
        let f = w.alloc_buf(FILE_SIZE);
        init_file_object(&mut w.proc, f, 3, F_READ).unwrap();
        assert_eq!(take_ungetc(&mut w, f).unwrap(), None);
        store_ungetc(&mut w, f, b'x').unwrap();
        assert_eq!(take_ungetc(&mut w, f).unwrap(), Some(b'x'));
        assert_eq!(take_ungetc(&mut w, f).unwrap(), None);
        // A NUL byte is representable.
        store_ungetc(&mut w, f, 0).unwrap();
        assert_eq!(take_ungetc(&mut w, f).unwrap(), Some(0));
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode(b"r"), Some((true, false, false)));
        assert_eq!(parse_mode(b"r+"), Some((true, true, false)));
        assert_eq!(parse_mode(b"w"), Some((false, true, false)));
        assert_eq!(parse_mode(b"wb+"), Some((true, true, false)));
        assert_eq!(parse_mode(b"a"), Some((false, true, true)));
        assert_eq!(parse_mode(b"x"), None);
        assert_eq!(parse_mode(b""), None);
    }

    #[test]
    fn garbage_file_reports_garbage_fileno() {
        // The essential authenticity property: fileno on a readable but
        // garbage region returns the garbage, it does not fail.
        let mut w = World::new();
        let junk = w.alloc_buf(FILE_SIZE);
        w.proc.mem.write_i32(junk + OFF_FILENO, -123456).unwrap();
        assert_eq!(read_fileno(&mut w, junk).unwrap(), -123456);
    }
}
