//! The function registry — the simulated equivalent of a shared library's
//! dynamic symbol table plus its code.

use std::collections::BTreeMap;

use healers_ctypes::FunctionPrototype;
use healers_simproc::{SimFault, SimValue};

use crate::world::World;
use crate::{ctype, decls, dirent, stdio, stdlib, string, termios, time, unistd};

/// The implementation of one C function.
pub type CFuncImpl = fn(&mut World, &[SimValue]) -> Result<SimValue, SimFault>;

/// One exported function: prototype plus implementation.
#[derive(Clone)]
pub struct CFunction {
    /// Function name.
    pub name: String,
    /// Owning header file.
    pub header: &'static str,
    /// Parsed prototype.
    pub proto: FunctionPrototype,
    imp: CFuncImpl,
}

impl std::fmt::Debug for CFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CFunction({})", self.proto)
    }
}

impl CFunction {
    /// Invoke the implementation directly (no fuel reset — for internal
    /// calls made *by* other libc functions or by the wrapper).
    pub fn invoke(&self, world: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
        (self.imp)(world, args)
    }
}

/// The simulated shared library.
#[derive(Debug, Clone)]
pub struct Libc {
    funcs: BTreeMap<String, CFunction>,
}

impl Libc {
    /// The standard library with every function registered.
    ///
    /// # Panics
    ///
    /// Panics if the declaration table and the implementation tables
    /// disagree — a build-time consistency error.
    pub fn standard() -> Self {
        let mut impls: BTreeMap<&'static str, CFuncImpl> = BTreeMap::new();
        for module in [
            string::funcs(),
            stdio::funcs(),
            stdlib::funcs(),
            time::funcs(),
            termios::funcs(),
            dirent::funcs(),
            unistd::funcs(),
            ctype::funcs(),
        ] {
            for (name, imp) in module {
                let clash = impls.insert(name, imp);
                assert!(clash.is_none(), "duplicate implementation for {name}");
            }
        }

        let mut funcs = BTreeMap::new();
        for (name, header, decl) in decls::DECLS {
            let proto = healers_ctypes::parse_prototype(decl)
                .unwrap_or_else(|e| panic!("bad declaration for {name}: {e}"));
            let imp = *impls
                .get(name)
                .unwrap_or_else(|| panic!("no implementation for declared function {name}"));
            funcs.insert(
                name.to_string(),
                CFunction {
                    name: name.to_string(),
                    header,
                    proto,
                    imp,
                },
            );
            impls.remove(name);
        }
        assert!(
            impls.is_empty(),
            "implementations without declarations: {:?}",
            impls.keys().collect::<Vec<_>>()
        );
        Libc { funcs }
    }

    /// Look up a function by name.
    pub fn get(&self, name: &str) -> Option<&CFunction> {
        self.funcs.get(name)
    }

    /// Call a function by name at a library-call boundary: the fuel
    /// budget is reset, so a hang in this call is attributed to it.
    ///
    /// # Errors
    ///
    /// Propagates the callee's [`SimFault`] (segfault / abort / hang).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an exported function — calling an
    /// undefined symbol is a harness bug, the dynamic linker would have
    /// failed at load time.
    pub fn call(
        &self,
        world: &mut World,
        name: &str,
        args: &[SimValue],
    ) -> Result<SimValue, SimFault> {
        let f = self
            .funcs
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol: {name}"));
        world.proc.reset_fuel();
        f.invoke(world, args)
    }

    /// Names of all exported functions, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.funcs.keys().map(|s| s.as_str())
    }

    /// Number of exported functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the library exports no functions (never true for
    /// [`Libc::standard`]).
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_builds() {
        let libc = Libc::standard();
        assert!(libc.len() >= 100);
        assert!(!libc.is_empty());
        assert!(libc.get("strcpy").is_some());
        assert!(libc.get("nonexistent").is_none());
    }

    #[test]
    fn prototypes_match_names() {
        let libc = Libc::standard();
        for name in libc.names() {
            assert_eq!(libc.get(name).unwrap().proto.name, name);
        }
    }

    #[test]
    #[should_panic(expected = "undefined symbol")]
    fn undefined_symbol_panics() {
        let libc = Libc::standard();
        let mut w = World::new();
        let _ = libc.call(&mut w, "no_such_fn", &[]);
    }
}
