//! The simulated C library under test.
//!
//! HEALERS hardens a library *without source access*; the library itself
//! is the object of study. This crate implements a glibc-2.2-alike over
//! the simulated process ([`healers_simproc`]) and kernel
//! ([`healers_os`]): roughly 120 functions across `string.h`, `stdio.h`,
//! `stdlib.h`, `time.h`, `termios.h`, `dirent.h`, `ctype.h` and
//! `unistd.h`.
//!
//! Two properties make the simulation faithful to the paper's experiments:
//!
//! 1. **Crashes are emergent.** Functions perform *no* argument
//!    validation beyond what their real counterparts do; they simply
//!    access simulated memory. `strcpy` copies until NUL, `asctime` reads
//!    a 44-byte `struct tm`, `closedir` frees whatever pointer it is
//!    given. Invalid arguments genuinely fault, abort, or hang — nothing
//!    is scripted.
//! 2. **Errors are authentic.** Kernel-level failures surface as the
//!    documented error returns with `errno` set (`EBADF`, `ENOENT`, …),
//!    including the paper's observed quirks: `fflush` fails without
//!    setting `errno`, and `fdopen`/`freopen` sometimes set `errno` even
//!    though they succeed.
//!
//! # Examples
//!
//! ```
//! use healers_libc::{Libc, World};
//! use healers_simproc::SimValue;
//!
//! let libc = Libc::standard();
//! let mut world = World::new();
//! let s = world.alloc_cstr("hello");
//! let len = libc.call(&mut world, "strlen", &[SimValue::Ptr(s)]).unwrap();
//! assert_eq!(len, SimValue::Int(5));
//!
//! // An invalid pointer genuinely segfaults:
//! let crash = libc.call(&mut world, "strlen", &[SimValue::Ptr(0xdead_0000)]);
//! assert!(crash.is_err());
//! ```

pub mod ctype;
pub mod decls;
pub mod dirent;
pub mod file;
pub mod registry;
pub mod stdio;
pub mod stdlib;
pub mod string;
pub mod termios;
pub mod time;
pub mod unistd;
pub mod world;

pub use registry::{CFunction, Libc};
pub use world::World;

/// `EOF` as returned by stdio functions.
pub const EOF: i64 = -1;
