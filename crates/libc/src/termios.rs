//! `termios.h`: terminal attribute functions.
//!
//! §6 of the paper reports a finding its injector made here: `cfsetispeed`
//! needs only **write** access to its `struct termios` argument, while
//! `cfsetospeed` needs **read and write** access. We reproduce the
//! underlying implementation asymmetry: `cfsetispeed` stores the new
//! input speed into its own field, whereas `cfsetospeed` read-modify-
//! writes the shared `c_cflag` word.

use healers_os::errno::EINVAL;
use healers_os::Termios;
use healers_simproc::{Addr, SimFault, SimValue};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, ptr_arg, World};

/// Size of `struct termios` on the target.
pub const TERMIOS_SIZE: u32 = 60;

const OFF_CFLAG: u32 = 8;
const OFF_ISPEED: u32 = 52;
const OFF_OSPEED: u32 = 56;

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("cfgetispeed", cfgetispeed),
        ("cfgetospeed", cfgetospeed),
        ("cfsetispeed", cfsetispeed),
        ("cfsetospeed", cfsetospeed),
        ("tcgetattr", tcgetattr),
        ("tcsetattr", tcsetattr),
        ("tcflush", tcflush),
        ("tcdrain", tcdrain),
        ("tcflow", tcflow),
        ("tcsendbreak", tcdrain),
    ]
}

/// Read a `struct termios` image from simulated memory (all 60 bytes).
///
/// # Errors
///
/// Faults if any byte is unreadable.
pub fn read_termios(w: &mut World, addr: Addr) -> Result<Termios, SimFault> {
    let bytes = w.proc.mem.read_bytes(addr, TERMIOS_SIZE)?;
    let u = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let mut cc = [0u8; 32];
    cc.copy_from_slice(&bytes[17..49]);
    Ok(Termios {
        c_iflag: u(0),
        c_oflag: u(4),
        c_cflag: u(8),
        c_lflag: u(12),
        c_line: bytes[16],
        c_cc: cc,
        c_ispeed: u(52),
        c_ospeed: u(56),
    })
}

/// Write a `struct termios` image to simulated memory.
///
/// # Errors
///
/// Faults if any byte is unwritable.
pub fn write_termios(w: &mut World, addr: Addr, t: &Termios) -> Result<(), SimFault> {
    w.proc.mem.write_u32(addr, t.c_iflag)?;
    w.proc.mem.write_u32(addr + 4, t.c_oflag)?;
    w.proc.mem.write_u32(addr + 8, t.c_cflag)?;
    w.proc.mem.write_u32(addr + 12, t.c_lflag)?;
    w.proc.mem.write_u8(addr + 16, t.c_line)?;
    w.proc.mem.write_bytes(addr + 17, &t.c_cc)?;
    // Pad bytes 49..52 stay whatever they were.
    w.proc.mem.write_u32(addr + OFF_ISPEED, t.c_ispeed)?;
    w.proc.mem.write_u32(addr + OFF_OSPEED, t.c_ospeed)?;
    Ok(())
}

fn cfgetispeed(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let t = ptr_arg(args, 0);
    let speed = w.proc.mem.read_u32(t + OFF_ISPEED)?;
    Ok(SimValue::Int(i64::from(speed)))
}

fn cfgetospeed(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let t = ptr_arg(args, 0);
    let speed = w.proc.mem.read_u32(t + OFF_OSPEED)?;
    Ok(SimValue::Int(i64::from(speed)))
}

/// Sets the input speed with a pure store — write access suffices, the
/// asymmetry the paper's injector discovered.
fn cfsetispeed(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let t = ptr_arg(args, 0);
    let speed = int_arg(args, 1) as u32;
    if !Termios::is_valid_speed(speed) {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    w.proc.mem.write_u32(t + OFF_ISPEED, speed)?;
    Ok(SimValue::Int(0))
}

/// Sets the output speed with a read-modify-write of `c_cflag` — needs
/// both read and write access.
fn cfsetospeed(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let t = ptr_arg(args, 0);
    let speed = int_arg(args, 1) as u32;
    if !Termios::is_valid_speed(speed) {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    const CBAUD: u32 = 0o010017;
    let cflag = w.proc.mem.read_u32(t + OFF_CFLAG)?;
    w.proc
        .mem
        .write_u32(t + OFF_CFLAG, (cflag & !CBAUD) | speed)?;
    w.proc.mem.write_u32(t + OFF_OSPEED, speed)?;
    Ok(SimValue::Int(0))
}

fn tcgetattr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let out = ptr_arg(args, 1);
    match w.kernel.tcgetattr(fd) {
        Ok(t) => {
            write_termios(w, out, &t)?;
            Ok(SimValue::Int(0))
        }
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn tcsetattr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let optional_actions = int_arg(args, 1);
    let tp = ptr_arg(args, 2);
    if !(0..=2).contains(&optional_actions) {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    let t = read_termios(w, tp)?;
    match w.kernel.tcsetattr(fd, t) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn tcflush(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let queue = int_arg(args, 1);
    if !(0..=2).contains(&queue) {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    match w.kernel.isatty(fd) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn tcdrain(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    match w.kernel.isatty(fd) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn tcflow(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let action = int_arg(args, 1);
    if !(0..=3).contains(&action) {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    match w.kernel.isatty(fd) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;
    use healers_os::{B38400, B9600};
    use healers_simproc::Protection;

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    #[test]
    fn tcgetattr_tcsetattr_roundtrip() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(TERMIOS_SIZE);
        let r = libc
            .call(&mut w, "tcgetattr", &[SimValue::Int(0), p(buf)])
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
        let t = read_termios(&mut w, buf).unwrap();
        assert_eq!(t.c_ispeed, B9600);

        w.proc.mem.write_u32(buf + OFF_ISPEED, B38400).unwrap();
        let r = libc
            .call(
                &mut w,
                "tcsetattr",
                &[SimValue::Int(0), SimValue::Int(0), p(buf)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
        assert_eq!(w.kernel.tcgetattr(0).unwrap().c_ispeed, B38400);
    }

    #[test]
    fn tcgetattr_bad_fd() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(TERMIOS_SIZE);
        let r = libc
            .call(&mut w, "tcgetattr", &[SimValue::Int(99), p(buf)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
        assert_eq!(w.proc.errno(), healers_os::errno::EBADF);
    }

    #[test]
    fn cfsetispeed_works_on_write_only_memory() {
        // The §6 asymmetry: a pure store succeeds on WONLY memory…
        let (libc, mut w) = setup();
        let wo = w
            .proc
            .heap
            .alloc_with_prot(&mut w.proc.mem, TERMIOS_SIZE, Protection::WriteOnly)
            .unwrap();
        let r = libc
            .call(
                &mut w,
                "cfsetispeed",
                &[p(wo), SimValue::Int(i64::from(B9600))],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
    }

    #[test]
    fn cfsetospeed_crashes_on_write_only_memory() {
        // …while the read-modify-write of cfsetospeed faults on it.
        let (libc, mut w) = setup();
        let wo = w
            .proc
            .heap
            .alloc_with_prot(&mut w.proc.mem, TERMIOS_SIZE, Protection::WriteOnly)
            .unwrap();
        let err = libc
            .call(
                &mut w,
                "cfsetospeed",
                &[p(wo), SimValue::Int(i64::from(B9600))],
            )
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(wo + OFF_CFLAG));
    }

    #[test]
    fn cfset_validates_speed() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(TERMIOS_SIZE);
        let r = libc
            .call(&mut w, "cfsetispeed", &[p(buf), SimValue::Int(31337)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn cfget_reads_fields() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(TERMIOS_SIZE);
        w.proc.mem.write_u32(buf + OFF_ISPEED, B9600).unwrap();
        w.proc.mem.write_u32(buf + OFF_OSPEED, B38400).unwrap();
        assert_eq!(
            libc.call(&mut w, "cfgetispeed", &[p(buf)]).unwrap(),
            SimValue::Int(i64::from(B9600))
        );
        assert_eq!(
            libc.call(&mut w, "cfgetospeed", &[p(buf)]).unwrap(),
            SimValue::Int(i64::from(B38400))
        );
        assert!(libc.call(&mut w, "cfgetispeed", &[SimValue::NULL]).is_err());
    }

    #[test]
    fn tcflush_validates_queue_and_fd() {
        let (libc, mut w) = setup();
        assert_eq!(
            libc.call(&mut w, "tcflush", &[SimValue::Int(0), SimValue::Int(1)])
                .unwrap(),
            SimValue::Int(0)
        );
        let r = libc
            .call(&mut w, "tcflush", &[SimValue::Int(0), SimValue::Int(9)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
        assert_eq!(w.proc.errno(), EINVAL);
        let r = libc
            .call(&mut w, "tcflush", &[SimValue::Int(99), SimValue::Int(0)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
    }

    #[test]
    fn tcflow_and_tcdrain_and_tcsendbreak() {
        let (libc, mut w) = setup();
        assert_eq!(
            libc.call(&mut w, "tcdrain", &[SimValue::Int(1)]).unwrap(),
            SimValue::Int(0)
        );
        assert_eq!(
            libc.call(&mut w, "tcsendbreak", &[SimValue::Int(1), SimValue::Int(0)])
                .unwrap(),
            SimValue::Int(0)
        );
        assert_eq!(
            libc.call(&mut w, "tcflow", &[SimValue::Int(1), SimValue::Int(5)])
                .unwrap(),
            SimValue::Int(-1)
        );
    }

    #[test]
    fn termios_marshal_roundtrip() {
        let mut w = World::new();
        let buf = w.alloc_buf(TERMIOS_SIZE);
        let mut t = Termios::sane();
        t.c_cc[3] = 42;
        t.c_line = 7;
        write_termios(&mut w, buf, &t).unwrap();
        let back = read_termios(&mut w, buf).unwrap();
        assert_eq!(back, t);
    }
}
