//! `stdlib.h`: conversions, the allocator interface, and the environment.

use healers_os::errno::{EINVAL, ENOMEM, ERANGE};
use healers_simproc::{Addr, SimFault, SimValue};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, ptr_arg, World};

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("atoi", atoi),
        ("atol", atoi), // long == int on the ILP32 target
        ("atoll", atoll),
        ("atof", atof),
        ("strtol", strtol),
        ("strtoul", strtoul),
        ("strtod", strtod),
        ("malloc", malloc),
        ("calloc", calloc),
        ("realloc", realloc),
        ("free", free),
        ("getenv", getenv),
        ("setenv", setenv),
        ("unsetenv", unsetenv),
        ("abs", abs_),
        ("labs", abs_),
        ("rand", rand_),
        ("srand", srand),
        ("rand_r", rand_r),
        ("abort", abort_),
    ]
}

/// Scan an integer literal at `s` (whitespace, sign, digits in `base`).
/// Returns `(value, bytes_consumed, overflowed)`.
fn scan_int(w: &mut World, s: Addr, base: u32) -> Result<(i64, u32, bool), SimFault> {
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if !b.is_ascii_whitespace() {
            break;
        }
        i += 1;
    }
    let mut negative = false;
    let sign_byte = w.proc.mem.read_u8(s.wrapping_add(i))?;
    if sign_byte == b'-' || sign_byte == b'+' {
        negative = sign_byte == b'-';
        i += 1;
    }
    // Auto-base: leading 0x → 16, leading 0 → 8.
    let mut base = base;
    if base == 0 {
        let b0 = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b0 == b'0' {
            let b1 = w.proc.mem.read_u8(s.wrapping_add(i + 1))?;
            if b1 == b'x' || b1 == b'X' {
                base = 16;
                i += 2;
            } else {
                base = 8;
                i += 1;
            }
        } else {
            base = 10;
        }
    } else if base == 16 {
        let b0 = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b0 == b'0' {
            let b1 = w.proc.mem.read_u8(s.wrapping_add(i + 1))?;
            if b1 == b'x' || b1 == b'X' {
                i += 2;
            }
        }
    }
    let mut value: i64 = 0;
    let mut digits = 0u32;
    let mut overflow = false;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        let Some(d) = (b as char).to_digit(base) else {
            break;
        };
        value = value
            .checked_mul(i64::from(base))
            .and_then(|v| v.checked_add(i64::from(d)))
            .unwrap_or_else(|| {
                overflow = true;
                i64::MAX
            });
        digits += 1;
        i += 1;
    }
    if digits == 0 {
        return Ok((0, 0, false));
    }
    Ok((if negative { -value } else { value }, i, overflow))
}

fn atoi(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (v, _, _) = scan_int(w, ptr_arg(args, 0), 10)?;
    Ok(SimValue::Int(v as i32 as i64))
}

fn atoll(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    // long long is 64-bit even on the ILP32 target: no truncation.
    let (v, _, _) = scan_int(w, ptr_arg(args, 0), 10)?;
    Ok(SimValue::Int(v))
}

/// Scan a float literal; returns `(value, bytes_consumed)`.
fn scan_float(w: &mut World, s: Addr) -> Result<(f64, u32), SimFault> {
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if !b.is_ascii_whitespace() {
            break;
        }
        i += 1;
    }
    let start = i;
    let mut text = String::new();
    let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
    if b == b'-' || b == b'+' {
        text.push(b as char);
        i += 1;
    }
    let mut seen_dot = false;
    let mut seen_e = false;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        match b {
            b'0'..=b'9' => text.push(b as char),
            b'.' if !seen_dot && !seen_e => {
                seen_dot = true;
                text.push('.');
            }
            b'e' | b'E' if !seen_e && text.chars().any(|c| c.is_ascii_digit()) => {
                seen_e = true;
                text.push('e');
                let nxt = w.proc.mem.read_u8(s.wrapping_add(i + 1))?;
                if nxt == b'-' || nxt == b'+' {
                    text.push(nxt as char);
                    i += 1;
                }
            }
            _ => break,
        }
        i += 1;
    }
    let value: f64 = text.parse().unwrap_or(0.0);
    if !text.chars().any(|c| c.is_ascii_digit()) {
        return Ok((0.0, 0));
    }
    let _ = start;
    Ok((value, i))
}

fn atof(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (v, _) = scan_float(w, ptr_arg(args, 0))?;
    Ok(SimValue::Double(v))
}

fn strtol(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let endptr = ptr_arg(args, 1);
    let base = int_arg(args, 2);
    if base < 0 || base == 1 || base > 36 {
        return w.fail(EINVAL, SimValue::Int(0));
    }
    let (v, consumed, overflow) = scan_int(w, s, base as u32)?;
    if endptr != 0 {
        // Writing *endptr faults on a bad pointer — authentic.
        w.proc.mem.write_u32(endptr, s.wrapping_add(consumed))?;
    }
    let clamped = v.clamp(i64::from(i32::MIN), i64::from(i32::MAX));
    if overflow || clamped != v {
        let lim = if v < 0 {
            i64::from(i32::MIN)
        } else {
            i64::from(i32::MAX)
        };
        return w.fail(ERANGE, SimValue::Int(lim));
    }
    Ok(SimValue::Int(clamped))
}

fn strtoul(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let endptr = ptr_arg(args, 1);
    let base = int_arg(args, 2);
    if base < 0 || base == 1 || base > 36 {
        return w.fail(EINVAL, SimValue::Int(0));
    }
    let (v, consumed, overflow) = scan_int(w, s, base as u32)?;
    if endptr != 0 {
        w.proc.mem.write_u32(endptr, s.wrapping_add(consumed))?;
    }
    if overflow || v > i64::from(u32::MAX) || v < -i64::from(u32::MAX) {
        return w.fail(ERANGE, SimValue::Int(i64::from(u32::MAX)));
    }
    Ok(SimValue::Int(i64::from(v as u32)))
}

fn strtod(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let endptr = ptr_arg(args, 1);
    let (v, consumed) = scan_float(w, s)?;
    if endptr != 0 {
        w.proc.mem.write_u32(endptr, s.wrapping_add(consumed))?;
    }
    Ok(SimValue::Double(v))
}

fn malloc(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let size = int_arg(args, 0) as u32;
    match w.proc.heap_alloc(size) {
        Ok(p) => Ok(SimValue::Ptr(p)),
        Err(_) => w.fail(ENOMEM, SimValue::NULL),
    }
}

fn calloc(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let nmemb = int_arg(args, 0) as u32;
    // The 2002-era multiplication-overflow bug: nmemb*size wraps, so a
    // huge request under-allocates (pages arrive zeroed either way).
    let size = nmemb.wrapping_mul(int_arg(args, 1) as u32);
    match w.proc.heap_alloc(size) {
        Ok(p) => Ok(SimValue::Ptr(p)),
        Err(_) => w.fail(ENOMEM, SimValue::NULL),
    }
}

fn realloc(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let ptr = ptr_arg(args, 0);
    let size = int_arg(args, 1) as u32;
    if ptr == 0 {
        return malloc(w, &args[1..]);
    }
    if size == 0 {
        return free(w, args);
    }
    let (heap, mem) = (&mut w.proc.heap, &mut w.proc.mem);
    match heap.realloc(mem, ptr, size) {
        Ok(p) => Ok(SimValue::Ptr(p)),
        Err(healers_simproc::HeapError::OutOfMemory) => w.fail(ENOMEM, SimValue::NULL),
        Err(e) => Err(SimFault::Abort {
            reason: format!("realloc(): {e}"),
        }),
    }
}

fn free(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let ptr = ptr_arg(args, 0);
    if ptr == 0 {
        return Ok(SimValue::Void); // free(NULL) is a no-op
    }
    match w.proc.heap_free(ptr) {
        Ok(()) => Ok(SimValue::Void),
        // glibc's consistency check: invalid/double free aborts.
        Err(e) => Err(SimFault::Abort {
            reason: e.to_string(),
        }),
    }
}

fn getenv(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let name = ptr_arg(args, 0);
    let key = w.read_cstr_lossy(name)?;
    let Some(value) = w.env.get(&key).cloned() else {
        return Ok(SimValue::NULL);
    };
    // Materialize (and cache) the value string in static memory so the
    // returned pointer stays valid, like the real environ block.
    let slot = w.proc.named_static(&format!("env:{key}"), 128);
    w.proc.write_cstr(slot, value.as_bytes())?;
    Ok(SimValue::Ptr(slot))
}

fn setenv(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let name = ptr_arg(args, 0);
    let value = ptr_arg(args, 1);
    let overwrite = int_arg(args, 2) != 0;
    let key = w.read_cstr_lossy(name)?;
    if key.is_empty() || key.contains('=') {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    let val = w.read_cstr_lossy(value)?;
    if overwrite || !w.env.contains_key(&key) {
        w.env.insert(key, val);
    }
    Ok(SimValue::Int(0))
}

fn unsetenv(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let name = ptr_arg(args, 0);
    let key = w.read_cstr_lossy(name)?;
    if key.is_empty() || key.contains('=') {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    w.env.remove(&key);
    Ok(SimValue::Int(0))
}

fn abs_(_w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let v = int_arg(args, 0) as i32;
    // abs(INT_MIN) is UB in C; the common implementation returns INT_MIN.
    Ok(SimValue::Int(i64::from(v.wrapping_abs())))
}

fn rand_(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let _ = args;
    w.rand_state = w
        .rand_state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    Ok(SimValue::Int(i64::from(
        (w.rand_state >> 33) as u32 & 0x7fff_ffff,
    )))
}

fn srand(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    w.rand_state = int_arg(args, 0) as u64;
    Ok(SimValue::Void)
}

fn rand_r(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let seedp = ptr_arg(args, 0);
    // Reads and writes the caller's seed — crash-capable on bad pointers.
    let seed = w.proc.mem.read_u32(seedp)?;
    let next = seed.wrapping_mul(1103515245).wrapping_add(12345);
    w.proc.mem.write_u32(seedp, next)?;
    Ok(SimValue::Int(i64::from(next & 0x7fff_ffff)))
}

fn abort_(_w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let _ = args;
    Err(SimFault::Abort {
        reason: "abort() called".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;
    use healers_simproc::INVALID_PTR;

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    #[test]
    fn atoi_parses() {
        let (libc, mut w) = setup();
        for (text, expect) in [
            ("42", 42i64),
            ("  -17abc", -17),
            ("+9", 9),
            ("abc", 0),
            ("", 0),
        ] {
            let s = w.alloc_cstr(text);
            assert_eq!(
                libc.call(&mut w, "atoi", &[p(s)]).unwrap(),
                SimValue::Int(expect),
                "atoi({text:?})"
            );
        }
    }

    #[test]
    fn atoi_crashes_on_bad_pointer() {
        let (libc, mut w) = setup();
        assert!(libc.call(&mut w, "atoi", &[SimValue::NULL]).is_err());
        assert!(libc.call(&mut w, "atoi", &[p(INVALID_PTR)]).is_err());
    }

    #[test]
    fn atof_parses() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("  -2.5e2xyz");
        let r = libc.call(&mut w, "atof", &[p(s)]).unwrap();
        assert_eq!(r, SimValue::Double(-250.0));
    }

    #[test]
    fn strtol_endptr_and_base() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("0x1f rest");
        let end = w.alloc_buf(4);
        let r = libc
            .call(&mut w, "strtol", &[p(s), p(end), SimValue::Int(0)])
            .unwrap();
        assert_eq!(r, SimValue::Int(31));
        assert_eq!(w.proc.mem.read_u32(end).unwrap(), s + 4);
        // Invalid base.
        let r = libc
            .call(&mut w, "strtol", &[p(s), SimValue::NULL, SimValue::Int(1)])
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn strtol_overflow_is_erange() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("99999999999999999999");
        let r = libc
            .call(&mut w, "strtol", &[p(s), SimValue::NULL, SimValue::Int(10)])
            .unwrap();
        assert_eq!(r, SimValue::Int(i64::from(i32::MAX)));
        assert_eq!(w.proc.errno(), ERANGE);
    }

    #[test]
    fn strtol_bad_endptr_crashes() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("5");
        assert!(libc
            .call(&mut w, "strtol", &[p(s), p(INVALID_PTR), SimValue::Int(10)])
            .is_err());
    }

    #[test]
    fn strtoul_wraps_to_u32() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("4294967295");
        let r = libc
            .call(
                &mut w,
                "strtoul",
                &[p(s), SimValue::NULL, SimValue::Int(10)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(i64::from(u32::MAX)));
    }

    #[test]
    fn strtod_parses_with_endptr() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("3.25rest");
        let end = w.alloc_buf(4);
        let r = libc.call(&mut w, "strtod", &[p(s), p(end)]).unwrap();
        assert_eq!(r, SimValue::Double(3.25));
        assert_eq!(w.proc.mem.read_u32(end).unwrap(), s + 4);
    }

    #[test]
    fn malloc_free_realloc() {
        let (libc, mut w) = setup();
        let a = libc.call(&mut w, "malloc", &[SimValue::Int(64)]).unwrap();
        assert_ne!(a, SimValue::NULL);
        w.proc.mem.write_bytes(a.as_ptr(), b"contents").unwrap();
        let b = libc
            .call(&mut w, "realloc", &[a, SimValue::Int(128)])
            .unwrap();
        assert_eq!(w.proc.mem.read_bytes(b.as_ptr(), 8).unwrap(), b"contents");
        libc.call(&mut w, "free", &[b]).unwrap();
        // Double free aborts.
        let err = libc.call(&mut w, "free", &[b]).unwrap_err();
        assert!(err.is_abort());
    }

    #[test]
    fn free_invalid_pointer_aborts() {
        let (libc, mut w) = setup();
        let block = libc.call(&mut w, "malloc", &[SimValue::Int(32)]).unwrap();
        let interior = SimValue::Ptr(block.as_ptr() + 8);
        let err = libc.call(&mut w, "free", &[interior]).unwrap_err();
        assert!(err.is_abort());
        // free(NULL) is fine.
        libc.call(&mut w, "free", &[SimValue::NULL]).unwrap();
    }

    #[test]
    fn calloc_overflow_underallocates() {
        let (libc, mut w) = setup();
        // 0x1000_0001 * 0x10 wraps to 0x10 — the authentic 2002 bug.
        let r = libc
            .call(
                &mut w,
                "calloc",
                &[SimValue::Int(0x1000_0001), SimValue::Int(0x10)],
            )
            .unwrap();
        assert_ne!(r, SimValue::NULL);
        let block = w.proc.heap.block_containing(r.as_ptr()).unwrap();
        assert_eq!(block.size, 0x10);
    }

    #[test]
    fn env_roundtrip() {
        let (libc, mut w) = setup();
        let name = w.alloc_cstr("HOME");
        let r = libc.call(&mut w, "getenv", &[p(name)]).unwrap();
        assert_eq!(w.read_cstr_lossy(r.as_ptr()).unwrap(), "/home/user");

        let key = w.alloc_cstr("NEWVAR");
        let val = w.alloc_cstr("value1");
        libc.call(&mut w, "setenv", &[p(key), p(val), SimValue::Int(0)])
            .unwrap();
        let r = libc.call(&mut w, "getenv", &[p(key)]).unwrap();
        assert_eq!(w.read_cstr_lossy(r.as_ptr()).unwrap(), "value1");

        // overwrite=0 keeps the old value.
        let val2 = w.alloc_cstr("value2");
        libc.call(&mut w, "setenv", &[p(key), p(val2), SimValue::Int(0)])
            .unwrap();
        let r = libc.call(&mut w, "getenv", &[p(key)]).unwrap();
        assert_eq!(w.read_cstr_lossy(r.as_ptr()).unwrap(), "value1");

        libc.call(&mut w, "unsetenv", &[p(key)]).unwrap();
        let r = libc.call(&mut w, "getenv", &[p(key)]).unwrap();
        assert_eq!(r, SimValue::NULL);
    }

    #[test]
    fn setenv_validates_name() {
        let (libc, mut w) = setup();
        let bad = w.alloc_cstr("A=B");
        let val = w.alloc_cstr("v");
        let r = libc
            .call(&mut w, "setenv", &[p(bad), p(val), SimValue::Int(1)])
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn abs_family_never_crashes() {
        let (libc, mut w) = setup();
        assert_eq!(
            libc.call(&mut w, "abs", &[SimValue::Int(-5)]).unwrap(),
            SimValue::Int(5)
        );
        assert_eq!(
            libc.call(&mut w, "labs", &[SimValue::Int(7)]).unwrap(),
            SimValue::Int(7)
        );
        // INT_MIN: returns INT_MIN without crashing (classic behavior).
        assert_eq!(
            libc.call(&mut w, "abs", &[SimValue::Int(i64::from(i32::MIN))])
                .unwrap(),
            SimValue::Int(i64::from(i32::MIN))
        );
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let (libc, mut w) = setup();
        libc.call(&mut w, "srand", &[SimValue::Int(7)]).unwrap();
        let a = libc.call(&mut w, "rand", &[]).unwrap();
        libc.call(&mut w, "srand", &[SimValue::Int(7)]).unwrap();
        let b = libc.call(&mut w, "rand", &[]).unwrap();
        assert_eq!(a, b);
        assert!(a.as_int() >= 0);
    }

    #[test]
    fn rand_r_uses_caller_seed() {
        let (libc, mut w) = setup();
        let seed = w.alloc_buf(4);
        w.proc.mem.write_u32(seed, 1).unwrap();
        let a = libc.call(&mut w, "rand_r", &[p(seed)]).unwrap();
        assert!(a.as_int() >= 0);
        assert_ne!(w.proc.mem.read_u32(seed).unwrap(), 1);
        assert!(libc.call(&mut w, "rand_r", &[SimValue::NULL]).is_err());
    }

    #[test]
    fn abort_aborts() {
        let (libc, mut w) = setup();
        let err = libc.call(&mut w, "abort", &[]).unwrap_err();
        assert!(err.is_abort());
    }
}
