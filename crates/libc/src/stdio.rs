//! `stdio.h`: streams, formatted I/O, and their authentic failure modes.
//!
//! Notable authenticity points, each of which the paper's evaluation
//! observes:
//!
//! * `fopen`/`freopen`/`fdopen` copy the caller's mode string into a
//!   fixed 8-byte internal buffer with no bounds check — long mode
//!   strings overflow into a guard page and crash ("functions fopen and
//!   freopen crash when the mode string is invalid but can cope with
//!   invalid file names", §6);
//! * `fflush` on a stream with a bad descriptor returns `EOF` **without
//!   setting `errno`** (§6: the one function that was supposed to set
//!   `errno` but was not observed doing so);
//! * `fdopen` and `freopen` sometimes set `errno` even though they
//!   succeed (§6: the two functions with *inconsistent* error return
//!   codes);
//! * `gets` and `sprintf` write through their destination without any
//!   bound, and the format engine supports `%n` — the classic smashing
//!   vectors the wrapper's stateful heap check is designed to contain.

use healers_os::errno::{EBADF, EINVAL, ENOMEM};
use healers_os::OpenFlags;
use healers_simproc::{Addr, SimFault, SimValue, PAGE_SIZE};

use crate::file::{self, FILE_SIZE};
use crate::registry::CFuncImpl;
use crate::string::c_strlen;
use crate::world::{int_arg, ptr_arg, World};
use crate::EOF;

/// Page holding the stdio internal mode-string scratch buffer.
pub const MODE_SCRATCH_PAGE: Addr = 0x0900_0000;
/// The 8-byte scratch buffer sits at the very end of its page; byte 8
/// falls on an unmapped page and faults.
pub const MODE_SCRATCH: Addr = MODE_SCRATCH_PAGE + PAGE_SIZE - 8;

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("fopen", fopen),
        ("freopen", freopen),
        ("fdopen", fdopen),
        ("fclose", fclose),
        ("fflush", fflush),
        ("fread", fread),
        ("fwrite", fwrite),
        ("fgets", fgets),
        ("fputs", fputs),
        ("fgetc", fgetc),
        ("fputc", fputc),
        ("getc", fgetc),
        ("putc", fputc),
        ("ungetc", ungetc),
        ("puts", puts),
        ("getchar", getchar),
        ("putchar", putchar),
        ("gets", gets),
        ("fseek", fseek),
        ("ftell", ftell),
        ("rewind", rewind),
        ("feof", feof),
        ("ferror", ferror),
        ("clearerr", clearerr),
        ("fileno", fileno),
        ("setbuf", setbuf),
        ("setvbuf", setvbuf),
        ("tmpfile", tmpfile),
        ("tmpnam", tmpnam),
        ("sprintf", sprintf),
        ("snprintf", snprintf),
        ("fprintf", fprintf),
        ("sscanf", sscanf),
        ("perror", perror),
        ("remove", remove),
        ("rename", rename),
    ]
}

/// A parsed stream mode: first character (`r`/`w`/`a`) plus the `+` flag.
#[derive(Debug, Clone, Copy)]
struct StreamMode {
    first: u8,
    plus: bool,
}

impl StreamMode {
    /// The `(read, write, append)` capabilities of the stream.
    fn caps(self) -> (bool, bool, bool) {
        match (self.first, self.plus) {
            (b'r', false) => (true, false, false),
            (b'r', true) => (true, true, false),
            (b'w', false) => (false, true, false),
            (b'w', true) => (true, true, false),
            (b'a', false) => (false, true, true),
            (b'a', true) => (true, true, true),
            _ => unreachable!("validated by parse"),
        }
    }

    /// Kernel open flags with fopen's create/truncate semantics:
    /// `r`/`r+` never create, `w`/`w+` create+truncate, `a`/`a+`
    /// create+append.
    fn open_flags(self) -> OpenFlags {
        let (read, write, append) = self.caps();
        OpenFlags {
            read,
            write,
            append,
            create: self.first != b'r',
            truncate: self.first == b'w',
        }
    }

    /// Mode bits for the `FILE` `_flags` word.
    fn file_bits(self) -> u32 {
        let (read, write, append) = self.caps();
        file::mode_bits(read, write, append)
    }
}

/// Copy the caller's mode string into the internal scratch buffer
/// (unchecked, like the 2002-era library) and parse it.
///
/// Returns `Ok(None)` for a syntactically invalid mode (leading char not
/// `r`/`w`/`a`); the caller reports `EINVAL`.
fn copy_and_parse_mode(w: &mut World, mode: Addr) -> Result<Option<StreamMode>, SimFault> {
    let mut bytes = Vec::new();
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(mode.wrapping_add(i))?;
        // The unchecked internal copy: byte 8 lands on the guard page.
        w.proc.mem.write_u8(MODE_SCRATCH + i, b)?;
        if b == 0 {
            break;
        }
        bytes.push(b);
        i += 1;
    }
    match bytes.first() {
        Some(&first @ (b'r' | b'w' | b'a')) => Ok(Some(StreamMode {
            first,
            plus: bytes[1..].contains(&b'+'),
        })),
        _ => Ok(None),
    }
}

fn alloc_file(w: &mut World, fd: i32, bits: u32) -> Result<SimValue, SimFault> {
    match w.proc.heap_alloc(FILE_SIZE) {
        Ok(addr) => {
            file::init_file_object(&mut w.proc, addr, fd, bits)?;
            Ok(SimValue::Ptr(addr))
        }
        Err(_) => w.fail(ENOMEM, SimValue::NULL),
    }
}

fn fopen(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let Some(mode) = copy_and_parse_mode(w, ptr_arg(args, 1))? else {
        return w.fail(EINVAL, SimValue::NULL);
    };
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.open(&name, mode.open_flags(), 0o666) {
        Ok(fd) => alloc_file(w, fd, mode.file_bits()),
        Err(e) => w.fail(e, SimValue::NULL),
    }
}

fn freopen(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let stream = ptr_arg(args, 2);
    let Some(mode) = copy_and_parse_mode(w, ptr_arg(args, 1))? else {
        return w.fail(EINVAL, SimValue::NULL);
    };
    let old_fd = file::read_fileno(w, stream)?;
    // The inconsistent-errno quirk (§6): the internal isatty probe on
    // the old descriptor fails for regular files and leaves errno =
    // ENOTTY even though freopen ultimately succeeds.
    let spurious = w.kernel.isatty(old_fd).is_err();
    let _ = w.kernel.close(old_fd);
    let name = w.read_cstr_lossy(path)?;
    match w.kernel.open(&name, mode.open_flags(), 0o666) {
        Ok(fd) => {
            file::init_file_object(&mut w.proc, stream, fd, mode.file_bits())?;
            if spurious {
                w.proc.set_errno(healers_os::errno::ENOTTY);
            }
            Ok(SimValue::Ptr(stream))
        }
        Err(e) => w.fail(e, SimValue::NULL),
    }
}

fn fdopen(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let fd = int_arg(args, 0) as i32;
    let Some(mode) = copy_and_parse_mode(w, ptr_arg(args, 1))? else {
        return w.fail(EINVAL, SimValue::NULL);
    };
    if !w.kernel.fd_is_open(fd) {
        return w.fail(EBADF, SimValue::NULL);
    }
    // The inconsistent-errno quirk (§6): the internal isatty probe sets
    // errno = ENOTTY for non-terminal descriptors even on success.
    if w.kernel.isatty(fd).is_err() {
        w.proc.set_errno(healers_os::errno::ENOTTY);
    }
    alloc_file(w, fd, mode.file_bits())
}

fn fclose(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    // fclose flushes the stream before closing; a corrupted buffer
    // pointer crashes here, like real stdio.
    touch_buffer(w, stream, true)?;
    let fd = file::read_fileno(w, stream)?;
    let close_result = w.kernel.close(fd);
    // Release the stream object. fclose cannot know whether the pointer
    // came from fopen: a heap pointer that is not a block start trips the
    // allocator's consistency check and aborts, exactly like glibc.
    if w.proc.heap.contains_range(stream) {
        match w.proc.heap_free(stream) {
            Ok(()) => {}
            Err(e) => {
                return Err(SimFault::Abort {
                    reason: e.to_string(),
                })
            }
        }
    }
    match close_result {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(EOF)),
    }
}

fn fflush(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    if stream == 0 {
        // fflush(NULL) flushes all streams — always succeeds unbuffered.
        return Ok(SimValue::Int(0));
    }
    let fd = file::read_fileno(w, stream)?;
    if w.kernel.fd_is_open(fd) {
        Ok(SimValue::Int(0))
    } else {
        // The authentic quirk: failure WITHOUT setting errno. §6 singles
        // out fflush as the one function that should set errno but was
        // not observed to.
        Ok(SimValue::Int(EOF))
    }
}

fn fread(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let ptr = ptr_arg(args, 0);
    let size = int_arg(args, 1) as u32;
    let nmemb = int_arg(args, 2) as u32;
    let stream = ptr_arg(args, 3);
    touch_buffer(w, stream, false)?;
    let fd = file::read_fileno(w, stream)?;
    let total = size.wrapping_mul(nmemb);
    if total == 0 {
        return Ok(SimValue::Int(0));
    }
    let mut got: Vec<u8> = Vec::new();
    if let Some(b) = file::take_ungetc(w, stream)? {
        got.push(b);
    }
    match w.kernel.read(fd, total - got.len() as u32) {
        Ok(bytes) => got.extend(bytes),
        Err(e) => {
            file::set_error(w, stream, true)?;
            return w.fail(e, SimValue::Int(0));
        }
    }
    w.proc.tick(got.len() as u64)?;
    w.proc.mem.write_bytes(ptr, &got)?;
    if (got.len() as u32) < total {
        file::set_eof(w, stream, true)?;
    }
    Ok(SimValue::Int(i64::from(got.len() as u32 / size)))
}

fn fwrite(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let ptr = ptr_arg(args, 0);
    let size = int_arg(args, 1) as u32;
    let nmemb = int_arg(args, 2) as u32;
    let stream = ptr_arg(args, 3);
    touch_buffer(w, stream, true)?;
    let fd = file::read_fileno(w, stream)?;
    let total = size.wrapping_mul(nmemb);
    if total == 0 {
        return Ok(SimValue::Int(0));
    }
    w.proc.tick(u64::from(total))?;
    let bytes = w.proc.mem.read_bytes(ptr, total)?;
    match w.kernel.write(fd, &bytes) {
        Ok(_) => Ok(SimValue::Int(i64::from(nmemb))),
        Err(e) => {
            file::set_error(w, stream, true)?;
            w.fail(e, SimValue::Int(0))
        }
    }
}

/// Touch the stream's buffer, as buffered stdio does on every I/O
/// operation. A legitimate stream has a zero buffer pointer (the
/// simulated stdio is unbuffered) or a pointer installed by
/// `setbuf`/`setvbuf`; a *corrupted* FILE object in accessible memory has
/// garbage here — chasing it is what makes real stdio crash on corrupted
/// streams ("the failures that remain undetected usually involve
/// corrupted data structures in accessible memory", §6).
fn touch_buffer(w: &mut World, stream: Addr, writing: bool) -> Result<(), SimFault> {
    let buf = w.proc.mem.read_u32(stream + file::OFF_BUFPTR)?;
    if buf != 0 {
        if writing {
            w.proc.mem.write_u8(buf, 0)?;
        } else {
            w.proc.mem.read_u8(buf)?;
        }
    }
    Ok(())
}

fn read_one(w: &mut World, stream: Addr) -> Result<Option<u8>, SimFault> {
    if let Some(b) = file::take_ungetc(w, stream)? {
        return Ok(Some(b));
    }
    touch_buffer(w, stream, false)?;
    let fd = file::read_fileno(w, stream)?;
    match w.kernel.read(fd, 1) {
        Ok(bytes) if bytes.is_empty() => {
            file::set_eof(w, stream, true)?;
            Ok(None)
        }
        Ok(bytes) => Ok(Some(bytes[0])),
        Err(e) => {
            file::set_error(w, stream, true)?;
            w.proc.set_errno(e);
            Ok(None)
        }
    }
}

fn fgets(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let n = int_arg(args, 1);
    let stream = ptr_arg(args, 2);
    if n <= 0 {
        return Ok(SimValue::NULL);
    }
    let mut written = 0u32;
    while i64::from(written) < n - 1 {
        w.proc.tick(1)?;
        match read_one(w, stream)? {
            None => break,
            Some(b) => {
                w.proc.mem.write_u8(s + written, b)?;
                written += 1;
                if b == b'\n' {
                    break;
                }
            }
        }
    }
    if written == 0 {
        return Ok(SimValue::NULL);
    }
    w.proc.mem.write_u8(s + written, 0)?;
    Ok(SimValue::Ptr(s))
}

fn fputs(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let stream = ptr_arg(args, 1);
    let len = c_strlen(w, s)?;
    let bytes = w.proc.mem.read_bytes(s, len)?;
    touch_buffer(w, stream, true)?;
    let fd = file::read_fileno(w, stream)?;
    match w.kernel.write(fd, &bytes) {
        Ok(_) => Ok(SimValue::Int(1)),
        Err(e) => {
            file::set_error(w, stream, true)?;
            w.fail(e, SimValue::Int(EOF))
        }
    }
}

fn fgetc(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    match read_one(w, stream)? {
        Some(b) => Ok(SimValue::Int(i64::from(b))),
        None => Ok(SimValue::Int(EOF)),
    }
}

fn fputc(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let c = (int_arg(args, 0) & 0xff) as u8;
    let stream = ptr_arg(args, 1);
    touch_buffer(w, stream, true)?;
    let fd = file::read_fileno(w, stream)?;
    match w.kernel.write(fd, &[c]) {
        Ok(_) => Ok(SimValue::Int(i64::from(c))),
        Err(e) => {
            file::set_error(w, stream, true)?;
            w.fail(e, SimValue::Int(EOF))
        }
    }
}

fn ungetc(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let c = int_arg(args, 0);
    let stream = ptr_arg(args, 1);
    if c == EOF {
        return Ok(SimValue::Int(EOF));
    }
    let c = (c & 0xff) as u8;
    file::store_ungetc(w, stream, c)?;
    Ok(SimValue::Int(i64::from(c)))
}

fn puts(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let len = c_strlen(w, s)?;
    let mut bytes = w.proc.mem.read_bytes(s, len)?;
    bytes.push(b'\n');
    match w.kernel.write(1, &bytes) {
        Ok(_) => Ok(SimValue::Int(i64::from(len) + 1)),
        Err(e) => w.fail(e, SimValue::Int(EOF)),
    }
}

fn getchar(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let _ = args;
    let stdin = w.stdin_file;
    match read_one(w, stdin)? {
        Some(b) => Ok(SimValue::Int(i64::from(b))),
        None => Ok(SimValue::Int(EOF)),
    }
}

fn putchar(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let c = (int_arg(args, 0) & 0xff) as u8;
    match w.kernel.write(1, &[c]) {
        Ok(_) => Ok(SimValue::Int(i64::from(c))),
        Err(e) => w.fail(e, SimValue::Int(EOF)),
    }
}

/// The infamous `gets`: reads a line into the caller's buffer with no
/// bound whatsoever.
fn gets(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let bytes = match w.kernel.read(0, 1) {
            Ok(b) => b,
            Err(e) => return w.fail(e, SimValue::NULL),
        };
        match bytes.first() {
            None | Some(b'\n') => break,
            Some(&b) => {
                w.proc.mem.write_u8(s.wrapping_add(i), b)?;
                i += 1;
            }
        }
    }
    if i == 0 {
        return Ok(SimValue::NULL);
    }
    w.proc.mem.write_u8(s.wrapping_add(i), 0)?;
    Ok(SimValue::Ptr(s))
}

fn fseek(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let off = int_arg(args, 1);
    let whence = int_arg(args, 2) as i32;
    let fd = file::read_fileno(w, stream)?;
    match w.kernel.lseek(fd, off, whence) {
        Ok(_) => {
            file::set_eof(w, stream, false)?;
            Ok(SimValue::Int(0))
        }
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn ftell(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let fd = file::read_fileno(w, stream)?;
    match w.kernel.lseek(fd, 0, 1) {
        Ok(pos) => Ok(SimValue::Int(i64::from(pos))),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn rewind(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let fd = file::read_fileno(w, stream)?;
    let _ = w.kernel.lseek(fd, 0, 0);
    file::set_eof(w, stream, false)?;
    file::set_error(w, stream, false)?;
    Ok(SimValue::Void)
}

fn feof(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let v = w.proc.mem.read_i32(stream + file::OFF_EOF)?;
    Ok(SimValue::Int(i64::from(v)))
}

fn ferror(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let v = w.proc.mem.read_i32(stream + file::OFF_ERROR)?;
    Ok(SimValue::Int(i64::from(v)))
}

fn clearerr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    file::set_eof(w, stream, false)?;
    file::set_error(w, stream, false)?;
    Ok(SimValue::Void)
}

fn fileno(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let fd = file::read_fileno(w, stream)?;
    Ok(SimValue::Int(i64::from(fd)))
}

fn setbuf(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let buf = ptr_arg(args, 1);
    w.proc.mem.write_u32(stream + file::OFF_BUFPTR, buf)?;
    Ok(SimValue::Void)
}

fn setvbuf(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let buf = ptr_arg(args, 1);
    let mode = int_arg(args, 2);
    if !(0..=2).contains(&mode) {
        return w.fail(EINVAL, SimValue::Int(-1));
    }
    w.proc.mem.write_u32(stream + file::OFF_BUFPTR, buf)?;
    w.proc
        .mem
        .write_u32(stream + file::OFF_BUFMODE, mode as u32)?;
    Ok(SimValue::Int(0))
}

fn tmpfile(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let _ = args;
    w.tmp_counter += 1;
    let name = format!("/tmp/tmpf{:06}", w.tmp_counter);
    let flags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: true,
        append: false,
    };
    match w.kernel.open(&name, flags, 0o600) {
        Ok(fd) => alloc_file(w, fd, file::F_READ | file::F_WRITE),
        Err(e) => w.fail(e, SimValue::NULL),
    }
}

fn tmpnam(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    w.tmp_counter += 1;
    let name = format!("/tmp/tmpnam{:06}", w.tmp_counter);
    let target = if s == 0 {
        w.proc.named_static("tmpnam_buf", 32)
    } else {
        s
    };
    w.proc.write_cstr(target, name.as_bytes())?;
    Ok(SimValue::Ptr(target))
}

// ---------------------------------------------------------------------
// Formatted output/input
// ---------------------------------------------------------------------

/// Render a printf-style format with `varargs`, reading the format (and
/// any `%s` argument strings) from simulated memory. Supports the
/// directives the four workload programs and the Ballista pools use:
/// `%d %i %u %x %X %o %c %s %f %g %e %p %%` with `-`/`0` flags, width,
/// precision, and the `l` length modifier — plus `%n`, which *writes*
/// the running count through a pointer argument (the classic
/// format-string attack vector).
pub(crate) fn format_c(
    w: &mut World,
    fmt: Addr,
    varargs: &[SimValue],
) -> Result<Vec<u8>, SimFault> {
    let fmt_bytes = w.proc.read_cstr(fmt)?;
    let mut out = Vec::new();
    let mut args = varargs.iter().copied();
    let mut i = 0usize;
    while i < fmt_bytes.len() {
        w.proc.tick(1)?;
        let c = fmt_bytes[i];
        if c != b'%' {
            out.push(c);
            i += 1;
            continue;
        }
        i += 1;
        if i >= fmt_bytes.len() {
            out.push(b'%');
            break;
        }
        // Flags.
        let mut left = false;
        let mut zero = false;
        while i < fmt_bytes.len() {
            match fmt_bytes[i] {
                b'-' => left = true,
                b'0' => zero = true,
                b'+' | b' ' | b'#' => {}
                _ => break,
            }
            i += 1;
        }
        // Width.
        let mut width = 0usize;
        while i < fmt_bytes.len() && fmt_bytes[i].is_ascii_digit() {
            width = width * 10 + (fmt_bytes[i] - b'0') as usize;
            i += 1;
        }
        // Precision.
        let mut precision: Option<usize> = None;
        if i < fmt_bytes.len() && fmt_bytes[i] == b'.' {
            i += 1;
            let mut p = 0usize;
            while i < fmt_bytes.len() && fmt_bytes[i].is_ascii_digit() {
                p = p * 10 + (fmt_bytes[i] - b'0') as usize;
                i += 1;
            }
            precision = Some(p);
        }
        // Length modifiers (ignored: long == int on the target).
        while i < fmt_bytes.len() && matches!(fmt_bytes[i], b'l' | b'h' | b'z') {
            i += 1;
        }
        if i >= fmt_bytes.len() {
            break;
        }
        let conv = fmt_bytes[i];
        i += 1;
        let mut next = || args.next().unwrap_or(SimValue::Int(0));
        let piece: Vec<u8> = match conv {
            b'%' => vec![b'%'],
            b'd' | b'i' => format!("{}", next().as_int() as i32).into_bytes(),
            b'u' => format!("{}", next().as_int() as u32).into_bytes(),
            b'x' => format!("{:x}", next().as_int() as u32).into_bytes(),
            b'X' => format!("{:X}", next().as_int() as u32).into_bytes(),
            b'o' => format!("{:o}", next().as_int() as u32).into_bytes(),
            b'c' => vec![(next().as_int() & 0xff) as u8],
            b'p' => format!("0x{:x}", next().as_ptr()).into_bytes(),
            b'f' | b'g' | b'e' => {
                let v = next().as_double();
                let p = precision.unwrap_or(6);
                format!("{v:.p$}").into_bytes()
            }
            b's' => {
                let ptr = next().as_ptr();
                // Authentic: %s dereferences blindly.
                let s = w.proc.read_cstr(ptr)?;
                match precision {
                    Some(p) => s.into_iter().take(p).collect(),
                    None => s,
                }
            }
            b'n' => {
                // Write the byte count so far through the pointer.
                let ptr = next().as_ptr();
                w.proc.mem.write_i32(ptr, out.len() as i32)?;
                Vec::new()
            }
            other => vec![b'%', other],
        };
        // Apply width/padding.
        if piece.len() < width {
            let pad = width - piece.len();
            if left {
                out.extend(piece);
                out.extend(std::iter::repeat_n(b' ', pad));
            } else {
                let padc = if zero && conv != b's' { b'0' } else { b' ' };
                out.extend(std::iter::repeat_n(padc, pad));
                out.extend(piece);
            }
        } else {
            out.extend(piece);
        }
    }
    Ok(out)
}

fn sprintf(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let fmt = ptr_arg(args, 1);
    let rendered = format_c(w, fmt, &args[2.min(args.len())..])?;
    // Unbounded write — the reason sprintf is a smashing vector.
    w.proc.mem.write_bytes(s, &rendered)?;
    w.proc.mem.write_u8(s + rendered.len() as u32, 0)?;
    Ok(SimValue::Int(rendered.len() as i64))
}

fn snprintf(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let maxlen = int_arg(args, 1) as u32;
    let fmt = ptr_arg(args, 2);
    let rendered = format_c(w, fmt, &args[3.min(args.len())..])?;
    if maxlen > 0 {
        let n = rendered.len().min(maxlen as usize - 1);
        w.proc.mem.write_bytes(s, &rendered[..n])?;
        w.proc.mem.write_u8(s + n as u32, 0)?;
    }
    Ok(SimValue::Int(rendered.len() as i64))
}

fn fprintf(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stream = ptr_arg(args, 0);
    let fmt = ptr_arg(args, 1);
    let rendered = format_c(w, fmt, &args[2.min(args.len())..])?;
    touch_buffer(w, stream, true)?;
    let fd = file::read_fileno(w, stream)?;
    match w.kernel.write(fd, &rendered) {
        Ok(_) => Ok(SimValue::Int(rendered.len() as i64)),
        Err(e) => {
            file::set_error(w, stream, true)?;
            w.fail(e, SimValue::Int(-1))
        }
    }
}

fn sscanf(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let input_addr = ptr_arg(args, 0);
    let fmt_addr = ptr_arg(args, 1);
    let input = w.proc.read_cstr(input_addr)?;
    let fmt = w.proc.read_cstr(fmt_addr)?;
    let mut out_args = args[2.min(args.len())..].iter().copied();
    let mut pos = 0usize;
    let mut converted = 0i64;
    let mut fi = 0usize;
    while fi < fmt.len() {
        w.proc.tick(1)?;
        let fc = fmt[fi];
        if fc.is_ascii_whitespace() {
            while pos < input.len() && input[pos].is_ascii_whitespace() {
                pos += 1;
            }
            fi += 1;
            continue;
        }
        if fc != b'%' {
            if pos < input.len() && input[pos] == fc {
                pos += 1;
                fi += 1;
                continue;
            }
            break;
        }
        fi += 1;
        // Length modifier.
        let mut long_mod = false;
        while fi < fmt.len() && matches!(fmt[fi], b'l' | b'h') {
            long_mod = fmt[fi] == b'l';
            fi += 1;
        }
        if fi >= fmt.len() {
            break;
        }
        let conv = fmt[fi];
        fi += 1;
        // Skip leading whitespace for all conversions except %c.
        if conv != b'c' {
            while pos < input.len() && input[pos].is_ascii_whitespace() {
                pos += 1;
            }
        }
        if pos >= input.len() && conv != b'%' {
            if converted == 0 {
                converted = EOF;
            }
            break;
        }
        match conv {
            b'%' => {
                if pos < input.len() && input[pos] == b'%' {
                    pos += 1;
                } else {
                    break;
                }
            }
            b'd' | b'u' | b'i' | b'x' => {
                let start = pos;
                if pos < input.len() && (input[pos] == b'-' || input[pos] == b'+') {
                    pos += 1;
                }
                let radix = if conv == b'x' { 16 } else { 10 };
                let digit_start = pos;
                while pos < input.len() && (input[pos] as char).is_digit(radix) {
                    pos += 1;
                }
                if pos == digit_start {
                    break;
                }
                let text = std::str::from_utf8(&input[start..pos]).unwrap_or("0");
                let value = if radix == 16 {
                    i64::from_str_radix(text.trim_start_matches('+'), 16).unwrap_or(0)
                } else {
                    text.parse::<i64>().unwrap_or(0)
                };
                let ptr = out_args.next().unwrap_or(SimValue::Int(0)).as_ptr();
                w.proc.mem.write_i32(ptr, value as i32)?;
                converted += 1;
            }
            b's' => {
                let start = pos;
                while pos < input.len() && !input[pos].is_ascii_whitespace() {
                    pos += 1;
                }
                let ptr = out_args.next().unwrap_or(SimValue::Int(0)).as_ptr();
                // Authentic: %s stores unbounded.
                w.proc.mem.write_bytes(ptr, &input[start..pos])?;
                w.proc.mem.write_u8(ptr + (pos - start) as u32, 0)?;
                converted += 1;
            }
            b'c' => {
                let ptr = out_args.next().unwrap_or(SimValue::Int(0)).as_ptr();
                w.proc.mem.write_u8(ptr, input[pos])?;
                pos += 1;
                converted += 1;
            }
            b'f' | b'g' | b'e' => {
                let start = pos;
                if pos < input.len() && (input[pos] == b'-' || input[pos] == b'+') {
                    pos += 1;
                }
                while pos < input.len()
                    && (input[pos].is_ascii_digit()
                        || matches!(input[pos], b'.' | b'e' | b'E' | b'-' | b'+'))
                {
                    pos += 1;
                }
                let text = std::str::from_utf8(&input[start..pos]).unwrap_or("0");
                let value: f64 = text.parse().unwrap_or(0.0);
                let ptr = out_args.next().unwrap_or(SimValue::Int(0)).as_ptr();
                if long_mod {
                    w.proc.mem.write_f64(ptr, value)?;
                } else {
                    w.proc.mem.write_u32(ptr, (value as f32).to_bits())?;
                }
                converted += 1;
            }
            _ => break,
        }
    }
    Ok(SimValue::Int(converted))
}

fn perror(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let msg = healers_os::errno::strerror(w.proc.errno());
    let line = if s == 0 {
        format!("{msg}\n")
    } else {
        let prefix = w.read_cstr_lossy(s)?;
        if prefix.is_empty() {
            format!("{msg}\n")
        } else {
            format!("{prefix}: {msg}\n")
        }
    };
    let _ = w.kernel.write(2, line.as_bytes());
    Ok(SimValue::Void)
}

fn remove(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let path = ptr_arg(args, 0);
    let name = w.read_cstr_lossy(path)?;
    let result = w
        .kernel
        .vfs
        .unlink(&name)
        .or_else(|_| w.kernel.vfs.rmdir(&name));
    match result {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

fn rename(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let old = ptr_arg(args, 0);
    let new = ptr_arg(args, 1);
    let old_name = w.read_cstr_lossy(old)?;
    let new_name = w.read_cstr_lossy(new)?;
    match w.kernel.vfs.rename(&old_name, &new_name) {
        Ok(()) => Ok(SimValue::Int(0)),
        Err(e) => w.fail(e, SimValue::Int(-1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Libc;
    use healers_simproc::INVALID_PTR;

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    fn open_stream(libc: &Libc, w: &mut World, path: &str, mode: &str) -> Addr {
        let pa = w.alloc_cstr(path);
        let ma = w.alloc_cstr(mode);
        let r = libc.call(w, "fopen", &[p(pa), p(ma)]).unwrap();
        assert_ne!(r, SimValue::NULL, "fopen({path}, {mode}) failed");
        r.as_ptr()
    }

    #[test]
    fn fopen_write_read_roundtrip() {
        let (libc, mut w) = setup();
        let f = open_stream(&libc, &mut w, "/tmp/x", "w");
        let data = w.alloc_cstr("payload");
        libc.call(&mut w, "fputs", &[p(data), p(f)]).unwrap();
        libc.call(&mut w, "fclose", &[p(f)]).unwrap();

        let f = open_stream(&libc, &mut w, "/tmp/x", "r");
        let buf = w.alloc_buf(32);
        let r = libc
            .call(&mut w, "fgets", &[p(buf), SimValue::Int(32), p(f)])
            .unwrap();
        assert_eq!(r, p(buf));
        assert_eq!(w.read_cstr_lossy(buf).unwrap(), "payload");
        libc.call(&mut w, "fclose", &[p(f)]).unwrap();
    }

    #[test]
    fn fopen_invalid_mode_char_is_einval() {
        let (libc, mut w) = setup();
        let pa = w.alloc_cstr("/tmp/x");
        let ma = w.alloc_cstr("q");
        let r = libc.call(&mut w, "fopen", &[p(pa), p(ma)]).unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn fopen_long_mode_string_crashes() {
        // §6: fopen crashes when the mode string is invalid. The internal
        // 8-byte mode buffer overflows into the guard page.
        let (libc, mut w) = setup();
        let pa = w.alloc_cstr("/tmp/x");
        let ma = w.alloc_cstr("this mode string is far too long");
        let err = libc.call(&mut w, "fopen", &[p(pa), p(ma)]).unwrap_err();
        assert_eq!(err.segv_addr(), Some(MODE_SCRATCH_PAGE + PAGE_SIZE));
    }

    #[test]
    fn fopen_copes_with_invalid_file_names() {
        // §6: fopen "can cope with invalid file names".
        let (libc, mut w) = setup();
        let pa = w.alloc_cstr("/no/such/deep/path");
        let ma = w.alloc_cstr("r");
        let r = libc.call(&mut w, "fopen", &[p(pa), p(ma)]).unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_ne!(w.proc.errno(), 0);
    }

    #[test]
    fn fopen_null_mode_crashes() {
        let (libc, mut w) = setup();
        let pa = w.alloc_cstr("/tmp/x");
        assert!(libc
            .call(&mut w, "fopen", &[p(pa), SimValue::NULL])
            .is_err());
    }

    #[test]
    fn fdopen_sets_spurious_errno_on_success() {
        // §6: fdopen sometimes sets errno even though a valid stream is
        // returned — the "inconsistent error return code" class.
        let (libc, mut w) = setup();
        let fd = w
            .kernel
            .open("/etc/passwd", OpenFlags::read_only(), 0)
            .unwrap();
        let ma = w.alloc_cstr("r");
        w.proc.set_errno(0);
        let r = libc
            .call(&mut w, "fdopen", &[SimValue::Int(i64::from(fd)), p(ma)])
            .unwrap();
        assert_ne!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), healers_os::errno::ENOTTY);
    }

    #[test]
    fn fdopen_bad_fd_is_ebadf() {
        let (libc, mut w) = setup();
        let ma = w.alloc_cstr("r");
        let r = libc
            .call(&mut w, "fdopen", &[SimValue::Int(99), p(ma)])
            .unwrap();
        assert_eq!(r, SimValue::NULL);
        assert_eq!(w.proc.errno(), EBADF);
    }

    #[test]
    fn fflush_bad_stream_returns_eof_without_errno() {
        // §6: fflush is supposed to set errno but does not.
        let (libc, mut w) = setup();
        let junk = w.alloc_buf(FILE_SIZE); // readable garbage, fd field = 0-init = fd 0 is open!
        w.proc.mem.write_i32(junk + file::OFF_FILENO, -77).unwrap();
        w.proc.set_errno(0);
        let r = libc.call(&mut w, "fflush", &[p(junk)]).unwrap();
        assert_eq!(r, SimValue::Int(EOF));
        assert_eq!(w.proc.errno(), 0);
    }

    #[test]
    fn fflush_null_flushes_all() {
        let (libc, mut w) = setup();
        let r = libc.call(&mut w, "fflush", &[SimValue::NULL]).unwrap();
        assert_eq!(r, SimValue::Int(0));
    }

    #[test]
    fn fflush_invalid_pointer_crashes() {
        let (libc, mut w) = setup();
        assert!(libc.call(&mut w, "fflush", &[p(INVALID_PTR)]).is_err());
    }

    #[test]
    fn fread_fwrite_binary_roundtrip() {
        let (libc, mut w) = setup();
        let f = open_stream(&libc, &mut w, "/tmp/bin", "w");
        let src = w.alloc_buf(16);
        w.proc.mem.write_bytes(src, &[9u8; 16]).unwrap();
        let r = libc
            .call(
                &mut w,
                "fwrite",
                &[p(src), SimValue::Int(4), SimValue::Int(4), p(f)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(4));
        libc.call(&mut w, "fclose", &[p(f)]).unwrap();

        let f = open_stream(&libc, &mut w, "/tmp/bin", "r");
        let dst = w.alloc_buf(16);
        let r = libc
            .call(
                &mut w,
                "fread",
                &[p(dst), SimValue::Int(4), SimValue::Int(4), p(f)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(4));
        assert_eq!(w.proc.mem.read_bytes(dst, 16).unwrap(), vec![9u8; 16]);
        // EOF now.
        let r = libc
            .call(
                &mut w,
                "fread",
                &[p(dst), SimValue::Int(1), SimValue::Int(1), p(f)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
        let r = libc.call(&mut w, "feof", &[p(f)]).unwrap();
        assert_eq!(r, SimValue::Int(1));
    }

    #[test]
    fn fgetc_ungetc_interplay() {
        let (libc, mut w) = setup();
        w.kernel.write_file("/tmp/c", b"AB").unwrap();
        let f = open_stream(&libc, &mut w, "/tmp/c", "r");
        let a = libc.call(&mut w, "fgetc", &[p(f)]).unwrap();
        assert_eq!(a, SimValue::Int(i64::from(b'A')));
        libc.call(&mut w, "ungetc", &[SimValue::Int(i64::from(b'Z')), p(f)])
            .unwrap();
        let z = libc.call(&mut w, "fgetc", &[p(f)]).unwrap();
        assert_eq!(z, SimValue::Int(i64::from(b'Z')));
        let b = libc.call(&mut w, "fgetc", &[p(f)]).unwrap();
        assert_eq!(b, SimValue::Int(i64::from(b'B')));
        let e = libc.call(&mut w, "fgetc", &[p(f)]).unwrap();
        assert_eq!(e, SimValue::Int(EOF));
    }

    #[test]
    fn fseek_ftell_rewind() {
        let (libc, mut w) = setup();
        w.kernel.write_file("/tmp/s", b"0123456789").unwrap();
        let f = open_stream(&libc, &mut w, "/tmp/s", "r");
        libc.call(&mut w, "fseek", &[p(f), SimValue::Int(4), SimValue::Int(0)])
            .unwrap();
        assert_eq!(
            libc.call(&mut w, "ftell", &[p(f)]).unwrap(),
            SimValue::Int(4)
        );
        let c = libc.call(&mut w, "fgetc", &[p(f)]).unwrap();
        assert_eq!(c, SimValue::Int(i64::from(b'4')));
        libc.call(&mut w, "rewind", &[p(f)]).unwrap();
        assert_eq!(
            libc.call(&mut w, "ftell", &[p(f)]).unwrap(),
            SimValue::Int(0)
        );
        // Invalid whence.
        let r = libc
            .call(
                &mut w,
                "fseek",
                &[p(f), SimValue::Int(0), SimValue::Int(42)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn sprintf_formats_and_overflows() {
        let (libc, mut w) = setup();
        let fmt = w.alloc_cstr("x=%d s=%s h=%04x c=%c");
        let sval = w.alloc_cstr("str");
        let buf = w.alloc_buf(64);
        let r = libc
            .call(
                &mut w,
                "sprintf",
                &[
                    p(buf),
                    p(fmt),
                    SimValue::Int(-7),
                    p(sval),
                    SimValue::Int(0xab),
                    SimValue::Int(i64::from(b'!')),
                ],
            )
            .unwrap();
        assert_eq!(w.read_cstr_lossy(buf).unwrap(), "x=-7 s=str h=00ab c=!");
        assert_eq!(r.as_int() as usize, "x=-7 s=str h=00ab c=!".len());

        // Overflow: guarded destination too small.
        let mut wg = World::new_guarded();
        let libc = Libc::standard();
        let fmt = wg.alloc_cstr("%s%s%s%s");
        let long = wg.alloc_cstr("AAAAAAAAAAAAAAAA");
        let small = wg.alloc_buf(8);
        let err = libc
            .call(
                &mut wg,
                "sprintf",
                &[p(small), p(fmt), p(long), p(long), p(long), p(long)],
            )
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(small + 8));
    }

    #[test]
    fn snprintf_is_bounded() {
        let (libc, mut w) = setup();
        let fmt = w.alloc_cstr("%d%d%d");
        let buf = w.alloc_buf(8);
        let r = libc
            .call(
                &mut w,
                "snprintf",
                &[
                    p(buf),
                    SimValue::Int(5),
                    p(fmt),
                    SimValue::Int(111),
                    SimValue::Int(222),
                    SimValue::Int(333),
                ],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(9)); // full length reported
        assert_eq!(w.read_cstr_lossy(buf).unwrap(), "1112"); // truncated
    }

    #[test]
    fn percent_n_writes_through_pointer() {
        let (libc, mut w) = setup();
        let fmt = w.alloc_cstr("abc%nxyz");
        let buf = w.alloc_buf(16);
        let counter = w.alloc_buf(4);
        libc.call(&mut w, "sprintf", &[p(buf), p(fmt), p(counter)])
            .unwrap();
        assert_eq!(w.proc.mem.read_i32(counter).unwrap(), 3);
        assert_eq!(w.read_cstr_lossy(buf).unwrap(), "abcxyz");
    }

    #[test]
    fn sscanf_parses_mixed() {
        let (libc, mut w) = setup();
        let input = w.alloc_cstr("42 hello -7");
        let fmt = w.alloc_cstr("%d %s %d");
        let a = w.alloc_buf(4);
        let s = w.alloc_buf(16);
        let b = w.alloc_buf(4);
        let r = libc
            .call(&mut w, "sscanf", &[p(input), p(fmt), p(a), p(s), p(b)])
            .unwrap();
        assert_eq!(r, SimValue::Int(3));
        assert_eq!(w.proc.mem.read_i32(a).unwrap(), 42);
        assert_eq!(w.read_cstr_lossy(s).unwrap(), "hello");
        assert_eq!(w.proc.mem.read_i32(b).unwrap(), -7);
    }

    #[test]
    fn sscanf_empty_input_returns_eof() {
        let (libc, mut w) = setup();
        let input = w.alloc_cstr("");
        let fmt = w.alloc_cstr("%d");
        let a = w.alloc_buf(4);
        let r = libc
            .call(&mut w, "sscanf", &[p(input), p(fmt), p(a)])
            .unwrap();
        assert_eq!(r, SimValue::Int(EOF));
    }

    #[test]
    fn gets_overflows_without_bound() {
        let libc = Libc::standard();
        let mut w = World::new_guarded();
        w.kernel.type_input(0, b"longer than the buffer\n");
        let buf = w.alloc_buf(4);
        let err = libc.call(&mut w, "gets", &[p(buf)]).unwrap_err();
        assert_eq!(err.segv_addr(), Some(buf + 4));
    }

    #[test]
    fn fclose_heap_garbage_aborts() {
        let (libc, mut w) = setup();
        let block = w.alloc_buf(FILE_SIZE);
        // Interior pointer: not a block start → allocator consistency
        // abort, like glibc's free().
        let interior = block + 4;
        w.proc
            .mem
            .write_i32(interior + file::OFF_FILENO, 1)
            .unwrap();
        let err = libc.call(&mut w, "fclose", &[p(interior)]).unwrap_err();
        assert!(err.is_abort());
    }

    #[test]
    fn setvbuf_validates_mode() {
        let (libc, mut w) = setup();
        let f = open_stream(&libc, &mut w, "/tmp/v", "w");
        let r = libc
            .call(
                &mut w,
                "setvbuf",
                &[p(f), SimValue::NULL, SimValue::Int(1), SimValue::Int(0)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
        let r = libc
            .call(
                &mut w,
                "setvbuf",
                &[p(f), SimValue::NULL, SimValue::Int(7), SimValue::Int(0)],
            )
            .unwrap();
        assert_eq!(r, SimValue::Int(-1));
        assert_eq!(w.proc.errno(), EINVAL);
    }

    #[test]
    fn tmpfile_and_tmpnam() {
        let (libc, mut w) = setup();
        let f = libc.call(&mut w, "tmpfile", &[]).unwrap();
        assert_ne!(f, SimValue::NULL);
        let name = libc.call(&mut w, "tmpnam", &[SimValue::NULL]).unwrap();
        let s = w.read_cstr_lossy(name.as_ptr()).unwrap();
        assert!(s.starts_with("/tmp/"));
        let buf = w.alloc_buf(32);
        let name2 = libc.call(&mut w, "tmpnam", &[p(buf)]).unwrap();
        assert_eq!(name2, p(buf));
    }

    #[test]
    fn remove_and_rename() {
        let (libc, mut w) = setup();
        w.kernel.write_file("/tmp/old", b"x").unwrap();
        let old = w.alloc_cstr("/tmp/old");
        let newp = w.alloc_cstr("/tmp/new");
        let r = libc.call(&mut w, "rename", &[p(old), p(newp)]).unwrap();
        assert_eq!(r, SimValue::Int(0));
        let r = libc.call(&mut w, "remove", &[p(newp)]).unwrap();
        assert_eq!(r, SimValue::Int(0));
        let r = libc.call(&mut w, "remove", &[p(newp)]).unwrap();
        assert_eq!(r, SimValue::Int(-1));
    }

    #[test]
    fn puts_and_perror_reach_the_tty() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("out");
        libc.call(&mut w, "puts", &[p(s)]).unwrap();
        w.proc.set_errno(EINVAL);
        let pfx = w.alloc_cstr("ctx");
        libc.call(&mut w, "perror", &[p(pfx)]).unwrap();
        let out = String::from_utf8_lossy(w.kernel.tty_output(0)).into_owned();
        assert!(out.contains("out\n"));
        assert!(out.contains("ctx: Invalid argument"));
    }

    #[test]
    fn fileno_returns_raw_field() {
        let (libc, mut w) = setup();
        let f = open_stream(&libc, &mut w, "/tmp/fn", "w");
        let fd = libc.call(&mut w, "fileno", &[p(f)]).unwrap();
        assert!(fd.as_int() >= 3);
        // On garbage memory it returns garbage, not an error.
        let junk = w.alloc_buf(FILE_SIZE);
        w.proc.mem.write_i32(junk + file::OFF_FILENO, -999).unwrap();
        let fd = libc.call(&mut w, "fileno", &[p(junk)]).unwrap();
        assert_eq!(fd, SimValue::Int(-999));
    }
}
