//! `string.h`: the classic unchecked memory and string functions.
//!
//! None of these validate their pointer arguments — exactly like the
//! real library, which is why the Ballista suite crashes them and why the
//! paper's wrapper exists. Crashes here are genuine memory faults raised
//! by the simulated address space.

use healers_os::errno::ENOMEM;
use healers_simproc::{Addr, SimFault, SimValue};

use crate::registry::CFuncImpl;
use crate::world::{int_arg, ptr_arg, World};

/// Name → implementation table for this module.
pub(crate) fn funcs() -> Vec<(&'static str, CFuncImpl)> {
    vec![
        ("strcpy", strcpy),
        ("strncpy", strncpy),
        ("strcat", strcat),
        ("strncat", strncat),
        ("strcmp", strcmp),
        ("strncmp", strncmp),
        ("strlen", strlen),
        ("strchr", strchr),
        ("strrchr", strrchr),
        ("strstr", strstr),
        ("strpbrk", strpbrk),
        ("strspn", strspn),
        ("strcspn", strcspn),
        ("strtok", strtok),
        ("strdup", strdup),
        ("strcoll", strcmp), // the C locale collates bytewise
        ("strxfrm", strxfrm),
        ("strerror", strerror),
        ("memcpy", memcpy),
        ("memmove", memmove),
        ("memset", memset),
        ("memcmp", memcmp),
        ("memchr", memchr),
        ("strcasecmp", strcasecmp),
        ("strncasecmp", strncasecmp),
        ("strnlen", strnlen),
        ("strsep", strsep),
        ("index", strchr),
        ("rindex", strrchr),
        ("bzero", bzero),
        ("bcopy", bcopy),
        ("bcmp", memcmp),
    ]
}

/// Read the length of the string at `s` (internal strlen; no NUL write).
pub(crate) fn c_strlen(w: &mut World, s: Addr) -> Result<u32, SimFault> {
    let mut n = 0u32;
    loop {
        w.proc.tick(1)?;
        if w.proc.mem.read_u8(s.wrapping_add(n))? == 0 {
            return Ok(n);
        }
        n = n.wrapping_add(1);
    }
}

fn strcpy(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
        w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
        if b == 0 {
            return Ok(SimValue::Ptr(dst));
        }
        i = i.wrapping_add(1);
    }
}

fn strncpy(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32; // size_t: negative becomes huge, authentically
    let mut copying = true;
    for i in 0..n {
        w.proc.tick(1)?;
        let b = if copying {
            let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
            if b == 0 {
                copying = false;
            }
            b
        } else {
            0
        };
        w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
    }
    Ok(SimValue::Ptr(dst))
}

fn strcat(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let end = c_strlen(w, dst)?;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
        w.proc.mem.write_u8(dst.wrapping_add(end + i), b)?;
        if b == 0 {
            return Ok(SimValue::Ptr(dst));
        }
        i = i.wrapping_add(1);
    }
}

fn strncat(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    let end = c_strlen(w, dst)?;
    let mut i = 0u32;
    while i < n {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
        if b == 0 {
            break;
        }
        w.proc.mem.write_u8(dst.wrapping_add(end + i), b)?;
        i += 1;
    }
    w.proc.mem.write_u8(dst.wrapping_add(end + i), 0)?;
    Ok(SimValue::Ptr(dst))
}

fn strcmp(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (a, b) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let x = w.proc.mem.read_u8(a.wrapping_add(i))?;
        let y = w.proc.mem.read_u8(b.wrapping_add(i))?;
        if x != y || x == 0 {
            return Ok(SimValue::Int(i64::from(x) - i64::from(y)));
        }
        i = i.wrapping_add(1);
    }
}

fn strncmp(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (a, b) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        let x = w.proc.mem.read_u8(a.wrapping_add(i))?;
        let y = w.proc.mem.read_u8(b.wrapping_add(i))?;
        if x != y || x == 0 {
            return Ok(SimValue::Int(i64::from(x) - i64::from(y)));
        }
    }
    Ok(SimValue::Int(0))
}

fn strlen(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let n = c_strlen(w, ptr_arg(args, 0))?;
    Ok(SimValue::Int(i64::from(n)))
}

fn strchr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let c = (int_arg(args, 1) & 0xff) as u8;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b == c {
            return Ok(SimValue::Ptr(s.wrapping_add(i)));
        }
        if b == 0 {
            return Ok(SimValue::NULL);
        }
        i = i.wrapping_add(1);
    }
}

fn strrchr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let c = (int_arg(args, 1) & 0xff) as u8;
    let mut found: Option<Addr> = None;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b == c {
            found = Some(s.wrapping_add(i));
        }
        if b == 0 {
            return Ok(found.map_or(SimValue::NULL, SimValue::Ptr));
        }
        i = i.wrapping_add(1);
    }
}

fn strstr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let hay = ptr_arg(args, 0);
    let needle = ptr_arg(args, 1);
    let nlen = c_strlen(w, needle)?;
    if nlen == 0 {
        // Still touches the haystack, like the real function.
        w.proc.mem.read_u8(hay)?;
        return Ok(SimValue::Ptr(hay));
    }
    let needle_bytes = w.proc.mem.read_bytes(needle, nlen)?;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(hay.wrapping_add(i))?;
        if b == 0 {
            return Ok(SimValue::NULL);
        }
        if b == needle_bytes[0] {
            let mut ok = true;
            for (j, nb) in needle_bytes.iter().enumerate().skip(1) {
                w.proc.tick(1)?;
                let hb = w.proc.mem.read_u8(hay.wrapping_add(i + j as u32))?;
                if hb != *nb {
                    ok = false;
                    break;
                }
                if hb == 0 {
                    return Ok(SimValue::NULL);
                }
            }
            if ok {
                return Ok(SimValue::Ptr(hay.wrapping_add(i)));
            }
        }
        i = i.wrapping_add(1);
    }
}

fn read_set(w: &mut World, set: Addr) -> Result<Vec<u8>, SimFault> {
    w.proc.read_cstr(set)
}

fn strpbrk(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let accept = read_set(w, ptr_arg(args, 1))?;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b == 0 {
            return Ok(SimValue::NULL);
        }
        if accept.contains(&b) {
            return Ok(SimValue::Ptr(s.wrapping_add(i)));
        }
        i = i.wrapping_add(1);
    }
}

fn strspn(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let accept = read_set(w, ptr_arg(args, 1))?;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b == 0 || !accept.contains(&b) {
            return Ok(SimValue::Int(i64::from(i)));
        }
        i = i.wrapping_add(1);
    }
}

fn strcspn(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let reject = read_set(w, ptr_arg(args, 1))?;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(s.wrapping_add(i))?;
        if b == 0 || reject.contains(&b) {
            return Ok(SimValue::Int(i64::from(i)));
        }
        i = i.wrapping_add(1);
    }
}

/// `strtok` keeps its scan position in libc-internal static storage, like
/// the real (non-`_r`) function. Calling `strtok(NULL, …)` with no prior
/// token genuinely dereferences a null saved pointer — an authentic crash
/// the Ballista suite finds.
fn strtok(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let state = w.proc.named_static("strtok_save", 4);
    let s = ptr_arg(args, 0);
    let delim = read_set(w, ptr_arg(args, 1))?;
    let mut cur = if s != 0 {
        s
    } else {
        w.proc.mem.read_u32(state)?
    };

    // Skip leading delimiters.
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(cur)?;
        if b == 0 {
            w.proc.mem.write_u32(state, cur)?;
            return Ok(SimValue::NULL);
        }
        if !delim.contains(&b) {
            break;
        }
        cur = cur.wrapping_add(1);
    }
    let token = cur;
    // Find the end of the token.
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(cur)?;
        if b == 0 {
            w.proc.mem.write_u32(state, cur)?;
            return Ok(SimValue::Ptr(token));
        }
        if delim.contains(&b) {
            w.proc.mem.write_u8(cur, 0)?; // terminate token in place
            w.proc.mem.write_u32(state, cur.wrapping_add(1))?;
            return Ok(SimValue::Ptr(token));
        }
        cur = cur.wrapping_add(1);
    }
}

fn strdup(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let len = c_strlen(w, s)?;
    let bytes = w.proc.mem.read_bytes(s, len)?;
    match w.proc.heap_alloc(len + 1) {
        Ok(copy) => {
            w.proc.write_cstr(copy, &bytes)?;
            Ok(SimValue::Ptr(copy))
        }
        Err(_) => w.fail(ENOMEM, SimValue::NULL),
    }
}

fn strxfrm(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    let len = c_strlen(w, src)?;
    if n > 0 {
        let copy = len.min(n - 1);
        let bytes = w.proc.mem.read_bytes(src, copy)?;
        w.proc.mem.write_bytes(dst, &bytes)?;
        w.proc.mem.write_u8(dst + copy, 0)?;
    }
    Ok(SimValue::Int(i64::from(len)))
}

fn strerror(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let e = int_arg(args, 0) as i32;
    let msg = healers_os::errno::strerror(e);
    let buf = w.proc.named_static("strerror_buf", 64);
    w.proc.write_cstr(buf, msg.as_bytes())?;
    Ok(SimValue::Ptr(buf))
}

fn memcpy(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
        w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
    }
    Ok(SimValue::Ptr(dst))
}

fn memmove(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (dst, src) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    w.proc.tick(u64::from(n))?;
    if dst <= src || src.wrapping_add(n) <= dst {
        for i in 0..n {
            let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
            w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
        }
    } else {
        for i in (0..n).rev() {
            let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
            w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
        }
    }
    Ok(SimValue::Ptr(dst))
}

fn memset(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let dst = ptr_arg(args, 0);
    let c = (int_arg(args, 1) & 0xff) as u8;
    let n = int_arg(args, 2) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        w.proc.mem.write_u8(dst.wrapping_add(i), c)?;
    }
    Ok(SimValue::Ptr(dst))
}

fn memcmp(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (a, b) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        let x = w.proc.mem.read_u8(a.wrapping_add(i))?;
        let y = w.proc.mem.read_u8(b.wrapping_add(i))?;
        if x != y {
            return Ok(SimValue::Int(i64::from(x) - i64::from(y)));
        }
    }
    Ok(SimValue::Int(0))
}

fn memchr(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let c = (int_arg(args, 1) & 0xff) as u8;
    let n = int_arg(args, 2) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        if w.proc.mem.read_u8(s.wrapping_add(i))? == c {
            return Ok(SimValue::Ptr(s.wrapping_add(i)));
        }
    }
    Ok(SimValue::NULL)
}

fn strcasecmp(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (a, b) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let x = w.proc.mem.read_u8(a.wrapping_add(i))?.to_ascii_lowercase();
        let y = w.proc.mem.read_u8(b.wrapping_add(i))?.to_ascii_lowercase();
        if x != y || x == 0 {
            return Ok(SimValue::Int(i64::from(x) - i64::from(y)));
        }
        i = i.wrapping_add(1);
    }
}

fn strncasecmp(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (a, b) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        let x = w.proc.mem.read_u8(a.wrapping_add(i))?.to_ascii_lowercase();
        let y = w.proc.mem.read_u8(b.wrapping_add(i))?.to_ascii_lowercase();
        if x != y || x == 0 {
            return Ok(SimValue::Int(i64::from(x) - i64::from(y)));
        }
    }
    Ok(SimValue::Int(0))
}

/// The *bounded* strlen — one of the few genuinely robust string
/// functions (it never reads past `maxlen`).
fn strnlen(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let maxlen = int_arg(args, 1) as u32;
    for i in 0..maxlen {
        w.proc.tick(1)?;
        if w.proc.mem.read_u8(s.wrapping_add(i))? == 0 {
            return Ok(SimValue::Int(i64::from(i)));
        }
    }
    Ok(SimValue::Int(i64::from(maxlen)))
}

/// BSD strsep: reads *and updates* a `char **` — a two-level pointer
/// the injector's generic array generator has to cope with.
fn strsep(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let stringp = ptr_arg(args, 0);
    let cur = w.proc.mem.read_u32(stringp)?; // crashes on bad stringp
    if cur == 0 {
        return Ok(SimValue::NULL);
    }
    let delim = read_set(w, ptr_arg(args, 1))?;
    let mut i = 0u32;
    loop {
        w.proc.tick(1)?;
        let b = w.proc.mem.read_u8(cur.wrapping_add(i))?;
        if b == 0 {
            w.proc.mem.write_u32(stringp, 0)?;
            return Ok(SimValue::Ptr(cur));
        }
        if delim.contains(&b) {
            w.proc.mem.write_u8(cur.wrapping_add(i), 0)?;
            w.proc.mem.write_u32(stringp, cur.wrapping_add(i + 1))?;
            return Ok(SimValue::Ptr(cur));
        }
        i = i.wrapping_add(1);
    }
}

fn bzero(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let s = ptr_arg(args, 0);
    let n = int_arg(args, 1) as u32;
    for i in 0..n {
        w.proc.tick(1)?;
        w.proc.mem.write_u8(s.wrapping_add(i), 0)?;
    }
    Ok(SimValue::Void)
}

/// BSD bcopy: note the (src, dest) argument order, reversed from
/// memcpy — a classic source of both bugs and injector findings.
fn bcopy(w: &mut World, args: &[SimValue]) -> Result<SimValue, SimFault> {
    let (src, dst) = (ptr_arg(args, 0), ptr_arg(args, 1));
    let n = int_arg(args, 2) as u32;
    w.proc.tick(u64::from(n))?;
    if dst <= src || src.wrapping_add(n) <= dst {
        for i in 0..n {
            let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
            w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
        }
    } else {
        for i in (0..n).rev() {
            let b = w.proc.mem.read_u8(src.wrapping_add(i))?;
            w.proc.mem.write_u8(dst.wrapping_add(i), b)?;
        }
    }
    Ok(SimValue::Void)
}

#[cfg(test)]
mod tests {
    use crate::registry::Libc;
    use crate::world::World;
    use healers_simproc::{SimValue, INVALID_PTR};

    fn setup() -> (Libc, World) {
        (Libc::standard(), World::new())
    }

    fn p(a: u32) -> SimValue {
        SimValue::Ptr(a)
    }

    #[test]
    fn strcpy_copies_and_returns_dst() {
        let (libc, mut w) = setup();
        let src = w.alloc_cstr("robustness");
        let dst = w.alloc_buf(32);
        let r = libc.call(&mut w, "strcpy", &[p(dst), p(src)]).unwrap();
        assert_eq!(r, p(dst));
        assert_eq!(w.read_cstr_lossy(dst).unwrap(), "robustness");
    }

    #[test]
    fn strcpy_overflows_guarded_buffer() {
        let libc = Libc::standard();
        let mut w = World::new_guarded();
        let src = w.alloc_cstr("this string is longer than the buffer");
        let dst = w.alloc_buf(8);
        let err = libc.call(&mut w, "strcpy", &[p(dst), p(src)]).unwrap_err();
        assert_eq!(err.segv_addr(), Some(dst + 8));
    }

    #[test]
    fn strcpy_null_src_crashes() {
        let (libc, mut w) = setup();
        let dst = w.alloc_buf(8);
        let err = libc
            .call(&mut w, "strcpy", &[p(dst), SimValue::NULL])
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(0));
    }

    #[test]
    fn strlen_and_invalid_pointer() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("abc");
        assert_eq!(
            libc.call(&mut w, "strlen", &[p(s)]).unwrap(),
            SimValue::Int(3)
        );
        assert!(libc.call(&mut w, "strlen", &[p(INVALID_PTR)]).is_err());
    }

    #[test]
    fn strncpy_pads_with_nuls() {
        let (libc, mut w) = setup();
        let src = w.alloc_cstr("ab");
        let dst = w.alloc_buf(8);
        w.proc.mem.write_bytes(dst, &[0xff; 8]).unwrap();
        libc.call(&mut w, "strncpy", &[p(dst), p(src), SimValue::Int(6)])
            .unwrap();
        assert_eq!(
            w.proc.mem.read_bytes(dst, 8).unwrap(),
            vec![b'a', b'b', 0, 0, 0, 0, 0xff, 0xff]
        );
    }

    #[test]
    fn strcat_appends() {
        let (libc, mut w) = setup();
        let dst = w.alloc_buf(16);
        w.proc.write_cstr(dst, b"foo").unwrap();
        let src = w.alloc_cstr("bar");
        libc.call(&mut w, "strcat", &[p(dst), p(src)]).unwrap();
        assert_eq!(w.read_cstr_lossy(dst).unwrap(), "foobar");
    }

    #[test]
    fn strncat_limits_and_terminates() {
        let (libc, mut w) = setup();
        let dst = w.alloc_buf(16);
        w.proc.write_cstr(dst, b"ab").unwrap();
        let src = w.alloc_cstr("cdefgh");
        libc.call(&mut w, "strncat", &[p(dst), p(src), SimValue::Int(3)])
            .unwrap();
        assert_eq!(w.read_cstr_lossy(dst).unwrap(), "abcde");
    }

    #[test]
    fn strcmp_orders() {
        let (libc, mut w) = setup();
        let a = w.alloc_cstr("apple");
        let b = w.alloc_cstr("apricot");
        let r = libc.call(&mut w, "strcmp", &[p(a), p(b)]).unwrap();
        assert!(r.as_int() < 0);
        let r = libc.call(&mut w, "strcmp", &[p(b), p(a)]).unwrap();
        assert!(r.as_int() > 0);
        let r = libc.call(&mut w, "strcmp", &[p(a), p(a)]).unwrap();
        assert_eq!(r.as_int(), 0);
    }

    #[test]
    fn strncmp_stops_at_n() {
        let (libc, mut w) = setup();
        let a = w.alloc_cstr("abcX");
        let b = w.alloc_cstr("abcY");
        let r = libc
            .call(&mut w, "strncmp", &[p(a), p(b), SimValue::Int(3)])
            .unwrap();
        assert_eq!(r.as_int(), 0);
    }

    #[test]
    fn strchr_family() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("hello");
        let r = libc
            .call(&mut w, "strchr", &[p(s), SimValue::Int(i64::from(b'l'))])
            .unwrap();
        assert_eq!(r, p(s + 2));
        let r = libc
            .call(&mut w, "strrchr", &[p(s), SimValue::Int(i64::from(b'l'))])
            .unwrap();
        assert_eq!(r, p(s + 3));
        let r = libc
            .call(&mut w, "strchr", &[p(s), SimValue::Int(i64::from(b'z'))])
            .unwrap();
        assert_eq!(r, SimValue::NULL);
        // strchr(s, 0) finds the terminator.
        let r = libc
            .call(&mut w, "strchr", &[p(s), SimValue::Int(0)])
            .unwrap();
        assert_eq!(r, p(s + 5));
    }

    #[test]
    fn strstr_finds_substring() {
        let (libc, mut w) = setup();
        let hay = w.alloc_cstr("automated approach");
        let needle = w.alloc_cstr("mated");
        let r = libc.call(&mut w, "strstr", &[p(hay), p(needle)]).unwrap();
        assert_eq!(r, p(hay + 4));
        let missing = w.alloc_cstr("zzz");
        let r = libc.call(&mut w, "strstr", &[p(hay), p(missing)]).unwrap();
        assert_eq!(r, SimValue::NULL);
        let empty = w.alloc_cstr("");
        let r = libc.call(&mut w, "strstr", &[p(hay), p(empty)]).unwrap();
        assert_eq!(r, p(hay));
    }

    #[test]
    fn spn_family() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("123abc");
        let digits = w.alloc_cstr("0123456789");
        assert_eq!(
            libc.call(&mut w, "strspn", &[p(s), p(digits)]).unwrap(),
            SimValue::Int(3)
        );
        assert_eq!(
            libc.call(&mut w, "strcspn", &[p(s), p(digits)]).unwrap(),
            SimValue::Int(0)
        );
        let letters = w.alloc_cstr("abc");
        let r = libc.call(&mut w, "strpbrk", &[p(s), p(letters)]).unwrap();
        assert_eq!(r, p(s + 3));
    }

    #[test]
    fn strtok_tokenizes_in_place() {
        let (libc, mut w) = setup();
        let s = w.alloc_buf(32);
        w.proc.write_cstr(s, b"a,b,,c").unwrap();
        let sep = w.alloc_cstr(",");
        let t1 = libc.call(&mut w, "strtok", &[p(s), p(sep)]).unwrap();
        assert_eq!(w.read_cstr_lossy(t1.as_ptr()).unwrap(), "a");
        let t2 = libc
            .call(&mut w, "strtok", &[SimValue::NULL, p(sep)])
            .unwrap();
        assert_eq!(w.read_cstr_lossy(t2.as_ptr()).unwrap(), "b");
        let t3 = libc
            .call(&mut w, "strtok", &[SimValue::NULL, p(sep)])
            .unwrap();
        assert_eq!(w.read_cstr_lossy(t3.as_ptr()).unwrap(), "c");
        let t4 = libc
            .call(&mut w, "strtok", &[SimValue::NULL, p(sep)])
            .unwrap();
        assert_eq!(t4, SimValue::NULL);
    }

    #[test]
    fn strtok_null_without_prior_call_crashes() {
        let (libc, mut w) = setup();
        let sep = w.alloc_cstr(",");
        let err = libc
            .call(&mut w, "strtok", &[SimValue::NULL, p(sep)])
            .unwrap_err();
        assert_eq!(err.segv_addr(), Some(0));
    }

    #[test]
    fn strdup_allocates_copy() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("dup me");
        let r = libc.call(&mut w, "strdup", &[p(s)]).unwrap();
        assert_ne!(r.as_ptr(), s);
        assert_eq!(w.read_cstr_lossy(r.as_ptr()).unwrap(), "dup me");
    }

    #[test]
    fn mem_family_roundtrip() {
        let (libc, mut w) = setup();
        let a = w.alloc_buf(16);
        let b = w.alloc_buf(16);
        libc.call(
            &mut w,
            "memset",
            &[p(a), SimValue::Int(0x41), SimValue::Int(16)],
        )
        .unwrap();
        libc.call(&mut w, "memcpy", &[p(b), p(a), SimValue::Int(16)])
            .unwrap();
        assert_eq!(
            libc.call(&mut w, "memcmp", &[p(a), p(b), SimValue::Int(16)])
                .unwrap(),
            SimValue::Int(0)
        );
        w.proc.mem.write_u8(b + 7, 0x42).unwrap();
        let r = libc
            .call(&mut w, "memcmp", &[p(a), p(b), SimValue::Int(16)])
            .unwrap();
        assert!(r.as_int() < 0);
        let r = libc
            .call(
                &mut w,
                "memchr",
                &[p(b), SimValue::Int(0x42), SimValue::Int(16)],
            )
            .unwrap();
        assert_eq!(r, p(b + 7));
    }

    #[test]
    fn memmove_handles_overlap() {
        let (libc, mut w) = setup();
        let buf = w.alloc_buf(16);
        w.proc.mem.write_bytes(buf, b"0123456789").unwrap();
        // Shift right by 2 with overlap.
        libc.call(&mut w, "memmove", &[p(buf + 2), p(buf), SimValue::Int(8)])
            .unwrap();
        assert_eq!(w.proc.mem.read_bytes(buf, 10).unwrap(), b"0101234567");
    }

    #[test]
    fn strxfrm_returns_full_length() {
        let (libc, mut w) = setup();
        let src = w.alloc_cstr("transform");
        let dst = w.alloc_buf(4);
        let r = libc
            .call(&mut w, "strxfrm", &[p(dst), p(src), SimValue::Int(4)])
            .unwrap();
        assert_eq!(r, SimValue::Int(9));
        assert_eq!(w.read_cstr_lossy(dst).unwrap(), "tra");
    }

    #[test]
    fn strcasecmp_ignores_case() {
        let (libc, mut w) = setup();
        let a = w.alloc_cstr("Hello");
        let b = w.alloc_cstr("hELLO");
        assert_eq!(
            libc.call(&mut w, "strcasecmp", &[p(a), p(b)]).unwrap(),
            SimValue::Int(0)
        );
        let c = w.alloc_cstr("hellp");
        let r = libc.call(&mut w, "strcasecmp", &[p(a), p(c)]).unwrap();
        assert!(r.as_int() < 0);
        let r = libc
            .call(&mut w, "strncasecmp", &[p(a), p(c), SimValue::Int(4)])
            .unwrap();
        assert_eq!(r, SimValue::Int(0));
    }

    #[test]
    fn strnlen_is_bounded() {
        // One of the few genuinely robust string functions: it never
        // reads past maxlen, even on an unterminated buffer.
        let libc = Libc::standard();
        let mut w = crate::world::World::new_guarded();
        let buf = w.alloc_buf(8);
        w.proc.mem.write_bytes(buf, &[1; 8]).unwrap();
        let r = libc
            .call(&mut w, "strnlen", &[p(buf), SimValue::Int(8)])
            .unwrap();
        assert_eq!(r, SimValue::Int(8));
        let s = w.alloc_cstr("abc");
        let r = libc
            .call(&mut w, "strnlen", &[p(s), SimValue::Int(100)])
            .unwrap();
        assert_eq!(r, SimValue::Int(3));
    }

    #[test]
    fn strsep_splits_and_advances() {
        let (libc, mut w) = setup();
        let s = w.alloc_buf(16);
        w.proc.write_cstr(s, b"a:b::c").unwrap();
        let sp = w.alloc_buf(4);
        w.proc.mem.write_u32(sp, s).unwrap();
        let delim = w.alloc_cstr(":");
        let mut tokens = Vec::new();
        loop {
            let t = libc.call(&mut w, "strsep", &[p(sp), p(delim)]).unwrap();
            if t.is_null() {
                break;
            }
            tokens.push(w.read_cstr_lossy(t.as_ptr()).unwrap());
        }
        assert_eq!(tokens, vec!["a", "b", "", "c"]);
        // And the classic strsep crash: an invalid stringp.
        assert!(libc
            .call(&mut w, "strsep", &[p(INVALID_PTR), p(delim)])
            .is_err());
    }

    #[test]
    fn bsd_aliases_behave() {
        let (libc, mut w) = setup();
        let s = w.alloc_cstr("xylophone");
        let r = libc
            .call(&mut w, "index", &[p(s), SimValue::Int(i64::from(b'l'))])
            .unwrap();
        assert_eq!(r, p(s + 2));
        let r = libc
            .call(&mut w, "rindex", &[p(s), SimValue::Int(i64::from(b'o'))])
            .unwrap();
        assert_eq!(r, p(s + 6));

        let buf = w.alloc_buf(8);
        w.proc.mem.write_bytes(buf, &[7; 8]).unwrap();
        libc.call(&mut w, "bzero", &[p(buf), SimValue::Int(8)])
            .unwrap();
        assert_eq!(w.proc.mem.read_bytes(buf, 8).unwrap(), vec![0; 8]);

        // bcopy's (src, dest) order.
        let src = w.alloc_cstr("data");
        libc.call(&mut w, "bcopy", &[p(src), p(buf), SimValue::Int(5)])
            .unwrap();
        assert_eq!(w.read_cstr_lossy(buf).unwrap(), "data");
        assert_eq!(
            libc.call(&mut w, "bcmp", &[p(src), p(buf), SimValue::Int(5)])
                .unwrap(),
            SimValue::Int(0)
        );
    }

    #[test]
    fn strerror_never_crashes_on_any_int() {
        let (libc, mut w) = setup();
        for e in [-1i64, 0, 22, 9999, i64::from(i32::MAX)] {
            let r = libc.call(&mut w, "strerror", &[SimValue::Int(e)]).unwrap();
            assert!(r.as_ptr() != 0);
        }
    }
}
