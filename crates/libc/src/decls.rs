//! The canonical declaration table of the simulated library.
//!
//! One row per exported function: name, owning header, and the exact
//! declaration text as it appears in that header. The registry parses
//! these to obtain prototypes, and the corpus crate reuses the same rows
//! to generate the simulated header files and manual pages — so the
//! extraction pipeline of §3 recovers precisely the prototypes the
//! library was built from.

/// One exported function: `(name, header, declaration)`.
pub type DeclRow = (&'static str, &'static str, &'static str);

/// All exported (global, external) functions of the simulated library.
pub const DECLS: &[DeclRow] = &[
    // ---- string.h -------------------------------------------------------
    ("strcpy", "string.h", "extern char *strcpy(char *__dest, const char *__src) __THROW;"),
    ("strncpy", "string.h", "extern char *strncpy(char *__dest, const char *__src, size_t __n) __THROW;"),
    ("strcat", "string.h", "extern char *strcat(char *__dest, const char *__src) __THROW;"),
    ("strncat", "string.h", "extern char *strncat(char *__dest, const char *__src, size_t __n) __THROW;"),
    ("strcmp", "string.h", "extern int strcmp(const char *__s1, const char *__s2) __THROW;"),
    ("strncmp", "string.h", "extern int strncmp(const char *__s1, const char *__s2, size_t __n) __THROW;"),
    ("strlen", "string.h", "extern size_t strlen(const char *__s) __THROW;"),
    ("strchr", "string.h", "extern char *strchr(const char *__s, int __c) __THROW;"),
    ("strrchr", "string.h", "extern char *strrchr(const char *__s, int __c) __THROW;"),
    ("strstr", "string.h", "extern char *strstr(const char *__haystack, const char *__needle) __THROW;"),
    ("strpbrk", "string.h", "extern char *strpbrk(const char *__s, const char *__accept) __THROW;"),
    ("strspn", "string.h", "extern size_t strspn(const char *__s, const char *__accept) __THROW;"),
    ("strcspn", "string.h", "extern size_t strcspn(const char *__s, const char *__reject) __THROW;"),
    ("strtok", "string.h", "extern char *strtok(char *__s, const char *__delim) __THROW;"),
    ("strdup", "string.h", "extern char *strdup(const char *__s) __THROW;"),
    ("strcoll", "string.h", "extern int strcoll(const char *__s1, const char *__s2) __THROW;"),
    ("strxfrm", "string.h", "extern size_t strxfrm(char *__dest, const char *__src, size_t __n) __THROW;"),
    ("strerror", "string.h", "extern char *strerror(int __errnum) __THROW;"),
    ("memcpy", "string.h", "extern void *memcpy(void *__dest, const void *__src, size_t __n) __THROW;"),
    ("memmove", "string.h", "extern void *memmove(void *__dest, const void *__src, size_t __n) __THROW;"),
    ("memset", "string.h", "extern void *memset(void *__s, int __c, size_t __n) __THROW;"),
    ("memcmp", "string.h", "extern int memcmp(const void *__s1, const void *__s2, size_t __n) __THROW;"),
    ("memchr", "string.h", "extern void *memchr(const void *__s, int __c, size_t __n) __THROW;"),
    ("strcasecmp", "string.h", "extern int strcasecmp(const char *__s1, const char *__s2) __THROW;"),
    ("strncasecmp", "string.h", "extern int strncasecmp(const char *__s1, const char *__s2, size_t __n) __THROW;"),
    ("strnlen", "string.h", "extern size_t strnlen(const char *__string, size_t __maxlen) __THROW;"),
    ("strsep", "string.h", "extern char *strsep(char **__stringp, const char *__delim) __THROW;"),
    ("index", "string.h", "extern char *index(const char *__s, int __c) __THROW;"),
    ("rindex", "string.h", "extern char *rindex(const char *__s, int __c) __THROW;"),
    ("bzero", "string.h", "extern void bzero(void *__s, size_t __n) __THROW;"),
    ("bcopy", "string.h", "extern void bcopy(const void *__src, void *__dest, size_t __n) __THROW;"),
    ("bcmp", "string.h", "extern int bcmp(const void *__s1, const void *__s2, size_t __n) __THROW;"),
    // ---- stdio.h --------------------------------------------------------
    ("fopen", "stdio.h", "extern FILE *fopen(const char *__filename, const char *__modes);"),
    ("freopen", "stdio.h", "extern FILE *freopen(const char *__filename, const char *__modes, FILE *__stream);"),
    ("fdopen", "stdio.h", "extern FILE *fdopen(int __fd, const char *__modes) __THROW;"),
    ("fclose", "stdio.h", "extern int fclose(FILE *__stream);"),
    ("fflush", "stdio.h", "extern int fflush(FILE *__stream);"),
    ("fread", "stdio.h", "extern size_t fread(void *__ptr, size_t __size, size_t __n, FILE *__stream);"),
    ("fwrite", "stdio.h", "extern size_t fwrite(const void *__ptr, size_t __size, size_t __n, FILE *__s);"),
    ("fgets", "stdio.h", "extern char *fgets(char *__s, int __n, FILE *__stream);"),
    ("fputs", "stdio.h", "extern int fputs(const char *__s, FILE *__stream);"),
    ("fgetc", "stdio.h", "extern int fgetc(FILE *__stream);"),
    ("fputc", "stdio.h", "extern int fputc(int __c, FILE *__stream);"),
    ("getc", "stdio.h", "extern int getc(FILE *__stream);"),
    ("putc", "stdio.h", "extern int putc(int __c, FILE *__stream);"),
    ("ungetc", "stdio.h", "extern int ungetc(int __c, FILE *__stream);"),
    ("puts", "stdio.h", "extern int puts(const char *__s);"),
    ("getchar", "stdio.h", "extern int getchar(void);"),
    ("putchar", "stdio.h", "extern int putchar(int __c);"),
    ("gets", "stdio.h", "extern char *gets(char *__s);"),
    ("fseek", "stdio.h", "extern int fseek(FILE *__stream, long __off, int __whence);"),
    ("ftell", "stdio.h", "extern long ftell(FILE *__stream);"),
    ("rewind", "stdio.h", "extern void rewind(FILE *__stream);"),
    ("feof", "stdio.h", "extern int feof(FILE *__stream) __THROW;"),
    ("ferror", "stdio.h", "extern int ferror(FILE *__stream) __THROW;"),
    ("clearerr", "stdio.h", "extern void clearerr(FILE *__stream) __THROW;"),
    ("fileno", "stdio.h", "extern int fileno(FILE *__stream) __THROW;"),
    ("setbuf", "stdio.h", "extern void setbuf(FILE *__stream, char *__buf) __THROW;"),
    ("setvbuf", "stdio.h", "extern int setvbuf(FILE *__stream, char *__buf, int __modes, size_t __n) __THROW;"),
    ("tmpfile", "stdio.h", "extern FILE *tmpfile(void);"),
    ("tmpnam", "stdio.h", "extern char *tmpnam(char *__s) __THROW;"),
    ("sprintf", "stdio.h", "extern int sprintf(char *__s, const char *__format, ...) __THROW;"),
    ("snprintf", "stdio.h", "extern int snprintf(char *__s, size_t __maxlen, const char *__format, ...) __THROW;"),
    ("fprintf", "stdio.h", "extern int fprintf(FILE *__stream, const char *__format, ...);"),
    ("sscanf", "stdio.h", "extern int sscanf(const char *__s, const char *__format, ...) __THROW;"),
    ("perror", "stdio.h", "extern void perror(const char *__s);"),
    ("remove", "stdio.h", "extern int remove(const char *__filename) __THROW;"),
    ("rename", "stdio.h", "extern int rename(const char *__old, const char *__new) __THROW;"),
    // ---- stdlib.h -------------------------------------------------------
    ("atoi", "stdlib.h", "extern int atoi(const char *__nptr) __THROW;"),
    ("atol", "stdlib.h", "extern long atol(const char *__nptr) __THROW;"),
    ("atoll", "stdlib.h", "extern long long atoll(const char *__nptr) __THROW;"),
    ("atof", "stdlib.h", "extern double atof(const char *__nptr) __THROW;"),
    ("strtol", "stdlib.h", "extern long strtol(const char *__nptr, char **__endptr, int __base) __THROW;"),
    ("strtoul", "stdlib.h", "extern unsigned long strtoul(const char *__nptr, char **__endptr, int __base) __THROW;"),
    ("strtod", "stdlib.h", "extern double strtod(const char *__nptr, char **__endptr) __THROW;"),
    ("malloc", "stdlib.h", "extern void *malloc(size_t __size) __THROW;"),
    ("calloc", "stdlib.h", "extern void *calloc(size_t __nmemb, size_t __size) __THROW;"),
    ("realloc", "stdlib.h", "extern void *realloc(void *__ptr, size_t __size) __THROW;"),
    ("free", "stdlib.h", "extern void free(void *__ptr) __THROW;"),
    ("getenv", "stdlib.h", "extern char *getenv(const char *__name) __THROW;"),
    ("setenv", "stdlib.h", "extern int setenv(const char *__name, const char *__value, int __replace) __THROW;"),
    ("unsetenv", "stdlib.h", "extern int unsetenv(const char *__name) __THROW;"),
    ("abs", "stdlib.h", "extern int abs(int __x) __THROW;"),
    ("labs", "stdlib.h", "extern long labs(long __x) __THROW;"),
    ("rand", "stdlib.h", "extern int rand(void) __THROW;"),
    ("srand", "stdlib.h", "extern void srand(unsigned int __seed) __THROW;"),
    ("rand_r", "stdlib.h", "extern int rand_r(unsigned int *__seed) __THROW;"),
    ("abort", "stdlib.h", "extern void abort(void) __THROW;"),
    // ---- time.h ---------------------------------------------------------
    ("time", "time.h", "extern time_t time(time_t *__timer) __THROW;"),
    ("stime", "time.h", "extern int stime(const time_t *__when) __THROW;"),
    ("asctime", "time.h", "extern char *asctime(const struct tm *__tp) __THROW;"),
    ("ctime", "time.h", "extern char *ctime(const time_t *__timer) __THROW;"),
    ("gmtime", "time.h", "extern struct tm *gmtime(const time_t *__timer) __THROW;"),
    ("localtime", "time.h", "extern struct tm *localtime(const time_t *__timer) __THROW;"),
    ("mktime", "time.h", "extern time_t mktime(struct tm *__tp) __THROW;"),
    ("strftime", "time.h", "extern size_t strftime(char *__s, size_t __maxsize, const char *__format, const struct tm *__tp) __THROW;"),
    ("difftime", "time.h", "extern double difftime(time_t __time1, time_t __time0) __THROW;"),
    // ---- termios.h ------------------------------------------------------
    ("cfgetispeed", "termios.h", "extern speed_t cfgetispeed(const struct termios *__termios_p) __THROW;"),
    ("cfgetospeed", "termios.h", "extern speed_t cfgetospeed(const struct termios *__termios_p) __THROW;"),
    ("cfsetispeed", "termios.h", "extern int cfsetispeed(struct termios *__termios_p, speed_t __speed) __THROW;"),
    ("cfsetospeed", "termios.h", "extern int cfsetospeed(struct termios *__termios_p, speed_t __speed) __THROW;"),
    ("tcgetattr", "termios.h", "extern int tcgetattr(int __fd, struct termios *__termios_p) __THROW;"),
    ("tcsetattr", "termios.h", "extern int tcsetattr(int __fd, int __optional_actions, const struct termios *__termios_p) __THROW;"),
    ("tcflush", "termios.h", "extern int tcflush(int __fd, int __queue_selector) __THROW;"),
    ("tcdrain", "termios.h", "extern int tcdrain(int __fd);"),
    ("tcflow", "termios.h", "extern int tcflow(int __fd, int __action) __THROW;"),
    ("tcsendbreak", "termios.h", "extern int tcsendbreak(int __fd, int __duration) __THROW;"),
    // ---- dirent.h -------------------------------------------------------
    ("opendir", "dirent.h", "extern DIR *opendir(const char *__name);"),
    ("readdir", "dirent.h", "extern struct dirent *readdir(DIR *__dirp);"),
    ("closedir", "dirent.h", "extern int closedir(DIR *__dirp);"),
    ("rewinddir", "dirent.h", "extern void rewinddir(DIR *__dirp);"),
    ("seekdir", "dirent.h", "extern void seekdir(DIR *__dirp, long __pos);"),
    ("telldir", "dirent.h", "extern long telldir(DIR *__dirp);"),
    // ---- unistd.h / fcntl.h / sys/stat.h ---------------------------------
    ("open", "fcntl.h", "extern int open(const char *__file, int __oflag, ...);"),
    ("creat", "fcntl.h", "extern int creat(const char *__file, mode_t __mode);"),
    ("read", "unistd.h", "extern ssize_t read(int __fd, void *__buf, size_t __nbytes);"),
    ("write", "unistd.h", "extern ssize_t write(int __fd, const void *__buf, size_t __n);"),
    ("close", "unistd.h", "extern int close(int __fd);"),
    ("lseek", "unistd.h", "extern off_t lseek(int __fd, off_t __offset, int __whence) __THROW;"),
    ("dup", "unistd.h", "extern int dup(int __fd) __THROW;"),
    ("dup2", "unistd.h", "extern int dup2(int __fd, int __fd2) __THROW;"),
    ("pipe", "unistd.h", "extern int pipe(int __pipedes[2]) __THROW;"),
    ("isatty", "unistd.h", "extern int isatty(int __fd) __THROW;"),
    ("access", "unistd.h", "extern int access(const char *__name, int __type) __THROW;"),
    ("chdir", "unistd.h", "extern int chdir(const char *__path) __THROW;"),
    ("getcwd", "unistd.h", "extern char *getcwd(char *__buf, size_t __size) __THROW;"),
    ("unlink", "unistd.h", "extern int unlink(const char *__name) __THROW;"),
    ("rmdir", "unistd.h", "extern int rmdir(const char *__path) __THROW;"),
    ("sleep", "unistd.h", "extern unsigned int sleep(unsigned int __seconds);"),
    ("getpid", "unistd.h", "extern pid_t getpid(void) __THROW;"),
    ("mkdir", "sys/stat.h", "extern int mkdir(const char *__path, mode_t __mode) __THROW;"),
    ("stat", "sys/stat.h", "extern int stat(const char *__file, struct stat *__buf) __THROW;"),
    ("fstat", "sys/stat.h", "extern int fstat(int __fd, struct stat *__buf) __THROW;"),
    ("umask", "sys/stat.h", "extern mode_t umask(mode_t __mask) __THROW;"),
    // ---- ctype.h --------------------------------------------------------
    ("isalpha", "ctype.h", "extern int isalpha(int __c) __THROW;"),
    ("isdigit", "ctype.h", "extern int isdigit(int __c) __THROW;"),
    ("isalnum", "ctype.h", "extern int isalnum(int __c) __THROW;"),
    ("isspace", "ctype.h", "extern int isspace(int __c) __THROW;"),
    ("isupper", "ctype.h", "extern int isupper(int __c) __THROW;"),
    ("islower", "ctype.h", "extern int islower(int __c) __THROW;"),
    ("ispunct", "ctype.h", "extern int ispunct(int __c) __THROW;"),
    ("isprint", "ctype.h", "extern int isprint(int __c) __THROW;"),
    ("toupper", "ctype.h", "extern int toupper(int __c) __THROW;"),
    ("tolower", "ctype.h", "extern int tolower(int __c) __THROW;"),
];

/// Internal symbols the shared library also exports (names beginning with
/// an underscore). §3.1: "more than 34% of the global functions are
/// internal" — the corpus generator scales this list up to reproduce that
/// statistic; these are the ones the library itself defines.
pub const INTERNAL_SYMBOLS: &[&str] = &[
    "_IO_fflush",
    "_IO_file_open",
    "_IO_do_write",
    "__libc_malloc",
    "__libc_free",
    "__strtol_internal",
    "__errno_location",
    "__ctype_b_loc",
    "__xstat",
    "__fxstat",
    "__overflow",
    "__underflow",
];

/// Look up the declaration row for `name`.
pub fn find(name: &str) -> Option<&'static DeclRow> {
    DECLS.iter().find(|(n, _, _)| *n == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_declarations_parse() {
        for (name, _, decl) in DECLS {
            let proto = healers_ctypes::parse_prototype(decl)
                .unwrap_or_else(|e| panic!("decl for {name} failed to parse: {e}"));
            assert_eq!(&proto.name, name, "declaration name mismatch");
        }
    }

    #[test]
    fn names_are_unique() {
        let set: BTreeSet<_> = DECLS.iter().map(|(n, _, _)| n).collect();
        assert_eq!(set.len(), DECLS.len());
    }

    #[test]
    fn find_works() {
        assert!(find("strcpy").is_some());
        assert!(find("no_such_function").is_none());
    }

    #[test]
    fn library_is_large_enough_for_the_evaluation() {
        // The paper evaluates 86 POSIX functions; the library must export
        // at least that many.
        assert!(DECLS.len() >= 100, "only {} functions", DECLS.len());
    }
}
