//! Chrome trace-event export of a campaign timeline.
//!
//! The exported timeline is derived *entirely* from the journal's
//! sequenced event stream — logical sequence numbers are the time
//! axis, not wall clocks — so the trace is a pure function of the
//! journal: re-exporting the same journal yields the same bytes, and
//! no nondeterministic timing data leaks into the artifact. Load the
//! output in `chrome://tracing` or Perfetto.
//!
//! Mapping:
//!
//! * `Started f` → `Classified f` becomes a complete span `inject:f`;
//! * `Evaluating f (mode)` → `Evaluated f (mode)` becomes a complete
//!   span `eval:<mode>:f`;
//! * `Cached f` becomes an instant event (zero injected calls);
//! * `Retried`/`Faulted` become instants on the owning span's lane;
//! * two counter tracks sample scheduler state at every change:
//!   `workers` (spans in flight — worker occupancy) and `pending`
//!   (scheduled work items not yet begun — queue depth);
//! * three counter tracks accumulate the campaign's copy-on-write
//!   containment cost at every span end: `cow_pages_shared` (pages
//!   reference-shared instead of copied), `cow_pages_copied` (private
//!   copies faulted in by contained calls), and `cow_pages_restored`
//!   (pages discarded at rollback — equal to the copies, since every
//!   contained call is run-and-discard).
//!
//! Lanes (`tid`s) model worker occupancy: a span takes the lowest
//! lane free at its begin event and releases it at its end, so the
//! lane count at any instant equals the campaign's actual concurrency
//! at that point in the journal.

use std::collections::BTreeMap;

use healers_trace::ChromeTrace;

use crate::journal::CampaignEvent;

/// Lane allocator: lowest-free-index, like the scheduler's workers.
#[derive(Default)]
struct Lanes {
    busy: Vec<bool>,
}

impl Lanes {
    fn grab(&mut self) -> u64 {
        match self.busy.iter().position(|b| !b) {
            Some(i) => {
                self.busy[i] = true;
                i as u64
            }
            None => {
                self.busy.push(true);
                (self.busy.len() - 1) as u64
            }
        }
    }

    fn release(&mut self, lane: u64) {
        if let Some(slot) = self.busy.get_mut(lane as usize) {
            *slot = false;
        }
    }
}

/// A span's identity while open: the phase label plus the function.
type SpanKey = (String, String);

fn span_key(event: &CampaignEvent) -> Option<(SpanKey, bool)> {
    match event {
        CampaignEvent::Started { function } => Some((("inject".into(), function.clone()), true)),
        CampaignEvent::Classified { function, .. } => {
            Some((("inject".into(), function.clone()), false))
        }
        CampaignEvent::Evaluating { function, mode } => {
            Some(((format!("eval:{mode}"), function.clone()), true))
        }
        CampaignEvent::Evaluated { function, mode, .. } => {
            Some(((format!("eval:{mode}"), function.clone()), false))
        }
        _ => None,
    }
}

/// Build the trace-event document for a recorded journal stream
/// (sequence-numbered, as produced by
/// [`Journal::start_recording`](crate::journal::Journal::start_recording)).
pub fn chrome_trace(events: &[(u64, CampaignEvent)]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    let mut lanes = Lanes::default();
    // Open spans: key → (lane, begin ts).
    let mut open: BTreeMap<SpanKey, (u64, u64)> = BTreeMap::new();
    // Queue depth: every span begin and every cache hit consumes one
    // scheduled work item.
    let mut pending = events
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                CampaignEvent::Started { .. }
                    | CampaignEvent::Cached { .. }
                    | CampaignEvent::Evaluating { .. }
            )
        })
        .count() as u64;
    trace.counter("pending", 0, pending);
    trace.counter("workers", 0, 0);

    let mut last_seq = 0u64;
    let mut cow_shared = 0u64;
    let mut cow_copied = 0u64;
    for (seq, event) in events {
        let ts = *seq;
        last_seq = last_seq.max(ts);
        if let CampaignEvent::Classified {
            pages_shared,
            pages_copied,
            ..
        }
        | CampaignEvent::Evaluated {
            pages_shared,
            pages_copied,
            ..
        } = event
        {
            cow_shared += pages_shared;
            cow_copied += pages_copied;
            trace.counter("cow_pages_shared", ts, cow_shared);
            trace.counter("cow_pages_copied", ts, cow_copied);
            trace.counter("cow_pages_restored", ts, cow_copied);
        }
        match span_key(event) {
            Some((key, true)) => {
                let lane = lanes.grab();
                open.insert(key, (lane, ts));
                pending -= 1;
                trace.counter("pending", ts, pending);
                trace.counter("workers", ts, open.len() as u64);
            }
            Some((key, false)) => {
                if let Some((lane, begin)) = open.remove(&key) {
                    let (phase, function) = key;
                    trace.complete(
                        &format!("{phase}:{function}"),
                        lane,
                        begin,
                        (ts - begin).max(1),
                    );
                    lanes.release(lane);
                    trace.counter("workers", ts, open.len() as u64);
                }
            }
            None => match event {
                CampaignEvent::Cached { function, .. } => {
                    // Zero-width work item: takes and releases a lane
                    // at one instant.
                    let lane = lanes.grab();
                    trace.instant(&format!("cached:{function}"), lane, ts);
                    lanes.release(lane);
                    pending -= 1;
                    trace.counter("pending", ts, pending);
                }
                CampaignEvent::Retried { function, .. }
                | CampaignEvent::Faulted { function, .. } => {
                    let lane = open
                        .get(&("inject".to_string(), function.clone()))
                        .map(|(lane, _)| *lane)
                        .unwrap_or(0);
                    let label = match event {
                        CampaignEvent::Retried { .. } => "retried",
                        _ => "faulted",
                    };
                    trace.instant(&format!("{label}:{function}"), lane, ts);
                }
                _ => {}
            },
        }
    }
    // A truncated journal (campaign aborted mid-function) leaves spans
    // open; close them one tick past the end so the trace stays valid.
    for ((phase, function), (lane, begin)) in open {
        trace.complete(
            &format!("{phase}:{function}"),
            lane,
            begin,
            (last_seq + 1 - begin).max(1),
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn started(f: &str) -> CampaignEvent {
        CampaignEvent::Started { function: f.into() }
    }

    fn classified(f: &str) -> CampaignEvent {
        CampaignEvent::Classified {
            function: f.into(),
            safe: true,
            calls: 1,
            retries: 0,
            fuel_used: 0,
            pages_shared: 50,
            pages_copied: 3,
            robust: vec![],
        }
    }

    #[test]
    fn interleaved_spans_take_distinct_lanes_and_reuse_freed_ones() {
        let events: Vec<(u64, CampaignEvent)> = vec![
            (0, started("strcpy")),
            (1, started("strlen")),
            (2, classified("strcpy")),
            (3, started("abs")),
            (4, classified("strlen")),
            (5, classified("abs")),
        ];
        let trace = chrome_trace(&events);
        let doc = trace.render();
        json::validate(doc.trim()).unwrap();
        // strcpy lane 0, strlen lane 1; abs begins after strcpy ended →
        // reuses lane 0.
        assert!(doc.contains(
            "\"name\":\"inject:strcpy\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":2"
        ));
        assert!(doc.contains(
            "\"name\":\"inject:strlen\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1,\"dur\":3"
        ));
        assert!(doc.contains(
            "\"name\":\"inject:abs\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":3,\"dur\":2"
        ));
        // Worker occupancy peaked at 2.
        assert!(doc.contains(
            "\"name\":\"workers\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1,\"args\":{\"value\":2}"
        ));
    }

    #[test]
    fn cached_hits_and_eval_spans_are_represented() {
        let events: Vec<(u64, CampaignEvent)> = vec![
            (
                0,
                CampaignEvent::Cached {
                    function: "abs".into(),
                    fingerprint: "deadbeef".into(),
                },
            ),
            (
                1,
                CampaignEvent::Evaluating {
                    function: "strcpy".into(),
                    mode: "Full-Auto Wrapped".into(),
                },
            ),
            (
                2,
                CampaignEvent::Evaluated {
                    function: "strcpy".into(),
                    mode: "Full-Auto Wrapped".into(),
                    tests: 40,
                    failures: 0,
                    pages_shared: 4000,
                    pages_copied: 120,
                },
            ),
        ];
        let trace = chrome_trace(&events);
        let doc = trace.render();
        json::validate(doc.trim()).unwrap();
        assert!(doc.contains("\"name\":\"cached:abs\",\"ph\":\"i\""));
        assert!(doc.contains("\"name\":\"eval:Full-Auto Wrapped:strcpy\",\"ph\":\"X\""));
        // CoW containment cost tracks, sampled at the eval span's end.
        assert!(doc.contains(
            "\"name\":\"cow_pages_shared\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2,\"args\":{\"value\":4000}"
        ));
        assert!(doc.contains(
            "\"name\":\"cow_pages_copied\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2,\"args\":{\"value\":120}"
        ));
        assert!(doc.contains(
            "\"name\":\"cow_pages_restored\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2,\"args\":{\"value\":120}"
        ));
        // Queue drains 2 → 0 (the cached item and the eval item).
        assert!(doc.contains(
            "\"name\":\"pending\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"value\":1}"
        ));
        assert!(doc.contains("\"ts\":1,\"args\":{\"value\":0}"));
    }

    #[test]
    fn truncated_journals_still_export_valid_spans() {
        let events: Vec<(u64, CampaignEvent)> = vec![
            (0, started("strcpy")),
            (
                1,
                CampaignEvent::Retried {
                    function: "strcpy".into(),
                    retries: 3,
                },
            ),
            // No Classified: the campaign died mid-function.
        ];
        let trace = chrome_trace(&events);
        let doc = trace.render();
        json::validate(doc.trim()).unwrap();
        assert!(doc.contains("\"name\":\"retried:strcpy\",\"ph\":\"i\",\"pid\":1,\"tid\":0"));
        assert!(doc.contains("\"name\":\"inject:strcpy\",\"ph\":\"X\""));
    }

    #[test]
    fn export_is_a_pure_function_of_the_journal() {
        let events: Vec<(u64, CampaignEvent)> = vec![
            (0, started("strcpy")),
            (1, started("strlen")),
            (2, classified("strlen")),
            (3, classified("strcpy")),
        ];
        assert_eq!(
            chrome_trace(&events).render(),
            chrome_trace(&events).render()
        );
    }
}
