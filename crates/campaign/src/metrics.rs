//! Aggregate campaign accounting.

use std::fmt;
use std::time::Duration;

/// Totals across one campaign run, printed at the end and asserted on
/// by the warm-cache acceptance test (a warm run performs zero injected
/// calls).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignMetrics {
    /// Functions processed.
    pub functions: u64,
    /// Declarations served from the persistent cache.
    pub cache_hits: u64,
    /// Declarations that required a fresh injection campaign.
    pub cache_misses: u64,
    /// Sandboxed injected calls performed (0 on a fully warm cache).
    pub injected_calls: u64,
    /// Adaptive retries performed.
    pub adaptive_retries: u64,
    /// Hang-detection fuel consumed across all injected calls.
    pub fuel_used: u64,
    /// Ballista evaluation tests executed (0 in declarations-only mode).
    pub evaluation_tests: u64,
    /// Worker threads used.
    pub jobs: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl CampaignMetrics {
    /// Fold another function's per-campaign contribution in.
    pub fn absorb(&mut self, other: &CampaignMetrics) {
        self.functions += other.functions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.injected_calls += other.injected_calls;
        self.adaptive_retries += other.adaptive_retries;
        self.fuel_used += other.fuel_used;
        self.evaluation_tests += other.evaluation_tests;
    }
}

impl fmt::Display for CampaignMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign: {} functions | cache {} hit / {} miss | {} injected calls | \
             {} adaptive retries | {} fuel | {} evaluation tests | {} jobs | {:.2}s",
            self.functions,
            self.cache_hits,
            self.cache_misses,
            self.injected_calls,
            self.adaptive_retries,
            self.fuel_used,
            self.evaluation_tests,
            self.jobs,
            self.elapsed.as_secs_f64()
        )
    }
}
