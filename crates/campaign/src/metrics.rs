//! Aggregate campaign accounting.

use std::fmt;
use std::time::Duration;

/// Totals across one campaign run, printed at the end and asserted on
/// by the warm-cache acceptance test (a warm run performs zero injected
/// calls).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignMetrics {
    /// Functions processed.
    pub functions: u64,
    /// Declarations served from the persistent cache.
    pub cache_hits: u64,
    /// Declarations that required a fresh injection campaign.
    pub cache_misses: u64,
    /// Sandboxed injected calls performed (0 on a fully warm cache).
    pub injected_calls: u64,
    /// Adaptive retries performed.
    pub adaptive_retries: u64,
    /// Hang-detection fuel consumed across all injected calls.
    pub fuel_used: u64,
    /// Ballista evaluation tests executed (0 in declarations-only mode).
    pub evaluation_tests: u64,
    /// Copy-on-write world snapshots taken to contain sandboxed calls
    /// (0 when the deep-clone reference containment is selected).
    pub snapshots: u64,
    /// Pages reference-shared across those snapshots instead of copied.
    pub pages_shared: u64,
    /// Private page copies faulted in by contained calls (their dirty
    /// footprint).
    pub pages_copied: u64,
    /// Pages discarded when child images were rolled back. Every
    /// contained call here is run-and-discard, so this equals the dirty
    /// footprint — the restore cost is O(dirty pages), never O(world).
    pub pages_restored: u64,
    /// Worker threads used.
    pub jobs: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl CampaignMetrics {
    /// Fold another function's per-campaign contribution in.
    ///
    /// The exhaustive destructure (no `..`) is deliberate: adding a
    /// field to [`CampaignMetrics`] without deciding how it aggregates
    /// must be a compile error here, not a silently dropped counter.
    pub fn absorb(&mut self, other: &CampaignMetrics) {
        let CampaignMetrics {
            functions,
            cache_hits,
            cache_misses,
            injected_calls,
            adaptive_retries,
            fuel_used,
            evaluation_tests,
            snapshots,
            pages_shared,
            pages_copied,
            pages_restored,
            // Run-level properties, not per-function contributions: the
            // worker count is fixed by the orchestrator and wall time is
            // stamped once at the end of the run.
            jobs: _,
            elapsed: _,
        } = other;
        self.functions += functions;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.injected_calls += injected_calls;
        self.adaptive_retries += adaptive_retries;
        self.fuel_used += fuel_used;
        self.evaluation_tests += evaluation_tests;
        self.snapshots += snapshots;
        self.pages_shared += pages_shared;
        self.pages_copied += pages_copied;
        self.pages_restored += pages_restored;
    }

    /// Fold one sandbox containment delta in (injection or evaluation).
    pub fn absorb_cow(&mut self, cow: &healers_simproc::CowStats) {
        self.snapshots += cow.snapshots;
        self.pages_shared += cow.pages_shared;
        self.pages_copied += cow.pages_copied;
        // Every sandboxed call in a campaign discards its child image,
        // so the pages restored (freed at rollback) are exactly the
        // private copies the child faulted in.
        self.pages_restored += cow.pages_copied;
    }
}

impl fmt::Display for CampaignMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign: {} functions | cache {} hit / {} miss | {} injected calls | \
             {} adaptive retries | {} fuel | {} evaluation tests | \
             cow {} snapshots / {} shared / {} copied / {} restored | {} jobs | {:.2}s",
            self.functions,
            self.cache_hits,
            self.cache_misses,
            self.injected_calls,
            self.adaptive_retries,
            self.fuel_used,
            self.evaluation_tests,
            self.snapshots,
            self.pages_shared,
            self.pages_copied,
            self.pages_restored,
            self.jobs,
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_folds_every_counter_and_skips_run_level_fields() {
        // One distinct prime per counter so a cross-wired addition (or
        // a counter absorbed twice) cannot cancel out.
        let contribution = CampaignMetrics {
            functions: 2,
            cache_hits: 3,
            cache_misses: 5,
            injected_calls: 7,
            adaptive_retries: 11,
            fuel_used: 13,
            evaluation_tests: 17,
            snapshots: 19,
            pages_shared: 23,
            pages_copied: 29,
            pages_restored: 31,
            jobs: 37,
            elapsed: Duration::from_secs(41),
        };
        let mut total = CampaignMetrics {
            jobs: 4,
            elapsed: Duration::from_secs(1),
            ..CampaignMetrics::default()
        };
        total.absorb(&contribution);
        total.absorb(&contribution);
        assert_eq!(
            total,
            CampaignMetrics {
                functions: 4,
                cache_hits: 6,
                cache_misses: 10,
                injected_calls: 14,
                adaptive_retries: 22,
                fuel_used: 26,
                evaluation_tests: 34,
                snapshots: 38,
                pages_shared: 46,
                pages_copied: 58,
                pages_restored: 62,
                // Run-level fields belong to the accumulator, not the
                // contributions.
                jobs: 4,
                elapsed: Duration::from_secs(1),
            }
        );
    }

    #[test]
    fn absorb_cow_equates_restored_with_copied() {
        let mut m = CampaignMetrics::default();
        m.absorb_cow(&healers_simproc::CowStats {
            snapshots: 2,
            pages_shared: 100,
            pages_copied: 7,
            table_clones: 3,
        });
        assert_eq!(m.snapshots, 2);
        assert_eq!(m.pages_shared, 100);
        assert_eq!(m.pages_copied, 7);
        assert_eq!(m.pages_restored, 7);
    }
}
