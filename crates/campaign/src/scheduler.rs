//! The work-stealing scheduler.
//!
//! Per-function campaigns are embarrassingly parallel but wildly uneven
//! — `asctime`'s adaptive campaign runs thousands of calls while `abs`
//! runs a handful — so static partitioning leaves workers idle. Items
//! are dealt round-robin into one deque per worker; each worker pops
//! from the front of its own deque and, when empty, steals from the
//! *back* of the fullest other deque. Results land in their item's slot,
//! so the merged output is in item order — bit-identical regardless of
//! worker count or scheduling, which is what makes `--jobs N` safe for
//! artifact generation.
//!
//! Built on `std::thread::scope` only; no external dependencies.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Run `work(index, &items[index])` for every item, on `jobs` workers,
/// and return the results in item order.
///
/// # Panics
///
/// Propagates the first worker panic (remaining items are abandoned).
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i % jobs == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for me in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let work = &work;
            handles.push(scope.spawn(move || loop {
                let Some(index) = next_item(queues, me) else {
                    return;
                };
                let result = work(index, &items[index]);
                *slots[index].lock().unwrap() = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every queued item produces a result")
        })
        .collect()
}

/// Pop from worker `me`'s own deque, or steal from the back of the
/// fullest other deque.
fn next_item(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(index) = queues[me].lock().unwrap().pop_front() {
        return Some(index);
    }
    // Victim choice: the longest queue at scan time. Lengths must be
    // snapshotted before sorting — other workers drain concurrently, and
    // a comparator whose key changes mid-sort is an inconsistent total
    // order (std's sort panics on those). The snapshot is approximate
    // but enough to spread the tail.
    let mut victims: Vec<(usize, usize)> = (0..queues.len())
        .filter(|&w| w != me)
        .map(|w| (w, queues[w].lock().unwrap().len()))
        .collect();
    victims.sort_by_key(|&(_, len)| std::cmp::Reverse(len));
    for (victim, _) in victims {
        if let Some(index) = queues[victim].lock().unwrap().pop_back() {
            return Some(index);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order_for_any_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        let serial = run_indexed(1, &items, |i, &v| (i, v * v));
        for jobs in [2, 3, 8, 64] {
            let parallel = run_indexed(jobs, &items, |i, &v| (i, v * v));
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..257).collect();
        run_indexed(7, &items, |_, &v| {
            counters[v].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn uneven_items_complete_with_stealing() {
        // Front-load one queue with the slow items; stealing must drain it.
        let items: Vec<u64> = (0..32).map(|i| if i % 8 == 0 { 3 } else { 0 }).collect();
        let out = run_indexed(8, &items, |_, &ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_single_item_edge_cases() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_indexed(4, &empty, |_, &v| v).is_empty());
        assert_eq!(run_indexed(4, &[9u8], |_, &v| v), vec![9]);
    }
}
