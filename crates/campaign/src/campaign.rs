//! The campaign orchestrator: fans per-function work over the
//! work-stealing scheduler, consults the persistent declaration cache,
//! and narrates everything into the event journal.
//!
//! Determinism contract: the analysis path contains no randomness at
//! all, and the evaluation path gives every function its own RNG seeded
//! by [`derive_seed`], so both produce bit-identical results for any
//! `--jobs` value. (The legacy serial runner threads one shared RNG
//! through all functions; the campaign path trades that stream for
//! scheduling independence.)

use std::fs::File;
use std::io::{self, BufWriter};
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use healers_ballista::{Ballista, BallistaReport, Mode, TestClass};
use healers_core::{FunctionDecl, WrapperStats};
use healers_inject::FaultInjector;
use healers_libc::Libc;

use crate::cache::DeclCache;
use crate::fingerprint::{derive_seed, fingerprint};
use crate::journal::{CampaignEvent, Journal, JournalSender};
use crate::metrics::CampaignMetrics;
use crate::scheduler::run_indexed;

/// Configuration for one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads (values above the item count are clamped).
    pub jobs: usize,
    /// Persistent declaration cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// JSONL journal sink (`None` disables journaling).
    pub journal_path: Option<PathBuf>,
    /// Chrome trace-event timeline sink (`None` disables the export).
    /// Derived from the journal's sequence numbers, so it needs no
    /// journal file to be configured — recording happens in memory.
    pub trace_path: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            jobs: 1,
            cache_dir: None,
            journal_path: None,
            trace_path: None,
        }
    }
}

/// A running campaign: open cache, live journal, and the scheduler
/// settings shared by [`Campaign::analyze`] and [`Campaign::evaluate`].
pub struct Campaign {
    jobs: usize,
    cache: Option<DeclCache>,
    journal: Journal,
    trace_path: Option<PathBuf>,
}

impl Campaign {
    /// Open the configured cache and journal.
    ///
    /// # Errors
    ///
    /// Propagates failures creating the cache directory or journal file.
    pub fn new(config: &CampaignConfig) -> io::Result<Campaign> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(DeclCache::open(dir)?),
            None => None,
        };
        let sink: Option<Box<dyn io::Write + Send>> = match &config.journal_path {
            Some(path) => Some(Box::new(BufWriter::new(File::create(path)?))),
            None => None,
        };
        let journal = match (sink, config.trace_path.is_some()) {
            // Trace export needs the sequenced event stream recorded.
            (sink, true) => Journal::start_recording(sink),
            (Some(sink), false) => Journal::start(sink),
            (None, false) => Journal::disabled(),
        };
        Ok(Campaign {
            jobs: config.jobs.max(1),
            cache,
            journal,
            trace_path: config.trace_path.clone(),
        })
    }

    /// The open declaration cache, if caching is enabled.
    pub fn cache(&self) -> Option<&DeclCache> {
        self.cache.as_ref()
    }

    /// A cloneable handle for emitting events into this campaign's
    /// journal. Emissions after the campaign finishes (or is dropped)
    /// are silent no-ops, so worker threads outliving the campaign
    /// cannot panic it.
    pub fn journal_sender(&self) -> JournalSender {
        self.journal.sender()
    }

    /// Run the fault-injection analysis for `functions` in parallel and
    /// return their declarations in input order — bit-identical to
    /// [`healers_core::analyze`] for any worker count — plus the run's
    /// metrics. Cached declarations are returned without performing a
    /// single injected call.
    ///
    /// # Errors
    ///
    /// Propagates cache-write failures.
    ///
    /// # Panics
    ///
    /// Panics if a requested function is not exported by the library,
    /// matching [`healers_core::analyze`].
    pub fn analyze(
        &self,
        libc: &Libc,
        functions: &[&str],
    ) -> io::Result<(Vec<FunctionDecl>, CampaignMetrics)> {
        for name in functions {
            assert!(
                libc.get(name).is_some(),
                "{name} is not exported by the library"
            );
        }
        let start = Instant::now();
        let journal = self.journal.sender();
        let results = run_indexed(self.jobs, functions, |_, &name| {
            analyze_one(libc, name, self.cache.as_ref(), &journal)
        });

        let mut decls = Vec::with_capacity(functions.len());
        let mut metrics = CampaignMetrics {
            jobs: self.jobs as u64,
            ..CampaignMetrics::default()
        };
        for result in results {
            let (decl, per_fn) = result?;
            metrics.absorb(&per_fn);
            decls.push(decl);
        }
        metrics.elapsed = start.elapsed();
        Ok((decls, metrics))
    }

    /// Evaluate one Ballista configuration in parallel, merging
    /// per-function outcomes into a report in target-list order. Every
    /// function draws from its own RNG seeded by
    /// [`derive_seed`]`(ballista.seed(), name)`, so the report is
    /// bit-identical for any worker count.
    pub fn evaluate(
        &self,
        libc: &Libc,
        ballista: &Ballista,
        mode: Mode,
        decls: Vec<FunctionDecl>,
    ) -> (BallistaReport, CampaignMetrics) {
        let (report, metrics, _) = self.evaluate_traced(libc, ballista, mode, decls);
        (report, metrics)
    }

    /// [`Campaign::evaluate`], additionally merging the wrapper
    /// statistics of every per-test wrapper clone — the input of
    /// `healers report`. Each evaluation batch is bracketed by
    /// `Evaluating`/`Evaluated` journal events, which is what the trace
    /// export turns into per-function evaluation spans. The merged
    /// stats' counter fields are worker-count invariant (per-function
    /// stats merge in target-list order); the latency histograms inside
    /// are wall-clock and only populated while the `healers-trace` gate
    /// is on.
    pub fn evaluate_traced(
        &self,
        libc: &Libc,
        ballista: &Ballista,
        mode: Mode,
        decls: Vec<FunctionDecl>,
    ) -> (BallistaReport, CampaignMetrics, WrapperStats) {
        let start = Instant::now();
        let prepared = ballista.prepare_mode(libc, mode, decls);
        let journal = self.journal.sender();
        let functions = ballista.functions();
        let results = run_indexed(self.jobs, functions, |_, name| {
            journal.emit(CampaignEvent::Evaluating {
                function: name.clone(),
                mode: prepared.label().to_string(),
            });
            let mut rng = StdRng::seed_from_u64(derive_seed(ballista.seed(), name));
            let run = ballista.run_function_full(libc, &prepared, name, &mut rng);
            let failures = run
                .classes
                .iter()
                .filter(|c| matches!(c, TestClass::Crash | TestClass::Abort | TestClass::Hang))
                .count() as u64;
            journal.emit(CampaignEvent::Evaluated {
                function: name.clone(),
                mode: prepared.label().to_string(),
                tests: run.classes.len() as u64,
                failures,
                pages_shared: run.cow.pages_shared,
                pages_copied: run.cow.pages_copied,
            });
            // Live-progress counters: the `--progress` heartbeat reads
            // these from the process-global registry while workers run.
            let registry = healers_trace::metrics::global();
            registry.counter("campaign_evaluated_total").inc();
            registry.counter("campaign_faults_total").add(failures);
            run
        });

        let mut report = BallistaReport::new(prepared.label());
        let mut metrics = CampaignMetrics {
            jobs: self.jobs as u64,
            ..CampaignMetrics::default()
        };
        let mut wrapper_stats = WrapperStats::default();
        for (name, run) in functions.iter().zip(results) {
            metrics.functions += 1;
            metrics.evaluation_tests += run.classes.len() as u64;
            metrics.absorb_cow(&run.cow);
            wrapper_stats.absorb(&run.stats);
            for class in run.classes {
                report.record(name, class);
            }
        }
        metrics.elapsed = start.elapsed();
        (report, metrics, wrapper_stats)
    }

    /// Flush and close the journal, write the Chrome trace (when
    /// configured), and return the number of JSONL lines written (0
    /// when journaling is disabled).
    ///
    /// # Errors
    ///
    /// Propagates the journal drainer's I/O failure or a trace-file
    /// write failure.
    pub fn finish(mut self) -> io::Result<u64> {
        let tail = self.journal.shutdown()?;
        if let Some(path) = &self.trace_path {
            let trace = crate::chrome::chrome_trace(&tail.events);
            std::fs::write(path, trace.render())?;
        }
        Ok(tail.lines)
    }
}

/// One function's injection campaign: cache lookup, else run + store.
fn analyze_one(
    libc: &Libc,
    name: &str,
    cache: Option<&DeclCache>,
    journal: &JournalSender,
) -> io::Result<(FunctionDecl, CampaignMetrics)> {
    journal.emit(CampaignEvent::Started {
        function: name.to_string(),
    });
    // Completion and fault tallies land in the process-global registry
    // so `--progress` can report them without touching the journal.
    let registry = healers_trace::metrics::global();
    let injector = FaultInjector::new(libc, name).expect("validated before dispatch");
    let fp = fingerprint(&[&injector.signature()]);

    let mut per_fn = CampaignMetrics {
        functions: 1,
        ..CampaignMetrics::default()
    };
    if let Some(cache) = cache {
        if let Some(decl) = cache.lookup(name, fp) {
            journal.emit(CampaignEvent::Cached {
                function: name.to_string(),
                fingerprint: fp.to_string(),
            });
            per_fn.cache_hits = 1;
            registry.counter("campaign_analyzed_total").inc();
            return Ok((decl, per_fn));
        }
        per_fn.cache_misses = 1;
    }

    let report = injector.run();
    if report.adaptive_retries > 0 {
        journal.emit(CampaignEvent::Retried {
            function: name.to_string(),
            retries: report.adaptive_retries as u64,
        });
    }
    let failures = report
        .records
        .iter()
        .filter(|r| r.outcome.is_failure())
        .count() as u64;
    if failures > 0 {
        journal.emit(CampaignEvent::Faulted {
            function: name.to_string(),
            failures,
        });
    }
    journal.emit(CampaignEvent::Classified {
        function: name.to_string(),
        safe: report.safe,
        calls: report.calls as u64,
        retries: report.adaptive_retries as u64,
        fuel_used: report.fuel_used,
        pages_shared: report.cow.pages_shared,
        pages_copied: report.cow.pages_copied,
        robust: report
            .args
            .iter()
            .map(|a| a.robust.robust.notation())
            .collect(),
    });
    per_fn.injected_calls = report.calls as u64;
    per_fn.adaptive_retries = report.adaptive_retries as u64;
    per_fn.fuel_used = report.fuel_used;
    per_fn.absorb_cow(&report.cow);
    registry.counter("campaign_analyzed_total").inc();
    registry.counter("campaign_faults_total").add(failures);

    let decl = FunctionDecl::from_report(&report);
    if let Some(cache) = cache {
        cache.store(name, fp, &decl)?;
    }
    Ok((decl, per_fn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use healers_core::decls_to_xml;

    const FUNCS: &[&str] = &["abs", "strlen", "asctime", "isatty"];

    #[test]
    fn parallel_analysis_matches_the_serial_pipeline() {
        let libc = Libc::standard();
        let serial = healers_core::analyze(&libc, FUNCS);
        for jobs in [1, 8] {
            let campaign = Campaign::new(&CampaignConfig {
                jobs,
                ..CampaignConfig::default()
            })
            .unwrap();
            let (decls, metrics) = campaign.analyze(&libc, FUNCS).unwrap();
            assert_eq!(
                decls_to_xml(&decls),
                decls_to_xml(&serial),
                "jobs={jobs} output differs from serial analyze"
            );
            assert_eq!(metrics.functions, FUNCS.len() as u64);
            assert!(metrics.injected_calls > 0);
            campaign.finish().unwrap();
        }
    }

    #[test]
    fn evaluation_is_worker_count_invariant() {
        let libc = Libc::standard();
        let ballista = Ballista::new()
            .with_functions(&["strcpy", "abs", "strlen"])
            .with_cap(40);
        let mut renders = Vec::new();
        for jobs in [1, 8] {
            let campaign = Campaign::new(&CampaignConfig {
                jobs,
                ..CampaignConfig::default()
            })
            .unwrap();
            let (report, metrics) =
                campaign.evaluate(&libc, &ballista, Mode::Unwrapped, Vec::new());
            assert!(metrics.evaluation_tests > 0);
            renders.push(report.render());
            campaign.finish().unwrap();
        }
        assert_eq!(renders[0], renders[1]);
    }

    #[test]
    fn evaluation_snapshot_telemetry_is_worker_count_invariant() {
        let libc = Libc::standard();
        let ballista = Ballista::new()
            .with_functions(&["strcpy", "abs", "strlen"])
            .with_cap(30);
        let mut seen = Vec::new();
        for jobs in [1, 8] {
            let campaign = Campaign::new(&CampaignConfig {
                jobs,
                ..CampaignConfig::default()
            })
            .unwrap();
            let (_, metrics) = campaign.evaluate(&libc, &ballista, Mode::Unwrapped, Vec::new());
            assert_eq!(
                metrics.snapshots, metrics.evaluation_tests,
                "one containment snapshot per evaluation test"
            );
            assert!(metrics.pages_shared > 0);
            assert_eq!(metrics.pages_restored, metrics.pages_copied);
            seen.push((
                metrics.snapshots,
                metrics.pages_shared,
                metrics.pages_copied,
            ));
            campaign.finish().unwrap();
        }
        assert_eq!(seen[0], seen[1], "cow counters must not depend on --jobs");
    }

    #[test]
    fn deep_clone_containment_reproduces_the_report_without_snapshots() {
        let libc = Libc::standard();
        let functions = ["strcpy", "abs"];
        let cow_b = Ballista::new().with_functions(&functions).with_cap(30);
        let deep_b = Ballista::new()
            .with_functions(&functions)
            .with_cap(30)
            .with_containment(healers_simproc::Containment::DeepClone);
        let campaign = Campaign::new(&CampaignConfig::default()).unwrap();
        let (cow_report, cow_metrics) =
            campaign.evaluate(&libc, &cow_b, Mode::Unwrapped, Vec::new());
        let (deep_report, deep_metrics) =
            campaign.evaluate(&libc, &deep_b, Mode::Unwrapped, Vec::new());
        assert_eq!(cow_report.render(), deep_report.render());
        assert!(cow_metrics.snapshots > 0);
        assert_eq!(deep_metrics.snapshots, 0);
        campaign.finish().unwrap();
    }

    #[test]
    fn report_totals_include_check_work_of_crashed_calls() {
        // Full-auto closedir: the wrapper cannot fully validate DIR
        // pointers, so its checks run and some calls still crash. The
        // crashed tests' wrapper stats must still reach the campaign
        // totals — before the snapshot API they died with the child
        // image that ran them.
        let libc = Libc::standard();
        let ballista = Ballista::new().with_functions(&["closedir"]).with_cap(50);
        let decls = ballista.analyze_targets(&libc);
        let campaign = Campaign::new(&CampaignConfig::default()).unwrap();
        let (report, metrics, stats) =
            campaign.evaluate_traced(&libc, &ballista, Mode::FullAuto, decls);
        let outcome = report.function("closedir").unwrap();
        assert!(outcome.failures() > 0, "full-auto closedir must still fail");
        assert_eq!(
            stats.calls, metrics.evaluation_tests,
            "every test must contribute its wrapper call, crashed or not"
        );
        assert!(stats.checks > 0, "crashed calls still ran their checks");
        campaign.finish().unwrap();
    }

    #[test]
    fn warm_cache_performs_zero_injected_calls() {
        let dir =
            std::env::temp_dir().join(format!("healers-campaign-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CampaignConfig {
            jobs: 4,
            cache_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let libc = Libc::standard();

        let cold = Campaign::new(&config).unwrap();
        let (cold_decls, cold_metrics) = cold.analyze(&libc, FUNCS).unwrap();
        assert_eq!(cold_metrics.cache_misses, FUNCS.len() as u64);
        assert!(cold_metrics.injected_calls > 0);
        cold.finish().unwrap();

        let warm = Campaign::new(&config).unwrap();
        let (warm_decls, warm_metrics) = warm.analyze(&libc, FUNCS).unwrap();
        assert_eq!(warm_metrics.cache_hits, FUNCS.len() as u64);
        assert_eq!(warm_metrics.injected_calls, 0, "warm run must not inject");
        assert_eq!(warm_metrics.fuel_used, 0);
        assert_eq!(decls_to_xml(&warm_decls), decls_to_xml(&cold_decls));
        warm.finish().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
