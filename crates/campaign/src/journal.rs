//! The structured campaign event journal.
//!
//! Workers emit [`CampaignEvent`]s through a cloned channel sender; a
//! dedicated drainer thread assigns sequence numbers and writes one
//! JSON object per line (JSONL) to the configured sink. Keeping the
//! file I/O on a single thread means workers never contend on the sink
//! and lines are never interleaved.

use std::io::Write;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

use crate::json::JsonObject;

/// One structured event in a campaign's life.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// A function's injection campaign began on some worker.
    Started {
        /// Function name.
        function: String,
    },
    /// A function's declaration was served from the persistent cache —
    /// zero injected calls were performed for it.
    Cached {
        /// Function name.
        function: String,
        /// The fingerprint the entry was found under (hex).
        fingerprint: String,
    },
    /// Adaptive retries performed while injecting one function.
    Retried {
        /// Function name.
        function: String,
        /// Number of adaptive adjustments.
        retries: u64,
    },
    /// Failure outcomes observed while injecting one function.
    Faulted {
        /// Function name.
        function: String,
        /// Calls that crashed, hung, or aborted.
        failures: u64,
    },
    /// A function's injection campaign finished and was classified.
    Classified {
        /// Function name.
        function: String,
        /// §3.4 attribute: `true` iff no test case failed.
        safe: bool,
        /// Total sandboxed calls performed.
        calls: u64,
        /// Total adaptive retries performed.
        retries: u64,
        /// Total hang-detection fuel consumed.
        fuel_used: u64,
        /// Robust argument types, in the paper's notation.
        robust: Vec<String>,
    },
    /// A function's Ballista evaluation batch finished in one mode.
    Evaluated {
        /// Function name.
        function: String,
        /// Configuration label (Figure 6 bar).
        mode: String,
        /// Tests executed.
        tests: u64,
        /// Tests that crashed, hung, or aborted.
        failures: u64,
    },
}

impl CampaignEvent {
    /// The function this event concerns.
    pub fn function(&self) -> &str {
        match self {
            CampaignEvent::Started { function }
            | CampaignEvent::Cached { function, .. }
            | CampaignEvent::Retried { function, .. }
            | CampaignEvent::Faulted { function, .. }
            | CampaignEvent::Classified { function, .. }
            | CampaignEvent::Evaluated { function, .. } => function,
        }
    }

    /// Render as a single JSON line with sequence number `seq`.
    pub fn to_json(&self, seq: u64) -> String {
        let base = JsonObject::new().u64("seq", seq);
        match self {
            CampaignEvent::Started { function } => {
                base.str("event", "started").str("function", function)
            }
            CampaignEvent::Cached {
                function,
                fingerprint,
            } => base
                .str("event", "cached")
                .str("function", function)
                .str("fingerprint", fingerprint),
            CampaignEvent::Retried { function, retries } => base
                .str("event", "retried")
                .str("function", function)
                .u64("retries", *retries),
            CampaignEvent::Faulted { function, failures } => base
                .str("event", "faulted")
                .str("function", function)
                .u64("failures", *failures),
            CampaignEvent::Classified {
                function,
                safe,
                calls,
                retries,
                fuel_used,
                robust,
            } => base
                .str("event", "classified")
                .str("function", function)
                .bool("safe", *safe)
                .u64("calls", *calls)
                .u64("retries", *retries)
                .u64("fuel_used", *fuel_used)
                .str_array("robust", robust),
            CampaignEvent::Evaluated {
                function,
                mode,
                tests,
                failures,
            } => base
                .str("event", "evaluated")
                .str("function", function)
                .str("mode", mode)
                .u64("tests", *tests)
                .u64("failures", *failures),
        }
        .finish()
    }
}

/// The sending half handed to workers (clone freely).
#[derive(Debug, Clone)]
pub struct JournalSender {
    tx: Option<Sender<CampaignEvent>>,
}

impl JournalSender {
    /// A sender that drops every event (journaling disabled).
    pub fn disabled() -> Self {
        JournalSender { tx: None }
    }

    /// Emit one event (no-op when journaling is disabled or the drainer
    /// has already shut down).
    pub fn emit(&self, event: CampaignEvent) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(event);
        }
    }
}

/// A running journal drainer.
#[derive(Debug)]
pub struct Journal {
    sender: JournalSender,
    drainer: Option<JoinHandle<std::io::Result<u64>>>,
}

impl Journal {
    /// Start a drainer writing JSONL to `sink`.
    pub fn start(mut sink: Box<dyn Write + Send>) -> Self {
        let (tx, rx) = channel::<CampaignEvent>();
        let drainer = std::thread::spawn(move || {
            let mut seq = 0u64;
            for event in rx {
                writeln!(sink, "{}", event.to_json(seq))?;
                seq += 1;
            }
            sink.flush()?;
            Ok(seq)
        });
        Journal {
            sender: JournalSender { tx: Some(tx) },
            drainer: Some(drainer),
        }
    }

    /// A journal that discards everything (no sink configured).
    pub fn disabled() -> Self {
        Journal {
            sender: JournalSender::disabled(),
            drainer: None,
        }
    }

    /// The sending half for workers.
    pub fn sender(&self) -> JournalSender {
        self.sender.clone()
    }

    /// Drop the sender, wait for the drainer to flush, and return the
    /// number of lines written (0 when disabled).
    ///
    /// # Errors
    ///
    /// Propagates the drainer's I/O failure.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.sender = JournalSender::disabled();
        match self.drainer.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
            None => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use std::sync::{Arc, Mutex};

    /// A Vec-backed Write shared with the test.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_become_sequenced_parseable_jsonl() {
        let buf = SharedBuf::default();
        let journal = Journal::start(Box::new(buf.clone()));
        let sender = journal.sender();
        sender.emit(CampaignEvent::Started {
            function: "strcpy".into(),
        });
        sender.emit(CampaignEvent::Classified {
            function: "strcpy".into(),
            safe: false,
            calls: 31,
            retries: 7,
            fuel_used: 1234,
            robust: vec!["NTS".into(), "R_ARRAY[44]".into()],
        });
        drop(sender);
        let lines_written = journal.finish().unwrap();
        assert_eq!(lines_written, 2);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            validate(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}\n{line}"));
            assert!(line.contains(&format!("\"seq\":{i}")));
        }
        assert!(lines[0].contains("\"event\":\"started\""));
        assert!(lines[1].contains("\"robust\":[\"NTS\",\"R_ARRAY[44]\"]"));
    }

    #[test]
    fn disabled_journal_is_a_cheap_noop() {
        let journal = Journal::disabled();
        let sender = journal.sender();
        sender.emit(CampaignEvent::Started {
            function: "abs".into(),
        });
        assert_eq!(journal.finish().unwrap(), 0);
    }
}
