//! The structured campaign event journal.
//!
//! Workers emit [`CampaignEvent`]s through a cloned channel sender; a
//! dedicated drainer thread assigns sequence numbers and writes one
//! JSON object per line (JSONL) to the configured sink. Keeping the
//! file I/O on a single thread means workers never contend on the sink
//! and lines are never interleaved.
//!
//! The drainer can additionally *record* the sequenced event stream in
//! memory ([`Journal::start_recording`]); the campaign's Chrome
//! trace-event export is derived from that record, which is why the
//! exported timeline is a pure function of the journal sequence.
//!
//! Shutdown is hardened in both directions: dropping a [`Journal`]
//! joins the drainer (so the sink is always flushed, even on early
//! exit), and a worker emitting *after* shutdown is a silent no-op —
//! a straggler can never panic the campaign through its telemetry.

use std::io::Write;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

use crate::json::JsonObject;

/// Anything a [`Journal`] can drain: an owned event that knows how to
/// render itself as one JSON line under a sequence number. The
/// campaign's [`CampaignEvent`] and the fuzzer's event type both
/// implement this, which is how campaigns and fuzz runs share one
/// journal/trace pipeline.
///
/// The pipeline is schedule-aware by construction: the threaded
/// fuzzer's interleaving events (thread lanes and check-vs-call
/// windows) are just another `JournalEvent`, sequenced by the same
/// single drainer — so a journal with schedules is exactly as
/// byte-deterministic across worker counts as one without, and CI can
/// diff `--jobs 1` against `--jobs 4` with schedules in the stream.
pub trait JournalEvent: Send + 'static {
    /// Render as a single JSON line with sequence number `seq`.
    fn to_json(&self, seq: u64) -> String;
}

impl JournalEvent for CampaignEvent {
    fn to_json(&self, seq: u64) -> String {
        CampaignEvent::to_json(self, seq)
    }
}

/// One structured event in a campaign's life.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// A function's injection campaign began on some worker.
    Started {
        /// Function name.
        function: String,
    },
    /// A function's declaration was served from the persistent cache —
    /// zero injected calls were performed for it.
    Cached {
        /// Function name.
        function: String,
        /// The fingerprint the entry was found under (hex).
        fingerprint: String,
    },
    /// Adaptive retries performed while injecting one function.
    Retried {
        /// Function name.
        function: String,
        /// Number of adaptive adjustments.
        retries: u64,
    },
    /// Failure outcomes observed while injecting one function.
    Faulted {
        /// Function name.
        function: String,
        /// Calls that crashed, hung, or aborted.
        failures: u64,
    },
    /// A function's injection campaign finished and was classified.
    Classified {
        /// Function name.
        function: String,
        /// §3.4 attribute: `true` iff no test case failed.
        safe: bool,
        /// Total sandboxed calls performed.
        calls: u64,
        /// Total adaptive retries performed.
        retries: u64,
        /// Total hang-detection fuel consumed.
        fuel_used: u64,
        /// Pages reference-shared by the injection's containment
        /// snapshots instead of copied.
        pages_shared: u64,
        /// Private page copies the injected calls faulted in (equal to
        /// the pages discarded when their snapshots were rolled back).
        pages_copied: u64,
        /// Robust argument types, in the paper's notation.
        robust: Vec<String>,
    },
    /// A function's Ballista evaluation batch began in one mode.
    Evaluating {
        /// Function name.
        function: String,
        /// Configuration label (Figure 6 bar).
        mode: String,
    },
    /// A function's Ballista evaluation batch finished in one mode.
    Evaluated {
        /// Function name.
        function: String,
        /// Configuration label (Figure 6 bar).
        mode: String,
        /// Tests executed.
        tests: u64,
        /// Tests that crashed, hung, or aborted.
        failures: u64,
        /// Pages reference-shared by the batch's containment snapshots.
        pages_shared: u64,
        /// Private page copies the batch's tests faulted in.
        pages_copied: u64,
    },
}

impl CampaignEvent {
    /// The function this event concerns.
    pub fn function(&self) -> &str {
        match self {
            CampaignEvent::Started { function }
            | CampaignEvent::Cached { function, .. }
            | CampaignEvent::Retried { function, .. }
            | CampaignEvent::Faulted { function, .. }
            | CampaignEvent::Classified { function, .. }
            | CampaignEvent::Evaluating { function, .. }
            | CampaignEvent::Evaluated { function, .. } => function,
        }
    }

    /// Render as a single JSON line with sequence number `seq`.
    pub fn to_json(&self, seq: u64) -> String {
        let base = JsonObject::new().u64("seq", seq);
        match self {
            CampaignEvent::Started { function } => {
                base.str("event", "started").str("function", function)
            }
            CampaignEvent::Cached {
                function,
                fingerprint,
            } => base
                .str("event", "cached")
                .str("function", function)
                .str("fingerprint", fingerprint),
            CampaignEvent::Retried { function, retries } => base
                .str("event", "retried")
                .str("function", function)
                .u64("retries", *retries),
            CampaignEvent::Faulted { function, failures } => base
                .str("event", "faulted")
                .str("function", function)
                .u64("failures", *failures),
            CampaignEvent::Classified {
                function,
                safe,
                calls,
                retries,
                fuel_used,
                pages_shared,
                pages_copied,
                robust,
            } => base
                .str("event", "classified")
                .str("function", function)
                .bool("safe", *safe)
                .u64("calls", *calls)
                .u64("retries", *retries)
                .u64("fuel_used", *fuel_used)
                .u64("pages_shared", *pages_shared)
                .u64("pages_copied", *pages_copied)
                .str_array("robust", robust),
            CampaignEvent::Evaluating { function, mode } => base
                .str("event", "evaluating")
                .str("function", function)
                .str("mode", mode),
            CampaignEvent::Evaluated {
                function,
                mode,
                tests,
                failures,
                pages_shared,
                pages_copied,
            } => base
                .str("event", "evaluated")
                .str("function", function)
                .str("mode", mode)
                .u64("tests", *tests)
                .u64("failures", *failures)
                .u64("pages_shared", *pages_shared)
                .u64("pages_copied", *pages_copied),
        }
        .finish()
    }
}

/// What flows through the drainer channel: events, or the shutdown
/// sentinel. The sentinel (rather than waiting for every sender clone
/// to drop) is what lets `shutdown`/`Drop` join the drainer even while
/// workers still hold cloned senders — their later emits just land in
/// a disconnected channel and are discarded.
#[derive(Debug)]
enum Msg<E> {
    Event(E),
    Shutdown,
}

/// The sending half handed to workers (clone freely).
#[derive(Debug)]
pub struct JournalSender<E = CampaignEvent> {
    tx: Option<Sender<Msg<E>>>,
}

// Manual impl: a derived Clone would needlessly require `E: Clone`.
impl<E> Clone for JournalSender<E> {
    fn clone(&self) -> Self {
        JournalSender {
            tx: self.tx.clone(),
        }
    }
}

impl<E> JournalSender<E> {
    /// A sender that drops every event (journaling disabled).
    pub fn disabled() -> Self {
        JournalSender { tx: None }
    }

    /// Emit one event (no-op when journaling is disabled or the drainer
    /// has already shut down).
    pub fn emit(&self, event: E) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Msg::Event(event));
        }
    }
}

/// What a drained journal produced: the line count written to the sink
/// and (in recording mode) the full sequenced event stream.
#[derive(Debug)]
pub struct JournalTail<E = CampaignEvent> {
    /// JSONL lines written to the sink.
    pub lines: u64,
    /// The sequenced events, when recording was on.
    pub events: Vec<(u64, E)>,
}

// Manual impl: a derived Default would needlessly require `E: Default`.
impl<E> Default for JournalTail<E> {
    fn default() -> Self {
        JournalTail {
            lines: 0,
            events: Vec::new(),
        }
    }
}

/// A running journal drainer.
#[derive(Debug)]
pub struct Journal<E: JournalEvent = CampaignEvent> {
    sender: JournalSender<E>,
    drainer: Option<JoinHandle<std::io::Result<JournalTail<E>>>>,
}

impl<E: JournalEvent> Journal<E> {
    /// Start a drainer writing JSONL to `sink`.
    pub fn start(sink: Box<dyn Write + Send>) -> Self {
        Journal::spawn(Some(sink), false)
    }

    /// Start a drainer that records the sequenced event stream in
    /// memory — the input of the trace export — and writes JSONL to
    /// `sink` when one is given.
    pub fn start_recording(sink: Option<Box<dyn Write + Send>>) -> Self {
        Journal::spawn(sink, true)
    }

    fn spawn(mut sink: Option<Box<dyn Write + Send>>, record: bool) -> Self {
        let (tx, rx) = channel::<Msg<E>>();
        let drainer = std::thread::spawn(move || {
            let mut tail = JournalTail::default();
            let mut seq = 0u64;
            // Two exit paths: the shutdown sentinel, or every sender
            // (including cloned ones) having dropped.
            #[allow(clippy::explicit_counter_loop)]
            for msg in rx {
                let event = match msg {
                    Msg::Event(event) => event,
                    Msg::Shutdown => break,
                };
                if let Some(sink) = sink.as_mut() {
                    writeln!(sink, "{}", event.to_json(seq))?;
                    tail.lines += 1;
                }
                if record {
                    tail.events.push((seq, event));
                }
                seq += 1;
            }
            if let Some(sink) = sink.as_mut() {
                sink.flush()?;
            }
            Ok(tail)
        });
        Journal {
            sender: JournalSender { tx: Some(tx) },
            drainer: Some(drainer),
        }
    }

    /// A journal that discards everything (no sink configured).
    pub fn disabled() -> Self {
        Journal {
            sender: JournalSender::disabled(),
            drainer: None,
        }
    }

    /// The sending half for workers.
    pub fn sender(&self) -> JournalSender<E> {
        self.sender.clone()
    }

    /// Stop accepting events, wait for the drainer to flush the sink,
    /// and return what it produced. Idempotent: a second call returns
    /// an empty [`JournalTail`]. Senders cloned earlier keep working as
    /// silent no-ops.
    ///
    /// # Errors
    ///
    /// Propagates the drainer's I/O failure.
    pub fn shutdown(&mut self) -> std::io::Result<JournalTail<E>> {
        if let Some(tx) = self.sender.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        match self.drainer.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
            None => Ok(JournalTail::default()),
        }
    }

    /// Shut down and return the number of lines written (0 when
    /// disabled).
    ///
    /// # Errors
    ///
    /// Propagates the drainer's I/O failure.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.shutdown().map(|tail| tail.lines)
    }
}

impl<E: JournalEvent> Drop for Journal<E> {
    fn drop(&mut self) {
        // Explicit shutdown on drop: joining the drainer guarantees the
        // sink was flushed even when the campaign exits early. Errors
        // and drainer panics cannot propagate out of a drop and are
        // deliberately discarded; callers who care use `shutdown`.
        if let Some(tx) = self.sender.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(handle) = self.drainer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use std::sync::{Arc, Mutex};

    /// A Vec-backed Write shared with the test.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_become_sequenced_parseable_jsonl() {
        let buf = SharedBuf::default();
        let journal = Journal::start(Box::new(buf.clone()));
        let sender = journal.sender();
        sender.emit(CampaignEvent::Started {
            function: "strcpy".into(),
        });
        sender.emit(CampaignEvent::Classified {
            function: "strcpy".into(),
            safe: false,
            calls: 31,
            retries: 7,
            fuel_used: 1234,
            pages_shared: 500,
            pages_copied: 42,
            robust: vec!["NTS".into(), "R_ARRAY[44]".into()],
        });
        drop(sender);
        let lines_written = journal.finish().unwrap();
        assert_eq!(lines_written, 2);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            validate(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}\n{line}"));
            assert!(line.contains(&format!("\"seq\":{i}")));
        }
        assert!(lines[0].contains("\"event\":\"started\""));
        assert!(lines[1].contains("\"robust\":[\"NTS\",\"R_ARRAY[44]\"]"));
        assert!(lines[1].contains("\"pages_shared\":500"));
        assert!(lines[1].contains("\"pages_copied\":42"));
    }

    #[test]
    fn disabled_journal_is_a_cheap_noop() {
        let journal = Journal::disabled();
        let sender = journal.sender();
        sender.emit(CampaignEvent::Started {
            function: "abs".into(),
        });
        assert_eq!(journal.finish().unwrap(), 0);
    }

    #[test]
    fn recording_mode_captures_the_sequenced_stream() {
        let mut journal = Journal::start_recording(None);
        let sender = journal.sender();
        sender.emit(CampaignEvent::Evaluating {
            function: "strlen".into(),
            mode: "FullAuto".into(),
        });
        sender.emit(CampaignEvent::Evaluated {
            function: "strlen".into(),
            mode: "FullAuto".into(),
            tests: 180,
            failures: 0,
            pages_shared: 0,
            pages_copied: 0,
        });
        drop(sender);
        let tail = journal.shutdown().unwrap();
        assert_eq!(tail.lines, 0, "no sink was configured");
        assert_eq!(tail.events.len(), 2);
        assert_eq!(tail.events[0].0, 0);
        assert_eq!(tail.events[1].0, 1);
        assert!(matches!(
            &tail.events[0].1,
            CampaignEvent::Evaluating { function, .. } if function == "strlen"
        ));
    }

    #[test]
    fn shutdown_is_idempotent_and_late_sends_are_harmless() {
        let buf = SharedBuf::default();
        let mut journal = Journal::start(Box::new(buf.clone()));
        let sender = journal.sender();
        sender.emit(CampaignEvent::Started {
            function: "strcpy".into(),
        });
        let tail = journal.shutdown().unwrap();
        assert_eq!(tail.lines, 1);
        // A straggler worker emitting after shutdown must not panic —
        // through the old clone or one taken after shutdown.
        sender.emit(CampaignEvent::Started {
            function: "late".into(),
        });
        journal.sender().emit(CampaignEvent::Started {
            function: "later".into(),
        });
        // Second shutdown: empty tail, no error, no double-join.
        let tail = journal.shutdown().unwrap();
        assert_eq!(tail.lines, 0);
        assert!(tail.events.is_empty());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "late events must not be written");
    }

    #[test]
    fn drop_flushes_the_sink() {
        let buf = SharedBuf::default();
        {
            let journal = Journal::start(Box::new(buf.clone()));
            journal.sender().emit(CampaignEvent::Started {
                function: "strcpy".into(),
            });
            // No finish(): the drop impl must join the drainer, so the
            // line is on the sink by the time the scope ends.
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"event\":\"started\""));
    }
}
