//! Parallel campaign orchestration for whole-library analysis.
//!
//! The HEALERS pipeline is embarrassingly parallel at function
//! granularity: each fault-injection campaign and each Ballista
//! evaluation batch touches only its own sandboxed worlds. This crate
//! adds the production harness around that fact:
//!
//! - [`scheduler`] — a work-stealing scheduler over `std::thread::scope`
//!   whose merged output is bit-identical for any worker count;
//! - [`cache`] — a persistent, content-addressed declaration cache
//!   keyed by a [`mod@fingerprint`] of everything the injection outcome
//!   depends on, so re-runs over an unchanged library skip injection
//!   entirely;
//! - [`journal`] — a structured [`CampaignEvent`] stream drained to
//!   JSONL by a dedicated thread;
//! - [`chrome`] — a Chrome trace-event export of the journal's
//!   sequenced stream (worker lanes, queue-depth counters), derived
//!   purely from journal sequence numbers;
//! - [`campaign`] — the orchestrator tying the pieces together, with
//!   aggregate [`CampaignMetrics`].
//!
//! No external dependencies; the whole crate is std + the sibling
//! HEALERS crates.
//!
//! # Examples
//!
//! ```
//! use healers_campaign::{Campaign, CampaignConfig};
//! use healers_libc::Libc;
//!
//! let campaign = Campaign::new(&CampaignConfig {
//!     jobs: 4,
//!     ..CampaignConfig::default()
//! })
//! .unwrap();
//! let libc = Libc::standard();
//! let (decls, metrics) = campaign.analyze(&libc, &["strcpy", "abs"]).unwrap();
//! assert_eq!(decls.len(), 2);
//! assert_eq!(metrics.functions, 2);
//! campaign.finish().unwrap();
//! ```

pub mod cache;
pub mod campaign;
pub mod chrome;
pub mod journal;
pub mod metrics;
pub mod scheduler;

// JSON emission/validation moved down into healers-trace (every
// exporter shares it now); re-exported so `healers_campaign::json`
// call sites keep working.
pub use healers_trace::json;

pub use cache::{CacheCounters, CacheError, CacheErrorKind, DeclCache, CACHE_FORMAT_VERSION};
pub use campaign::{Campaign, CampaignConfig};
pub use chrome::chrome_trace;
// The fingerprint module lives in `healers-ballista` so the serial
// runner can derive the same per-function seeds; re-exported here
// because the declaration cache keys are part of this crate's API.
pub use healers_ballista::fingerprint;
pub use healers_ballista::fingerprint::{derive_seed, fingerprint, Fingerprint, FORMAT_VERSION};
pub use journal::{CampaignEvent, Journal, JournalEvent, JournalSender, JournalTail};
pub use metrics::CampaignMetrics;
pub use scheduler::run_indexed;
