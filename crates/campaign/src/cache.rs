//! The persistent, content-addressed declaration cache.
//!
//! Layout: one file per function under the cache directory,
//! `<function>.<fingerprint>.xml`, holding that function's Figure-2
//! declaration serialized with [`healers_core::xml`]. The fingerprint
//! (see [`mod@crate::fingerprint`]) covers everything the declaration
//! depends on, so a lookup is a pure existence check: if the file named
//! by the current fingerprint exists and round-trips, the whole
//! injection campaign for that function is skipped. Storing a fresh
//! entry removes any stale files for the same function.
//!
//! # On-disk format
//!
//! Every entry begins with a one-line header (an XML comment, so the
//! payload stays a valid XML document to outside tooling):
//!
//! ```text
//! <!-- healers-decl-cache v2 sum:<16 hex> -->
//! <functions>...</functions>
//! ```
//!
//! The header carries the magic, the cache **format version**
//! ([`CACHE_FORMAT_VERSION`], distinct from the fingerprint's format
//! version), and an FNV checksum of the payload bytes. Damage —
//! truncation, bit rot, a partial copy, an entry written by a future
//! format — is detected and reported as a structured [`CacheError`],
//! never a panic. The two readers take different postures:
//!
//! * [`DeclCache::load_checked`] is **strict**: damage is an error.
//!   `healers serve` uses it at startup, where silently re-deriving a
//!   declaration would break the warm-start zero-injected-calls
//!   guarantee without anyone noticing.
//! * [`DeclCache::lookup`] is **lenient**: damage is a miss, and the
//!   next [`DeclCache::store`] overwrites it. Campaigns use it, where
//!   re-deriving is the correct self-healing response.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use healers_core::{decls_from_xml, decls_to_xml, FunctionDecl};

use crate::fingerprint::{fingerprint, Fingerprint};

/// The on-disk cache format version this build reads and writes.
pub const CACHE_FORMAT_VERSION: u32 = 2;

const HEADER_MAGIC: &str = "<!-- healers-decl-cache ";

/// What, specifically, is wrong with a cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheErrorKind {
    /// The file does not start with the cache header magic.
    BadMagic,
    /// The header names a format version this build does not speak.
    UnsupportedVersion(String),
    /// The header is present but not parseable.
    BadHeader,
    /// The payload does not match the header's checksum (truncation,
    /// bit rot, partial write).
    ChecksumMismatch,
    /// The payload is not a valid declaration document.
    Malformed(String),
    /// The entry holds a different function than its filename claims.
    WrongFunction,
    /// The file exists but could not be read.
    Io(io::ErrorKind),
}

/// A corrupt, truncated, or version-mismatched cache entry, with the
/// file it lives in.
#[derive(Debug)]
pub struct CacheError {
    /// The offending entry.
    pub path: PathBuf,
    /// What is wrong with it.
    pub kind: CacheErrorKind,
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = self.path.display();
        match &self.kind {
            CacheErrorKind::BadMagic => {
                write!(f, "cache entry {path}: missing healers-decl-cache header")
            }
            CacheErrorKind::UnsupportedVersion(v) => write!(
                f,
                "cache entry {path}: unsupported format version {v} (this build speaks v{CACHE_FORMAT_VERSION})"
            ),
            CacheErrorKind::BadHeader => write!(f, "cache entry {path}: unparseable header"),
            CacheErrorKind::ChecksumMismatch => write!(
                f,
                "cache entry {path}: payload does not match its checksum (truncated or corrupt)"
            ),
            CacheErrorKind::Malformed(why) => {
                write!(f, "cache entry {path}: malformed declaration: {why}")
            }
            CacheErrorKind::WrongFunction => write!(
                f,
                "cache entry {path}: holds a different function than its filename claims"
            ),
            CacheErrorKind::Io(kind) => write!(f, "cache entry {path}: unreadable ({kind})"),
        }
    }
}

impl std::error::Error for CacheError {}

/// Hit/miss counters (atomic: the cache is shared across workers).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounters {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A declaration cache rooted at one directory.
#[derive(Debug)]
pub struct DeclCache {
    dir: PathBuf,
    counters: CacheCounters,
}

impl DeclCache {
    /// Open (creating if needed) a cache under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DeclCache {
            dir,
            counters: CacheCounters::default(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    fn entry_path(&self, function: &str, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{function}.{fp}.xml"))
    }

    /// Strictly load the entry for `function` under fingerprint `fp`:
    /// `Ok(None)` when no entry exists, the declaration when one exists
    /// and verifies end-to-end.
    ///
    /// Does not touch the hit/miss counters — this is the verification
    /// read, not the campaign's cache probe.
    ///
    /// # Errors
    ///
    /// A [`CacheError`] naming the file and the damage: bad magic,
    /// unsupported format version, checksum mismatch, malformed
    /// payload, or a function-name mismatch.
    pub fn load_checked(
        &self,
        function: &str,
        fp: Fingerprint,
    ) -> Result<Option<FunctionDecl>, CacheError> {
        let path = self.entry_path(function, fp);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CacheError {
                    path,
                    kind: CacheErrorKind::Io(e.kind()),
                })
            }
        };
        let err = |kind| CacheError {
            path: path.clone(),
            kind,
        };

        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| err(CacheErrorKind::BadMagic))?;
        let fields = header
            .strip_prefix(HEADER_MAGIC)
            .ok_or_else(|| err(CacheErrorKind::BadMagic))?
            .strip_suffix(" -->")
            .ok_or_else(|| err(CacheErrorKind::BadHeader))?;
        let mut words = fields.split_whitespace();
        let version = words.next().ok_or_else(|| err(CacheErrorKind::BadHeader))?;
        if version != format!("v{CACHE_FORMAT_VERSION}") {
            return Err(err(CacheErrorKind::UnsupportedVersion(version.to_string())));
        }
        let sum = words
            .next()
            .and_then(|w| w.strip_prefix("sum:"))
            .ok_or_else(|| err(CacheErrorKind::BadHeader))?;
        if words.next().is_some() {
            return Err(err(CacheErrorKind::BadHeader));
        }
        if sum != fingerprint(&[payload]).to_string() {
            return Err(err(CacheErrorKind::ChecksumMismatch));
        }

        let mut decls =
            decls_from_xml(payload).map_err(|why| err(CacheErrorKind::Malformed(why)))?;
        if decls.len() != 1 || decls[0].name != function {
            return Err(err(CacheErrorKind::WrongFunction));
        }
        Ok(Some(decls.remove(0)))
    }

    /// Look up the declaration for `function` under fingerprint `fp`.
    ///
    /// The lenient reader: counts a hit only for an entry that passes
    /// every [`DeclCache::load_checked`] verification; a damaged entry
    /// counts as a miss and is overwritten by the next
    /// [`DeclCache::store`] — re-derivation is the campaign's
    /// self-healing response to cache damage.
    pub fn lookup(&self, function: &str, fp: Fingerprint) -> Option<FunctionDecl> {
        let found = self.load_checked(function, fp).ok().flatten();
        let counter = if found.is_some() {
            &self.counters.hits
        } else {
            &self.counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Store `decl` for `function` under fingerprint `fp`, removing any
    /// stale entries for the same function first. Entries are written
    /// in the versioned, checksummed v2 format.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, function: &str, fp: Fingerprint, decl: &FunctionDecl) -> io::Result<()> {
        let stale_prefix = format!("{function}.");
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.strip_prefix(&stale_prefix).is_some_and(|rest| {
                rest.strip_suffix(".xml")
                    .is_some_and(|fp_text| fp_text.len() == 16)
            }) {
                fs::remove_file(entry.path())?;
            }
        }
        // Write-then-rename so concurrent readers never observe a
        // truncated entry; the checksum catches any torn copy made
        // outside this code path.
        let payload = decls_to_xml(std::slice::from_ref(decl));
        let entry = format!(
            "{HEADER_MAGIC}v{CACHE_FORMAT_VERSION} sum:{} -->\n{payload}",
            fingerprint(&[&payload])
        );
        let tmp = self.dir.join(format!("{function}.{fp}.xml.tmp"));
        fs::write(&tmp, entry)?;
        fs::rename(&tmp, self.entry_path(function, fp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use healers_libc::Libc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("healers-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_store_hit_roundtrip() {
        let dir = tmpdir("roundtrip");
        let cache = DeclCache::open(&dir).unwrap();
        let libc = Libc::standard();
        let decl = healers_core::analyze(&libc, &["abs"]).remove(0);
        let fp = fingerprint(&["abs-signature"]);

        assert!(cache.lookup("abs", fp).is_none());
        cache.store("abs", fp, &decl).unwrap();
        let back = cache.lookup("abs", fp).unwrap();
        assert_eq!(
            decls_to_xml(std::slice::from_ref(&back)),
            decls_to_xml(std::slice::from_ref(&decl)),
            "cache round-trip must be byte-identical"
        );
        assert_eq!(cache.counters().hits(), 1);
        assert_eq!(cache.counters().misses(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_fingerprint_misses_and_store_evicts() {
        let dir = tmpdir("stale");
        let cache = DeclCache::open(&dir).unwrap();
        let libc = Libc::standard();
        let decl = healers_core::analyze(&libc, &["abs"]).remove(0);
        let old = fingerprint(&["old"]);
        let new = fingerprint(&["new"]);

        cache.store("abs", old, &decl).unwrap();
        assert!(
            cache.lookup("abs", new).is_none(),
            "stale entry must not hit"
        );
        cache.store("abs", new, &decl).unwrap();
        assert!(cache.lookup("abs", new).is_some());
        assert!(
            cache.lookup("abs", old).is_none(),
            "storing under a new fingerprint evicts the old entry"
        );
        let entries = fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 1, "exactly one entry per function");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmpdir("corrupt");
        let cache = DeclCache::open(&dir).unwrap();
        let fp = fingerprint(&["x"]);
        fs::write(dir.join(format!("abs.{fp}.xml")), "<functions>garbage").unwrap();
        assert!(cache.lookup("abs", fp).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Write a valid entry, then mangle it and assert `load_checked`
    /// classifies the damage (and `lookup` degrades it to a miss).
    #[test]
    fn mangled_entries_are_classified_not_panicked_on() {
        let dir = tmpdir("mangled");
        let cache = DeclCache::open(&dir).unwrap();
        let libc = Libc::standard();
        let decl = healers_core::analyze(&libc, &["abs"]).remove(0);
        let fp = fingerprint(&["abs-signature"]);
        cache.store("abs", fp, &decl).unwrap();
        let path = dir.join(format!("abs.{fp}.xml"));
        let pristine = fs::read_to_string(&path).unwrap();
        assert!(pristine.starts_with(HEADER_MAGIC), "v2 header present");
        assert!(cache.load_checked("abs", fp).unwrap().is_some());

        let cases: &[(&str, String, CacheErrorKind)] = &[
            ("empty file", String::new(), CacheErrorKind::BadMagic),
            (
                "pre-header legacy entry",
                decls_to_xml(std::slice::from_ref(&decl)),
                CacheErrorKind::BadMagic,
            ),
            (
                "future format version",
                pristine.replacen("v2", "v9", 1),
                CacheErrorKind::UnsupportedVersion("v9".to_string()),
            ),
            (
                "truncated payload",
                pristine[..pristine.len() - 10].to_string(),
                CacheErrorKind::ChecksumMismatch,
            ),
            (
                "flipped payload byte",
                pristine.replacen("abs", "abz", 1),
                CacheErrorKind::ChecksumMismatch,
            ),
            (
                "header without checksum",
                pristine.replacen(" sum:", " mus:", 1),
                CacheErrorKind::BadHeader,
            ),
        ];
        for (what, bytes, want) in cases {
            fs::write(&path, bytes).unwrap();
            let err = cache.load_checked("abs", fp).unwrap_err();
            assert_eq!(&err.kind, want, "{what}: {err}");
            assert_eq!(err.path, path, "{what} names the file");
            assert!(
                cache.lookup("abs", fp).is_none(),
                "{what} is a lenient miss"
            );
        }

        // A checksum-valid entry whose payload names another function.
        let wrong_payload = pristine
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
            .replace("abs", "labs")
            + "\n";
        let forged = format!(
            "{HEADER_MAGIC}v{CACHE_FORMAT_VERSION} sum:{} -->\n{wrong_payload}",
            fingerprint(&[&wrong_payload])
        );
        fs::write(&path, forged).unwrap();
        let err = cache.load_checked("abs", fp).unwrap_err();
        assert!(
            matches!(
                err.kind,
                CacheErrorKind::WrongFunction | CacheErrorKind::Malformed(_)
            ),
            "forged function name: {err}"
        );

        // Restoring the pristine bytes restores the entry.
        fs::write(&path, &pristine).unwrap();
        assert!(cache.load_checked("abs", fp).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_entry_is_ok_none_not_an_error() {
        let dir = tmpdir("absent");
        let cache = DeclCache::open(&dir).unwrap();
        assert!(cache
            .load_checked("abs", fingerprint(&["x"]))
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
