//! The persistent, content-addressed declaration cache.
//!
//! Layout: one file per function under the cache directory,
//! `<function>.<fingerprint>.xml`, holding that function's Figure-2
//! declaration serialized with [`healers_core::xml`]. The fingerprint
//! (see [`mod@crate::fingerprint`]) covers everything the declaration
//! depends on, so a lookup is a pure existence check: if the file named
//! by the current fingerprint exists and round-trips, the whole
//! injection campaign for that function is skipped. Storing a fresh
//! entry removes any stale files for the same function.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use healers_core::{decls_from_xml, decls_to_xml, FunctionDecl};

use crate::fingerprint::Fingerprint;

/// Hit/miss counters (atomic: the cache is shared across workers).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounters {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A declaration cache rooted at one directory.
#[derive(Debug)]
pub struct DeclCache {
    dir: PathBuf,
    counters: CacheCounters,
}

impl DeclCache {
    /// Open (creating if needed) a cache under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DeclCache {
            dir,
            counters: CacheCounters::default(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    fn entry_path(&self, function: &str, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{function}.{fp}.xml"))
    }

    /// Look up the declaration for `function` under fingerprint `fp`.
    ///
    /// Counts a hit only for a well-formed entry that actually contains
    /// `function`; corrupt or mismatched files count as misses (and are
    /// overwritten by the next [`DeclCache::store`]).
    pub fn lookup(&self, function: &str, fp: Fingerprint) -> Option<FunctionDecl> {
        let found = fs::read_to_string(self.entry_path(function, fp))
            .ok()
            .and_then(|xml| decls_from_xml(&xml).ok())
            .and_then(|mut decls| {
                (decls.len() == 1 && decls[0].name == function).then(|| decls.remove(0))
            });
        let counter = if found.is_some() {
            &self.counters.hits
        } else {
            &self.counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Store `decl` for `function` under fingerprint `fp`, removing any
    /// stale entries for the same function first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, function: &str, fp: Fingerprint, decl: &FunctionDecl) -> io::Result<()> {
        let stale_prefix = format!("{function}.");
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.strip_prefix(&stale_prefix).is_some_and(|rest| {
                rest.strip_suffix(".xml")
                    .is_some_and(|fp_text| fp_text.len() == 16)
            }) {
                fs::remove_file(entry.path())?;
            }
        }
        // Write-then-rename so concurrent readers never observe a
        // truncated entry.
        let tmp = self.dir.join(format!("{function}.{fp}.xml.tmp"));
        fs::write(&tmp, decls_to_xml(std::slice::from_ref(decl)))?;
        fs::rename(&tmp, self.entry_path(function, fp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use healers_libc::Libc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("healers-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_store_hit_roundtrip() {
        let dir = tmpdir("roundtrip");
        let cache = DeclCache::open(&dir).unwrap();
        let libc = Libc::standard();
        let decl = healers_core::analyze(&libc, &["abs"]).remove(0);
        let fp = fingerprint(&["abs-signature"]);

        assert!(cache.lookup("abs", fp).is_none());
        cache.store("abs", fp, &decl).unwrap();
        let back = cache.lookup("abs", fp).unwrap();
        assert_eq!(
            decls_to_xml(std::slice::from_ref(&back)),
            decls_to_xml(std::slice::from_ref(&decl)),
            "cache round-trip must be byte-identical"
        );
        assert_eq!(cache.counters().hits(), 1);
        assert_eq!(cache.counters().misses(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_fingerprint_misses_and_store_evicts() {
        let dir = tmpdir("stale");
        let cache = DeclCache::open(&dir).unwrap();
        let libc = Libc::standard();
        let decl = healers_core::analyze(&libc, &["abs"]).remove(0);
        let old = fingerprint(&["old"]);
        let new = fingerprint(&["new"]);

        cache.store("abs", old, &decl).unwrap();
        assert!(
            cache.lookup("abs", new).is_none(),
            "stale entry must not hit"
        );
        cache.store("abs", new, &decl).unwrap();
        assert!(cache.lookup("abs", new).is_some());
        assert!(
            cache.lookup("abs", old).is_none(),
            "storing under a new fingerprint evicts the old entry"
        );
        let entries = fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 1, "exactly one entry per function");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmpdir("corrupt");
        let cache = DeclCache::open(&dir).unwrap();
        let fp = fingerprint(&["x"]);
        fs::write(dir.join(format!("abs.{fp}.xml")), "<functions>garbage").unwrap();
        assert!(cache.lookup("abs", fp).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
