//! Property tests for the simulated process substrate: allocator
//! invariants, memory semantics, and fault precision.

use proptest::prelude::*;

use healers_simproc::{AddressSpace, Heap, HeapMode, Protection, SimProcess, PAGE_SIZE};

/// Byte-at-a-time reference for [`AddressSpace::probe_range`]: the loop
/// the bulk kernel replaced.
fn probe_range_ref(mem: &AddressSpace, addr: u32, len: u32, read: bool, write: bool) -> bool {
    for i in 0..len {
        let Some(a) = addr.checked_add(i) else {
            return false;
        };
        if (read && !mem.probe_read(a)) || (write && !mem.probe_write(a)) {
            return false;
        }
    }
    true
}

/// Byte-at-a-time reference for [`AddressSpace::find_nul`]: probe each
/// byte for accessibility before reading it, stop at the first NUL,
/// give up past `max_index`.
fn find_nul_ref(mem: &AddressSpace, addr: u32, max_index: u32, write: bool) -> Option<u32> {
    let mut i: u32 = 0;
    loop {
        let a = addr.checked_add(i)?;
        if !mem.probe_read(a) || (write && !mem.probe_write(a)) {
            return None;
        }
        if mem.read_u8(a).ok()? == 0 {
            return Some(i);
        }
        if i == max_index {
            return None;
        }
        i += 1;
    }
}

/// A random run of pages: each either unmapped (a guard hole) or mapped
/// with a random protection, filled with bytes drawn from a NUL-heavy
/// alphabet so string scans terminate inside pages often enough.
fn layout_strategy() -> impl Strategy<Value = (AddressSpace, u32, u32)> {
    // Repetition stands in for weights (the vendored prop_oneof! is
    // uniform): guard holes and RW pages dominate, but every protection
    // appears.
    let page = prop_oneof![
        Just(None),
        Just(None),
        Just(Some(Protection::ReadWrite)),
        Just(Some(Protection::ReadWrite)),
        Just(Some(Protection::ReadWrite)),
        Just(Some(Protection::ReadOnly)),
        Just(Some(Protection::ReadOnly)),
        Just(Some(Protection::WriteOnly)),
        Just(Some(Protection::None)),
    ];
    let byte = prop_oneof![any::<u8>(), any::<u8>(), any::<u8>(), Just(0u8)];
    (
        prop::collection::vec(page, 1..8),
        prop::collection::vec(byte, 64),
        1u32..200,
    )
        .prop_map(|(pages, pattern, base_page)| {
            let mut mem = AddressSpace::new();
            let base = base_page * PAGE_SIZE;
            let span = pages.len() as u32 * PAGE_SIZE;
            for (i, prot) in pages.iter().enumerate() {
                if let Some(p) = prot {
                    let start = base + i as u32 * PAGE_SIZE;
                    mem.map(start, PAGE_SIZE, Protection::ReadWrite);
                    for off in 0..PAGE_SIZE {
                        mem.write_u8(start + off, pattern[(off % 64) as usize])
                            .unwrap();
                    }
                    mem.protect(start, PAGE_SIZE, *p);
                }
            }
            (mem, base, span)
        })
}

proptest! {
    /// The bulk page-run probe agrees with probing every byte, across
    /// guard holes, protection boundaries, and range edges.
    #[test]
    fn probe_range_matches_the_byte_loop(
        layout in layout_strategy(),
        start_off in 0u32..40_000,
        len in 0u32..40_000,
        read in any::<bool>(),
        write in any::<bool>(),
    ) {
        let (mem, base, span) = layout;
        // Bias the window to straddle the layout (including its edges).
        let addr = (base - PAGE_SIZE.min(base)) + start_off % (span + 2 * PAGE_SIZE);
        let expect = probe_range_ref(&mem, addr, len, read, write);
        prop_assert_eq!(
            mem.probe_range(addr, len, read, write),
            expect,
            "probe_range({:#x}, {}, {}, {}) disagrees with byte loop",
            addr, len, read, write
        );
    }

    /// The word-wise NUL scan finds exactly the byte the reference loop
    /// finds — same index, same accessibility failures, same budget.
    #[test]
    fn find_nul_matches_the_byte_loop(
        layout in layout_strategy(),
        start_off in 0u32..40_000,
        max_index in 0u32..20_000,
        write in any::<bool>(),
    ) {
        let (mem, base, span) = layout;
        let addr = (base - PAGE_SIZE.min(base)) + start_off % (span + 2 * PAGE_SIZE);
        let expect = find_nul_ref(&mem, addr, max_index, write);
        prop_assert_eq!(
            mem.find_nul(addr, max_index, write),
            expect,
            "find_nul({:#x}, {}, {}) disagrees with byte loop",
            addr, max_index, write
        );
    }

    /// Kernels behave at the very top of the address space exactly like
    /// the byte loops (the wrap-around edge).
    #[test]
    fn kernels_match_at_the_address_space_top(
        map_top in any::<bool>(),
        has_nul in any::<bool>(),
        nul_back in 0u32..64,
        back_off in 1u32..100,
        len in 0u32..200,
    ) {
        let nul_off = has_nul.then_some(nul_back);
        let mut mem = AddressSpace::new();
        let top = u32::MAX - (PAGE_SIZE - 1);
        if map_top {
            mem.map(top, PAGE_SIZE, Protection::ReadWrite);
            for off in 0..PAGE_SIZE {
                mem.write_u8(top + off, 0x41).unwrap();
            }
            if let Some(o) = nul_off {
                mem.write_u8(u32::MAX - o, 0).unwrap();
            }
        }
        let addr = u32::MAX - back_off;
        prop_assert_eq!(
            mem.probe_range(addr, len, true, false),
            probe_range_ref(&mem, addr, len, true, false)
        );
        prop_assert_eq!(
            mem.find_nul(addr, u32::MAX, false),
            find_nul_ref(&mem, addr, u32::MAX, false)
        );
        prop_assert_eq!(
            mem.find_nul(addr, back_off, false),
            find_nul_ref(&mem, addr, back_off, false)
        );
    }

    /// Live heap blocks never overlap, in either placement mode.
    #[test]
    fn live_blocks_never_overlap(
        sizes in prop::collection::vec(0u32..6000, 1..24),
        guarded in any::<bool>(),
    ) {
        let mut mem = AddressSpace::new();
        let mode = if guarded { HeapMode::Guarded } else { HeapMode::Packed };
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, mode);
        let mut blocks: Vec<(u32, u32)> = Vec::new();
        for size in sizes {
            let base = heap.malloc(&mut mem, size).unwrap();
            for &(b, s) in &blocks {
                let a_end = u64::from(base) + u64::from(size.max(1));
                let b_end = u64::from(b) + u64::from(s.max(1));
                prop_assert!(
                    a_end <= u64::from(b) || b_end <= u64::from(base),
                    "blocks ({base:#x},{size}) and ({b:#x},{s}) overlap"
                );
            }
            blocks.push((base, size));
        }
    }

    /// In guarded mode every block's last byte is accessible and the
    /// byte after it faults at exactly that address.
    #[test]
    fn guarded_blocks_fault_precisely(size in 1u32..9000) {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, HeapMode::Guarded);
        let base = heap.malloc(&mut mem, size).unwrap();
        prop_assert!(mem.write_u8(base + size - 1, 0xAB).is_ok());
        let fault = mem.read_u8(base + size).unwrap_err();
        prop_assert_eq!(fault.segv_addr(), Some(base + size));
    }

    /// Whatever bytes are written are read back, and byte-granular
    /// faults never corrupt neighboring data.
    #[test]
    fn write_read_roundtrip(
        offset in 0u32..(PAGE_SIZE * 2 - 64),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut mem = AddressSpace::new();
        mem.map(0x8000, PAGE_SIZE * 2, Protection::ReadWrite);
        mem.write_bytes(0x8000 + offset, &data).unwrap();
        prop_assert_eq!(mem.read_bytes(0x8000 + offset, data.len() as u32).unwrap(), data);
    }

    /// free() then re-malloc never hands out a region overlapping a
    /// still-live block, and double frees are always caught.
    #[test]
    fn free_is_caught_exactly_once(sizes in prop::collection::vec(1u32..512, 2..12)) {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, HeapMode::Packed);
        let blocks: Vec<u32> = sizes.iter().map(|s| heap.malloc(&mut mem, *s).unwrap()).collect();
        for &b in &blocks {
            prop_assert!(heap.free(&mut mem, b).is_ok());
            prop_assert!(heap.free(&mut mem, b).is_err());
        }
    }

    /// The fuel budget makes every loop terminate: a cstr read over
    /// non-NUL memory exhausts its fuel before escaping the region.
    #[test]
    fn fuel_bounds_unterminated_scans(budget in 1u64..4000) {
        let mut proc = SimProcess::new();
        proc.set_fuel_budget(budget);
        // A large non-NUL region in the statics.
        let addr = proc.static_alloc(4096);
        for i in 0..4096 {
            proc.mem.write_u8(addr + i, 0x41).unwrap();
        }
        let r = proc.read_cstr(addr);
        prop_assert!(r.is_err());
    }

    /// Cloned processes are fully independent (fault containment).
    #[test]
    fn clone_isolation(writes in prop::collection::vec((0u32..4096, any::<u8>()), 1..32)) {
        let mut parent = SimProcess::new();
        let base = parent.heap_alloc(4096).unwrap();
        let mut child = parent.clone();
        for (off, byte) in &writes {
            child.mem.write_u8(base + off, *byte).unwrap();
        }
        for (off, _) in &writes {
            prop_assert_eq!(parent.mem.read_u8(base + off).unwrap(), 0);
        }
    }
}
