//! Property tests for the simulated process substrate: allocator
//! invariants, memory semantics, and fault precision.

use proptest::prelude::*;

use healers_simproc::{AddressSpace, Heap, HeapMode, Protection, SimProcess, PAGE_SIZE};

proptest! {
    /// Live heap blocks never overlap, in either placement mode.
    #[test]
    fn live_blocks_never_overlap(
        sizes in prop::collection::vec(0u32..6000, 1..24),
        guarded in any::<bool>(),
    ) {
        let mut mem = AddressSpace::new();
        let mode = if guarded { HeapMode::Guarded } else { HeapMode::Packed };
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, mode);
        let mut blocks: Vec<(u32, u32)> = Vec::new();
        for size in sizes {
            let base = heap.malloc(&mut mem, size).unwrap();
            for &(b, s) in &blocks {
                let a_end = u64::from(base) + u64::from(size.max(1));
                let b_end = u64::from(b) + u64::from(s.max(1));
                prop_assert!(
                    a_end <= u64::from(b) || b_end <= u64::from(base),
                    "blocks ({base:#x},{size}) and ({b:#x},{s}) overlap"
                );
            }
            blocks.push((base, size));
        }
    }

    /// In guarded mode every block's last byte is accessible and the
    /// byte after it faults at exactly that address.
    #[test]
    fn guarded_blocks_fault_precisely(size in 1u32..9000) {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, HeapMode::Guarded);
        let base = heap.malloc(&mut mem, size).unwrap();
        prop_assert!(mem.write_u8(base + size - 1, 0xAB).is_ok());
        let fault = mem.read_u8(base + size).unwrap_err();
        prop_assert_eq!(fault.segv_addr(), Some(base + size));
    }

    /// Whatever bytes are written are read back, and byte-granular
    /// faults never corrupt neighboring data.
    #[test]
    fn write_read_roundtrip(
        offset in 0u32..(PAGE_SIZE * 2 - 64),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut mem = AddressSpace::new();
        mem.map(0x8000, PAGE_SIZE * 2, Protection::ReadWrite);
        mem.write_bytes(0x8000 + offset, &data).unwrap();
        prop_assert_eq!(mem.read_bytes(0x8000 + offset, data.len() as u32).unwrap(), data);
    }

    /// free() then re-malloc never hands out a region overlapping a
    /// still-live block, and double frees are always caught.
    #[test]
    fn free_is_caught_exactly_once(sizes in prop::collection::vec(1u32..512, 2..12)) {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, HeapMode::Packed);
        let blocks: Vec<u32> = sizes.iter().map(|s| heap.malloc(&mut mem, *s).unwrap()).collect();
        for &b in &blocks {
            prop_assert!(heap.free(&mut mem, b).is_ok());
            prop_assert!(heap.free(&mut mem, b).is_err());
        }
    }

    /// The fuel budget makes every loop terminate: a cstr read over
    /// non-NUL memory exhausts its fuel before escaping the region.
    #[test]
    fn fuel_bounds_unterminated_scans(budget in 1u64..4000) {
        let mut proc = SimProcess::new();
        proc.set_fuel_budget(budget);
        // A large non-NUL region in the statics.
        let addr = proc.static_alloc(4096);
        for i in 0..4096 {
            proc.mem.write_u8(addr + i, 0x41).unwrap();
        }
        let r = proc.read_cstr(addr);
        prop_assert!(r.is_err());
    }

    /// Cloned processes are fully independent (fault containment).
    #[test]
    fn clone_isolation(writes in prop::collection::vec((0u32..4096, any::<u8>()), 1..32)) {
        let mut parent = SimProcess::new();
        let base = parent.heap_alloc(4096).unwrap();
        let mut child = parent.clone();
        for (off, byte) in &writes {
            child.mem.write_u8(base + off, *byte).unwrap();
        }
        for (off, _) in &writes {
            prop_assert_eq!(parent.mem.read_u8(base + off).unwrap(), 0);
        }
    }
}
