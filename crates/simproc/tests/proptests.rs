//! Property tests for the simulated process substrate: allocator
//! invariants, memory semantics, and fault precision.

use proptest::prelude::*;

use healers_simproc::{AddressSpace, Heap, HeapMode, Protection, SimProcess, PAGE_SIZE};

/// Byte-at-a-time reference for [`AddressSpace::probe_range`]: the loop
/// the bulk kernel replaced. Per the pinned contract, a probe that
/// requests no access at all asserts nothing — the loop below would
/// visit each byte without checking anything, so it is skipped outright
/// (this also sidesteps the address computation for ranges past the
/// top of the address space, which no byte would ever need).
fn probe_range_ref(mem: &AddressSpace, addr: u32, len: u32, read: bool, write: bool) -> bool {
    if !read && !write {
        return true;
    }
    for i in 0..len {
        let Some(a) = addr.checked_add(i) else {
            return false;
        };
        if (read && !mem.probe_read(a)) || (write && !mem.probe_write(a)) {
            return false;
        }
    }
    true
}

/// Byte-at-a-time reference for [`AddressSpace::find_nul`]: probe each
/// byte for accessibility before reading it, stop at the first NUL,
/// give up past `max_index`.
fn find_nul_ref(mem: &AddressSpace, addr: u32, max_index: u32, write: bool) -> Option<u32> {
    let mut i: u32 = 0;
    loop {
        let a = addr.checked_add(i)?;
        if !mem.probe_read(a) || (write && !mem.probe_write(a)) {
            return None;
        }
        if mem.read_u8(a).ok()? == 0 {
            return Some(i);
        }
        if i == max_index {
            return None;
        }
        i += 1;
    }
}

/// A random run of pages: each either unmapped (a guard hole) or mapped
/// with a random protection, filled with bytes drawn from a NUL-heavy
/// alphabet so string scans terminate inside pages often enough.
fn layout_strategy() -> impl Strategy<Value = (AddressSpace, u32, u32)> {
    // Repetition stands in for weights (the vendored prop_oneof! is
    // uniform): guard holes and RW pages dominate, but every protection
    // appears.
    let page = prop_oneof![
        Just(None),
        Just(None),
        Just(Some(Protection::ReadWrite)),
        Just(Some(Protection::ReadWrite)),
        Just(Some(Protection::ReadWrite)),
        Just(Some(Protection::ReadOnly)),
        Just(Some(Protection::ReadOnly)),
        Just(Some(Protection::WriteOnly)),
        Just(Some(Protection::None)),
    ];
    let byte = prop_oneof![any::<u8>(), any::<u8>(), any::<u8>(), Just(0u8)];
    (
        prop::collection::vec(page, 1..8),
        prop::collection::vec(byte, 64),
        1u32..200,
    )
        .prop_map(|(pages, pattern, base_page)| {
            let mut mem = AddressSpace::new();
            let base = base_page * PAGE_SIZE;
            let span = pages.len() as u32 * PAGE_SIZE;
            for (i, prot) in pages.iter().enumerate() {
                if let Some(p) = prot {
                    let start = base + i as u32 * PAGE_SIZE;
                    mem.map(start, PAGE_SIZE, Protection::ReadWrite);
                    for off in 0..PAGE_SIZE {
                        mem.write_u8(start + off, pattern[(off % 64) as usize])
                            .unwrap();
                    }
                    mem.protect(start, PAGE_SIZE, *p);
                }
            }
            (mem, base, span)
        })
}

proptest! {
    /// The bulk page-run probe agrees with probing every byte, across
    /// guard holes, protection boundaries, and range edges.
    #[test]
    fn probe_range_matches_the_byte_loop(
        layout in layout_strategy(),
        start_off in 0u32..40_000,
        len in 0u32..40_000,
        read in any::<bool>(),
        write in any::<bool>(),
    ) {
        let (mem, base, span) = layout;
        // Bias the window to straddle the layout (including its edges).
        let addr = (base - PAGE_SIZE.min(base)) + start_off % (span + 2 * PAGE_SIZE);
        let expect = probe_range_ref(&mem, addr, len, read, write);
        prop_assert_eq!(
            mem.probe_range(addr, len, read, write),
            expect,
            "probe_range({:#x}, {}, {}, {}) disagrees with byte loop",
            addr, len, read, write
        );
    }

    /// The word-wise NUL scan finds exactly the byte the reference loop
    /// finds — same index, same accessibility failures, same budget.
    #[test]
    fn find_nul_matches_the_byte_loop(
        layout in layout_strategy(),
        start_off in 0u32..40_000,
        max_index in 0u32..20_000,
        write in any::<bool>(),
    ) {
        let (mem, base, span) = layout;
        let addr = (base - PAGE_SIZE.min(base)) + start_off % (span + 2 * PAGE_SIZE);
        let expect = find_nul_ref(&mem, addr, max_index, write);
        prop_assert_eq!(
            mem.find_nul(addr, max_index, write),
            expect,
            "find_nul({:#x}, {}, {}) disagrees with byte loop",
            addr, max_index, write
        );
    }

    /// Kernels behave at the very top of the address space exactly like
    /// the byte loops (the wrap-around edge).
    #[test]
    fn kernels_match_at_the_address_space_top(
        map_top in any::<bool>(),
        has_nul in any::<bool>(),
        nul_back in 0u32..64,
        back_off in 1u32..100,
        len in 0u32..200,
    ) {
        let nul_off = has_nul.then_some(nul_back);
        let mut mem = AddressSpace::new();
        let top = u32::MAX - (PAGE_SIZE - 1);
        if map_top {
            mem.map(top, PAGE_SIZE, Protection::ReadWrite);
            for off in 0..PAGE_SIZE {
                mem.write_u8(top + off, 0x41).unwrap();
            }
            if let Some(o) = nul_off {
                mem.write_u8(u32::MAX - o, 0).unwrap();
            }
        }
        let addr = u32::MAX - back_off;
        prop_assert_eq!(
            mem.probe_range(addr, len, true, false),
            probe_range_ref(&mem, addr, len, true, false)
        );
        prop_assert_eq!(
            mem.find_nul(addr, u32::MAX, false),
            find_nul_ref(&mem, addr, u32::MAX, false)
        );
        prop_assert_eq!(
            mem.find_nul(addr, back_off, false),
            find_nul_ref(&mem, addr, back_off, false)
        );
    }

    /// The 32-byte-chunk NUL scan with its chunk machinery deliberately
    /// stressed: starts at every misalignment within a chunk, the NUL
    /// placed anywhere from the first wide chunk through the 8-byte
    /// word tail into the byte tail, and budgets landing on every
    /// offset within a chunk. The byte loop is the oracle throughout.
    #[test]
    fn wide_nul_scan_matches_at_every_chunk_offset(
        misalign in 0u32..32,
        has_nul in any::<bool>(),
        nul_pos in 0u32..96,
        budget_in_chunk in 0u32..64,
        budget_chunks in 0u32..3,
        write in any::<bool>(),
    ) {
        let mut mem = AddressSpace::new();
        let base = 0x20_000;
        mem.map(base, 2 * PAGE_SIZE, Protection::ReadWrite);
        for off in 0..(2 * PAGE_SIZE) {
            mem.write_u8(base + off, 0x41).unwrap();
        }
        let start = base + misalign;
        let nul_at = has_nul.then_some(nul_pos);
        if let Some(n) = nul_at {
            mem.write_u8(start + n, 0).unwrap();
        }
        let budget = budget_chunks * 32 + budget_in_chunk;
        prop_assert_eq!(
            mem.find_nul(start, budget, write),
            find_nul_ref(&mem, start, budget, write),
            "find_nul(+{}, {}, {}) with NUL at {:?} disagrees with byte loop",
            misalign, budget, write, nul_at
        );
    }

    /// The pinned zero-length / no-access `probe_range` contract:
    /// vacuously true at any address — mapped, unmapped, guard page,
    /// or the very top of the address space — because a probe that
    /// examines no byte asserts nothing.
    #[test]
    fn zero_length_probes_hold_anywhere(
        layout in layout_strategy(),
        start_off in 0u32..40_000,
        read in any::<bool>(),
        write in any::<bool>(),
        len in 0u32..40_000,
    ) {
        let (mem, base, span) = layout;
        let addr = (base - PAGE_SIZE.min(base)) + start_off % (span + 2 * PAGE_SIZE);
        prop_assert!(mem.probe_range(addr, 0, read, write));
        prop_assert!(mem.probe_range(u32::MAX, 0, read, write));
        // No access requested: true for any length, even one whose
        // range would run past the top of the address space.
        prop_assert!(mem.probe_range(addr, len, false, false));
        prop_assert!(mem.probe_range(u32::MAX, len, false, false));
        prop_assert_eq!(
            mem.probe_range(addr, len, false, false),
            probe_range_ref(&mem, addr, len, false, false)
        );
    }

    /// Live heap blocks never overlap, in either placement mode.
    #[test]
    fn live_blocks_never_overlap(
        sizes in prop::collection::vec(0u32..6000, 1..24),
        guarded in any::<bool>(),
    ) {
        let mut mem = AddressSpace::new();
        let mode = if guarded { HeapMode::Guarded } else { HeapMode::Packed };
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, mode);
        let mut blocks: Vec<(u32, u32)> = Vec::new();
        for size in sizes {
            let base = heap.malloc(&mut mem, size).unwrap();
            for &(b, s) in &blocks {
                let a_end = u64::from(base) + u64::from(size.max(1));
                let b_end = u64::from(b) + u64::from(s.max(1));
                prop_assert!(
                    a_end <= u64::from(b) || b_end <= u64::from(base),
                    "blocks ({base:#x},{size}) and ({b:#x},{s}) overlap"
                );
            }
            blocks.push((base, size));
        }
    }

    /// In guarded mode every block's last byte is accessible and the
    /// byte after it faults at exactly that address.
    #[test]
    fn guarded_blocks_fault_precisely(size in 1u32..9000) {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, HeapMode::Guarded);
        let base = heap.malloc(&mut mem, size).unwrap();
        prop_assert!(mem.write_u8(base + size - 1, 0xAB).is_ok());
        let fault = mem.read_u8(base + size).unwrap_err();
        prop_assert_eq!(fault.segv_addr(), Some(base + size));
    }

    /// Whatever bytes are written are read back, and byte-granular
    /// faults never corrupt neighboring data.
    #[test]
    fn write_read_roundtrip(
        offset in 0u32..(PAGE_SIZE * 2 - 64),
        data in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut mem = AddressSpace::new();
        mem.map(0x8000, PAGE_SIZE * 2, Protection::ReadWrite);
        mem.write_bytes(0x8000 + offset, &data).unwrap();
        prop_assert_eq!(mem.read_bytes(0x8000 + offset, data.len() as u32).unwrap(), data);
    }

    /// free() then re-malloc never hands out a region overlapping a
    /// still-live block, and double frees are always caught.
    #[test]
    fn free_is_caught_exactly_once(sizes in prop::collection::vec(1u32..512, 2..12)) {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x4000_0000, HeapMode::Packed);
        let blocks: Vec<u32> = sizes.iter().map(|s| heap.malloc(&mut mem, *s).unwrap()).collect();
        for &b in &blocks {
            prop_assert!(heap.free(&mut mem, b).is_ok());
            prop_assert!(heap.free(&mut mem, b).is_err());
        }
    }

    /// The fuel budget makes every loop terminate: a cstr read over
    /// non-NUL memory exhausts its fuel before escaping the region.
    #[test]
    fn fuel_bounds_unterminated_scans(budget in 1u64..4000) {
        let mut proc = SimProcess::new();
        proc.set_fuel_budget(budget);
        // A large non-NUL region in the statics.
        let addr = proc.static_alloc(4096);
        for i in 0..4096 {
            proc.mem.write_u8(addr + i, 0x41).unwrap();
        }
        let r = proc.read_cstr(addr);
        prop_assert!(r.is_err());
    }

    /// Cloned processes are fully independent (fault containment).
    #[test]
    fn clone_isolation(writes in prop::collection::vec((0u32..4096, any::<u8>()), 1..32)) {
        let mut parent = SimProcess::new();
        let base = parent.heap_alloc(4096).unwrap();
        let mut child = parent.clone();
        for (off, byte) in &writes {
            child.mem.write_u8(base + off, *byte).unwrap();
        }
        for (off, _) in &writes {
            prop_assert_eq!(parent.mem.read_u8(base + off).unwrap(), 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential containment: the copy-on-write snapshot must be
// observationally *equal* to the deep-clone reference it replaced. Both
// mechanisms run the same random op sequence — mapping, protection
// changes, heap traffic, reads, writes, faults, nested re-snapshots —
// and must produce the same per-op results (including exact fault
// addresses), a bit-identical final child image, and an untouched
// parent.

/// A window of pages private to the differential test, below the
/// statics and well away from heap/stack, with a guard page either side.
const DIFF_BASE: u32 = 0x0009_0000;
const DIFF_PAGES: u32 = 6;

/// Build the seeded parent both mechanisms start from: one mapped
/// pattern page in the window plus one live heap block.
fn diff_parent() -> (healers_simproc::SimProcess, Vec<u32>) {
    use healers_simproc::SimProcess;
    let mut parent = SimProcess::new();
    parent.mem.map(DIFF_BASE, PAGE_SIZE, Protection::ReadWrite);
    for off in 0..PAGE_SIZE {
        parent
            .mem
            .write_u8(DIFF_BASE + off, (off % 251) as u8)
            .unwrap();
    }
    let seed_block = parent.heap_alloc(512).unwrap();
    parent.mem.write_bytes(seed_block, &[0xAA; 64]).unwrap();
    (parent, vec![seed_block])
}

/// Interpret one raw op triple against the child image, appending the
/// op's full observable outcome (values, heap errors, faults with their
/// exact addresses) to the observation log.
fn diff_apply(
    child: &mut healers_simproc::SimProcess,
    deep: bool,
    blocks: &mut Vec<u32>,
    op: (u8, u32, u32),
    obs: &mut String,
) {
    use healers_simproc::WorldSnapshot;
    use std::fmt::Write as _;
    let (sel, a, b) = op;
    // Addresses biased to straddle the window's guard pages.
    let addr = (DIFF_BASE - PAGE_SIZE) + a % ((DIFF_PAGES + 2) * PAGE_SIZE);
    match sel % 8 {
        0 => {
            let page = DIFF_BASE + (a % DIFF_PAGES) * PAGE_SIZE;
            child.mem.map(page, PAGE_SIZE, Protection::ReadWrite);
            let _ = writeln!(obs, "map {page:#x}");
        }
        1 => {
            let page = DIFF_BASE + (a % DIFF_PAGES) * PAGE_SIZE;
            let prot = match b % 4 {
                0 => Protection::ReadWrite,
                1 => Protection::ReadOnly,
                2 => Protection::WriteOnly,
                _ => Protection::None,
            };
            child.mem.protect(page, PAGE_SIZE, prot);
            let _ = writeln!(obs, "protect {page:#x} {prot:?}");
        }
        2 => {
            let r = child.heap_alloc(b % 6000);
            if let Ok(base) = r {
                blocks.push(base);
            }
            let _ = writeln!(obs, "alloc -> {r:?}");
        }
        3 => {
            // Free a tracked block (possibly already freed) or a wild
            // address — both error paths must agree too.
            let target = if blocks.is_empty() || b % 4 == 0 {
                addr
            } else {
                blocks[a as usize % blocks.len()]
            };
            let r = child.heap_free(target);
            let _ = writeln!(obs, "free {target:#x} -> {r:?}");
        }
        4 => {
            let r = child.mem.write_u8(addr, b as u8);
            let _ = writeln!(obs, "write {addr:#x} -> {r:?}");
        }
        5 => {
            let r = child.mem.read_u8(addr);
            let _ = writeln!(obs, "read {addr:#x} -> {r:?}");
        }
        6 => {
            // A multi-byte write spanning a page edge: partial-progress
            // semantics must match exactly.
            let data: Vec<u8> = (0..(b % 96) as u8).collect();
            let r = child.mem.write_bytes(addr, &data);
            let _ = writeln!(obs, "write_bytes {addr:#x}+{} -> {r:?}", data.len());
        }
        _ => {
            // Re-snapshot mid-sequence: CoW chains snapshots of
            // snapshots, the reference chains deep copies.
            *child = if deep {
                child.deep_clone()
            } else {
                child.snapshot()
            };
            let _ = writeln!(obs, "resnapshot");
        }
    }
}

/// Bit-exact dump of everything an image can observe: protection and
/// bytes of every window page (guards included) and the head of every
/// heap block the sequence ever allocated.
fn diff_dump(proc: &healers_simproc::SimProcess, blocks: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for page in 0..DIFF_PAGES + 2 {
        let base = DIFF_BASE - PAGE_SIZE + page * PAGE_SIZE;
        let _ = writeln!(out, "page {base:#x}: {:?}", proc.mem.protection_at(base));
        let _ = writeln!(out, "  {:?}", proc.mem.read_bytes(base, PAGE_SIZE));
    }
    for &block in blocks {
        let _ = writeln!(
            out,
            "block {block:#x}: {:?}",
            proc.mem.read_bytes(block, 64)
        );
    }
    out
}

/// Run the whole sequence under one containment mechanism; returns the
/// op-by-op observation log, the final child dump, and the parent dump.
fn diff_run(ops: &[(u8, u32, u32)], deep: bool) -> (String, String, String) {
    use healers_simproc::WorldSnapshot;
    let (parent, seed_blocks) = diff_parent();
    let mut child = if deep {
        parent.deep_clone()
    } else {
        parent.snapshot()
    };
    let mut blocks = seed_blocks;
    let mut obs = String::new();
    for op in ops {
        diff_apply(&mut child, deep, &mut blocks, *op, &mut obs);
    }
    let child_dump = diff_dump(&child, &blocks);
    let parent_dump = diff_dump(&parent, &blocks);
    (obs, child_dump, parent_dump)
}

// ---------------------------------------------------------------------------
// Snapshot-boundary properties the sequence fuzzer's coverage signal
// rests on: fault provenance must be a property of the *world image*,
// not of the snapshot generation it is resolved in, and the stateful
// queries the wrapper uses (`block_containing`, `probe_range`) must
// answer identically on both sides of a snapshot → fault → rollback
// cycle.

/// Hostile probe addresses biased around the edges of real blocks:
/// in-bounds, one-past-end (guard page in guarded mode), far overruns,
/// and underruns.
fn hostile_addrs(blocks: &[u32], offsets: &[u32]) -> Vec<u32> {
    offsets
        .iter()
        .enumerate()
        .map(|(i, off)| {
            blocks[i % blocks.len()]
                .wrapping_add(*off)
                .wrapping_sub(PAGE_SIZE)
        })
        .collect()
}

proptest! {
    /// Coverage sites survive snapshot → fault → rollback: a hostile
    /// access resolved inside a CoW child yields the same address-free
    /// [`CoverageSite`] as resolving the same address against the
    /// parent, on every round, and the parent's own resolution is
    /// unchanged after each child is rolled away. This is what makes
    /// the fuzzer's coverage map meaningful: a site recorded in one
    /// containment child deduplicates against the same crash found in
    /// any other.
    #[test]
    fn coverage_sites_survive_snapshot_fault_rollback(
        sizes in prop::collection::vec(1u32..512, 1..8),
        free_mask in any::<u8>(),
        offsets in prop::collection::vec(0u32..(2 * PAGE_SIZE), 1..16),
        write in any::<bool>(),
        rounds in 1usize..4,
    ) {
        use healers_simproc::{AccessKind, FaultSite, WorldSnapshot};
        let mut parent = SimProcess::new_guarded();
        let blocks: Vec<u32> =
            sizes.iter().map(|s| parent.heap_alloc(*s).unwrap()).collect();
        for (i, &b) in blocks.iter().enumerate() {
            if free_mask & (1 << (i % 8)) != 0 {
                parent.heap_free(b).unwrap();
            }
        }
        let access = if write { AccessKind::Write } else { AccessKind::Read };
        let addrs = hostile_addrs(&blocks, &offsets);
        let baseline: Vec<_> = addrs
            .iter()
            .map(|&a| FaultSite::resolve_addr(a, access, &parent).coverage_site())
            .collect();
        for round in 0..rounds {
            let child = parent.snapshot();
            for (&a, expect) in addrs.iter().zip(&baseline) {
                // The real fault path where the access actually traps,
                // and the direct resolution path, must agree with the
                // parent baseline.
                let attempted = if write {
                    let mut probe = child.snapshot();
                    probe.mem.write_u8(a, 0xEE).err()
                } else {
                    child.mem.read_u8(a).err()
                };
                if let Some(site) =
                    attempted.as_ref().and_then(|f| FaultSite::resolve(f, &child))
                {
                    prop_assert_eq!(
                        site.coverage_site(), *expect,
                        "trapped site diverged in round {} at {:#x}", round, a
                    );
                }
                prop_assert_eq!(
                    FaultSite::resolve_addr(a, access, &child).coverage_site(),
                    *expect,
                    "child resolution diverged in round {} at {:#x}", round, a
                );
            }
            drop(child); // rollback
            for (&a, expect) in addrs.iter().zip(&baseline) {
                prop_assert_eq!(
                    FaultSite::resolve_addr(a, access, &parent).coverage_site(),
                    *expect,
                    "rollback changed the parent's site for {:#x}", a
                );
            }
        }
    }

    /// `block_containing` and `probe_range` at the snapshot boundary:
    /// a fresh child answers exactly like its parent, and arbitrary
    /// child heap traffic (allocs, frees, double frees) leaves the
    /// parent's answers bit-identical once the child is rolled away.
    #[test]
    fn heap_and_probe_queries_agree_across_snapshot_boundaries(
        sizes in prop::collection::vec(1u32..2048, 1..10),
        child_ops in prop::collection::vec((any::<bool>(), 0u32..4096), 0..16),
        offsets in prop::collection::vec(0u32..(2 * PAGE_SIZE), 1..16),
        lens in prop::collection::vec(1u32..256, 1..16),
    ) {
        use healers_simproc::WorldSnapshot;
        let mut parent = SimProcess::new_guarded();
        let blocks: Vec<u32> =
            sizes.iter().map(|s| parent.heap_alloc(*s).unwrap()).collect();
        let addrs = hostile_addrs(&blocks, &offsets);
        let query = |p: &SimProcess| -> Vec<String> {
            addrs
                .iter()
                .zip(lens.iter().cycle())
                .map(|(&a, &len)| {
                    format!(
                        "{:#x}: {:?} r={} rw={}",
                        a,
                        p.heap.block_containing(a),
                        p.mem.probe_range(a, len, true, false),
                        p.mem.probe_range(a, len, true, true),
                    )
                })
                .collect()
        };
        let before = query(&parent);
        let mut child = parent.snapshot();
        prop_assert_eq!(
            query(&child), before.clone(),
            "a fresh snapshot answers differently from its parent"
        );
        let mut child_blocks = blocks.clone();
        for &(do_alloc, v) in &child_ops {
            if do_alloc {
                if let Ok(b) = child.heap_alloc(v) {
                    child_blocks.push(b);
                }
            } else if !child_blocks.is_empty() {
                let target = child_blocks[v as usize % child_blocks.len()];
                let _ = child.heap_free(target); // double frees included
            }
        }
        drop(child); // rollback
        prop_assert_eq!(
            query(&parent), before,
            "child heap traffic leaked across the rollback boundary"
        );
    }
}

proptest! {
    /// Differential: for any op sequence, CoW snapshots and deep clones
    /// yield the same per-op outcomes, a bit-identical final memory
    /// image, and a parent identical to one that never had a child.
    #[test]
    fn cow_and_deep_clone_children_are_bit_identical(
        ops in prop::collection::vec(
            (any::<u8>(), 0u32..0xffff_ffff, 0u32..0xffff_ffff),
            0..48,
        ),
    ) {
        let (obs_cow, child_cow, parent_cow) = diff_run(&ops, false);
        let (obs_deep, child_deep, parent_deep) = diff_run(&ops, true);
        prop_assert_eq!(obs_cow, obs_deep, "op outcomes diverged");
        prop_assert_eq!(child_cow, child_deep, "final child images diverged");
        prop_assert_eq!(&parent_cow, &parent_deep, "parent images diverged");
        // The parent is bit-identical to one that never spawned a child.
        let (pristine, seed_blocks) = diff_parent();
        let all_blocks: Vec<u32> = {
            // Re-derive the block list the dumps used: replay allocations
            // against a throwaway deep clone.
            use healers_simproc::WorldSnapshot;
            let mut child = pristine.deep_clone();
            let mut blocks = seed_blocks;
            let mut obs = String::new();
            for op in &ops {
                diff_apply(&mut child, true, &mut blocks, *op, &mut obs);
            }
            blocks
        };
        prop_assert_eq!(parent_cow, diff_dump(&pristine, &all_blocks), "child leaked into parent");
    }
}
