//! Machine values passed to and returned from simulated C functions.

use std::fmt;

use crate::Addr;

/// A value in the simulated C ABI.
///
/// Integer-family arguments (including `char`, enums, `size_t`) travel as
/// [`SimValue::Int`]; all pointers travel as [`SimValue::Ptr`]; floating
/// point as [`SimValue::Double`]; `void` returns as [`SimValue::Void`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimValue {
    /// An integer value (sign-extended to 64 bits).
    Int(i64),
    /// A pointer value.
    Ptr(Addr),
    /// A floating-point value.
    Double(f64),
    /// The absence of a value (`void`).
    Void,
}

impl SimValue {
    /// The null pointer.
    pub const NULL: SimValue = SimValue::Ptr(0);

    /// Interpret the value as an integer. Pointers coerce to their
    /// address, doubles truncate — mirroring C's weakly-typed call ABI
    /// where a test harness may pass any bit pattern.
    pub fn as_int(self) -> i64 {
        match self {
            SimValue::Int(v) => v,
            SimValue::Ptr(p) => i64::from(p),
            SimValue::Double(d) => d as i64,
            SimValue::Void => 0,
        }
    }

    /// Interpret the value as a pointer (integers are truncated to the
    /// 32-bit address width, like a cast through `uintptr_t`).
    pub fn as_ptr(self) -> Addr {
        match self {
            SimValue::Ptr(p) => p,
            SimValue::Int(v) => v as u32,
            SimValue::Double(d) => d as u32,
            SimValue::Void => 0,
        }
    }

    /// Interpret the value as a double.
    pub fn as_double(self) -> f64 {
        match self {
            SimValue::Double(d) => d,
            SimValue::Int(v) => v as f64,
            SimValue::Ptr(p) => f64::from(p),
            SimValue::Void => 0.0,
        }
    }

    /// Whether this is the null pointer (or integer zero used as one).
    pub fn is_null(self) -> bool {
        self.as_ptr() == 0
    }
}

impl fmt::Display for SimValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimValue::Int(v) => write!(f, "{v}"),
            SimValue::Ptr(0) => write!(f, "NULL"),
            SimValue::Ptr(p) => write!(f, "{p:#010x}"),
            SimValue::Double(d) => write!(f, "{d}"),
            SimValue::Void => write!(f, "void"),
        }
    }
}

impl From<i32> for SimValue {
    fn from(v: i32) -> Self {
        SimValue::Int(i64::from(v))
    }
}

impl From<i64> for SimValue {
    fn from(v: i64) -> Self {
        SimValue::Int(v)
    }
}

impl From<u32> for SimValue {
    fn from(v: u32) -> Self {
        SimValue::Int(i64::from(v))
    }
}

impl From<f64> for SimValue {
    fn from(v: f64) -> Self {
        SimValue::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(SimValue::Int(-1).as_ptr(), 0xffff_ffff);
        assert_eq!(SimValue::Ptr(0x1000).as_int(), 0x1000);
        assert_eq!(SimValue::Double(3.9).as_int(), 3);
        assert!(SimValue::NULL.is_null());
        assert!(SimValue::Int(0).is_null());
        assert!(!SimValue::Ptr(4).is_null());
    }

    #[test]
    fn display() {
        assert_eq!(SimValue::NULL.to_string(), "NULL");
        assert_eq!(SimValue::Ptr(0x1234).to_string(), "0x00001234");
        assert_eq!(SimValue::Int(-5).to_string(), "-5");
        assert_eq!(SimValue::Void.to_string(), "void");
    }

    #[test]
    fn from_impls() {
        assert_eq!(SimValue::from(7i32), SimValue::Int(7));
        assert_eq!(SimValue::from(7u32), SimValue::Int(7));
        assert_eq!(SimValue::from(2.5f64), SimValue::Double(2.5));
    }
}
