//! Simulated threads: per-thread stacks, register state, and `errno`.
//!
//! The 2002 paper's hardening model is single-threaded — every check
//! assumes the world cannot change between `check_*` and the wrapped
//! call. To make check-vs-mutate (TOCTOU) windows *expressible* as
//! deterministic test cases, the simulated process carries a small
//! thread table. Threads here are cooperative and explicit: there is no
//! ambient preemption — a caller (the fuzzer's executor, the ballista
//! TOCTOU runner) decides exactly when to [`switch`] between threads,
//! usually driven by a seeded [`Scheduler`](crate::sched::Scheduler).
//! That is what keeps every interleaving reproducible from the master
//! seed and byte-identical at any `--jobs`.
//!
//! Per-thread state is deliberately minimal: a stack window carved from
//! the classic stack region (one guard page between neighbours), a
//! register file (`sp` doubles as the stack bump cursor), the thread's
//! private `errno` cell, and a lifecycle state. Everything else — the
//! address space, the heap, statics — is shared process state, exactly
//! like real threads.
//!
//! [`switch`]: crate::SimProcess::switch_to

use crate::Addr;

/// Identifier of a simulated thread. Thread 0 is the main thread and
/// always exists.
pub type ThreadId = u32;

/// Hard cap on simultaneously existing threads. Sixteen stack windows
/// (plus guard gaps) fit comfortably under the classic stack base
/// without approaching the heap limit, and no workload in this
/// reproduction needs more lanes than that.
pub const MAX_THREADS: usize = 16;

/// Lifecycle state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run; [`SimProcess::switch_to`](crate::SimProcess::switch_to)
    /// accepts it.
    Runnable,
    /// Ran to completion; its stack stays mapped until joined (the
    /// classic "pthread not yet joined" zombie).
    Finished,
    /// Finished and reaped by [`SimProcess::join_thread`](crate::SimProcess::join_thread).
    Joined,
}

/// The simulated register file. `sp` is live — it is the per-thread
/// stack bump cursor used by
/// [`SimProcess::stack_alloc`](crate::SimProcess::stack_alloc). The
/// remaining registers exist so thread state has the shape of a real
/// context (and so snapshots/clones demonstrably carry it), but no
/// simulated library routine interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRegs {
    /// Stack pointer; doubles as the stack-allocation bump cursor.
    pub sp: Addr,
    /// Program counter (cosmetic: the index of the last step the
    /// executor ran on this thread, if it chooses to record one).
    pub pc: u32,
    /// General-purpose registers.
    pub gpr: [u32; 6],
}

/// One simulated thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimThread {
    /// Thread identifier (index into the thread table).
    pub id: ThreadId,
    /// Lifecycle state.
    pub state: ThreadState,
    /// This thread's private `errno` cell.
    pub errno: i32,
    /// Exclusive top of this thread's stack window.
    pub stack_top: Addr,
    /// Inclusive bottom of this thread's stack window.
    pub stack_limit: Addr,
    /// Register file.
    pub regs: ThreadRegs,
}

impl SimThread {
    /// A fresh runnable thread whose stack window is
    /// `[stack_top - stack_size, stack_top)`.
    pub fn new(id: ThreadId, stack_top: Addr, stack_size: u32) -> Self {
        SimThread {
            id,
            state: ThreadState::Runnable,
            errno: 0,
            stack_top,
            stack_limit: stack_top - stack_size,
            regs: ThreadRegs {
                sp: stack_top,
                pc: 0,
                gpr: [0; 6],
            },
        }
    }

    /// Whether `addr` falls inside this thread's stack window.
    pub fn owns_stack(&self, addr: Addr) -> bool {
        (self.stack_limit..self.stack_top).contains(&addr)
    }
}

/// The process's thread table: a dense vector indexed by [`ThreadId`]
/// plus the currently running thread. Cloning the table clones every
/// thread's registers and `errno` — this is what makes CoW world
/// snapshots carry per-thread state for free.
#[derive(Debug, Clone)]
pub struct ThreadTable {
    threads: Vec<SimThread>,
    current: ThreadId,
}

impl ThreadTable {
    /// A table holding only the main thread (id 0) with the given stack
    /// window.
    pub fn new(main_stack_top: Addr, main_stack_size: u32) -> Self {
        ThreadTable {
            threads: vec![SimThread::new(0, main_stack_top, main_stack_size)],
            current: 0,
        }
    }

    /// Number of threads ever spawned (including finished/joined ones).
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Always false: the main thread exists for the life of the process.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The currently running thread's id.
    pub fn current_id(&self) -> ThreadId {
        self.current
    }

    /// The currently running thread.
    pub fn current(&self) -> &SimThread {
        &self.threads[self.current as usize]
    }

    /// The currently running thread, mutably.
    pub fn current_mut(&mut self) -> &mut SimThread {
        &mut self.threads[self.current as usize]
    }

    /// Look up a thread by id.
    pub fn get(&self, id: ThreadId) -> Option<&SimThread> {
        self.threads.get(id as usize)
    }

    /// Look up a thread by id, mutably.
    pub fn get_mut(&mut self, id: ThreadId) -> Option<&mut SimThread> {
        self.threads.get_mut(id as usize)
    }

    /// Iterate over all threads in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &SimThread> {
        self.threads.iter()
    }

    /// Ids of all [`ThreadState::Runnable`] threads, in id order.
    pub fn runnable(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|t| t.state == ThreadState::Runnable)
            .map(|t| t.id)
            .collect()
    }

    /// Append a freshly constructed thread and return its id.
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_THREADS`] — a harness bug, not an application
    /// error: every caller that takes thread counts from input caps
    /// them first.
    pub fn push(&mut self, stack_top: Addr, stack_size: u32) -> ThreadId {
        assert!(
            self.threads.len() < MAX_THREADS,
            "thread table full ({MAX_THREADS} threads)"
        );
        let id = self.threads.len() as ThreadId;
        self.threads.push(SimThread::new(id, stack_top, stack_size));
        id
    }

    /// Make `id` the current thread.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist or is not runnable — scheduling a
    /// finished thread is a harness bug.
    pub fn switch_to(&mut self, id: ThreadId) {
        let t = self
            .threads
            .get(id as usize)
            .unwrap_or_else(|| panic!("switch to unknown thread {id}"));
        assert!(
            t.state == ThreadState::Runnable,
            "switch to non-runnable thread {id} ({:?})",
            t.state
        );
        self.current = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;

    const TOP: Addr = 0xbfff_f000;
    const SIZE: u32 = 16 * PAGE_SIZE;

    #[test]
    fn table_starts_with_main_thread() {
        let t = ThreadTable::new(TOP, SIZE);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.current_id(), 0);
        assert_eq!(t.current().state, ThreadState::Runnable);
        assert_eq!(t.current().regs.sp, TOP);
        assert_eq!(t.current().stack_limit, TOP - SIZE);
    }

    #[test]
    fn push_assigns_dense_ids_and_disjoint_stacks() {
        let mut t = ThreadTable::new(TOP, SIZE);
        let a = t.push(TOP - SIZE - PAGE_SIZE, SIZE);
        let b = t.push(TOP - 2 * (SIZE + PAGE_SIZE), SIZE);
        assert_eq!((a, b), (1, 2));
        let one = t.get(1).unwrap();
        let two = t.get(2).unwrap();
        assert!(one.stack_limit >= two.stack_top); // guard gap between
        assert!(one.owns_stack(one.stack_top - 4));
        assert!(!one.owns_stack(two.stack_top - 4));
    }

    #[test]
    fn switch_and_join_lifecycle() {
        let mut t = ThreadTable::new(TOP, SIZE);
        let id = t.push(TOP - SIZE - PAGE_SIZE, SIZE);
        t.switch_to(id);
        assert_eq!(t.current_id(), id);
        t.switch_to(0);
        t.get_mut(id).unwrap().state = ThreadState::Finished;
        assert_eq!(t.runnable(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "non-runnable")]
    fn switching_to_finished_thread_panics() {
        let mut t = ThreadTable::new(TOP, SIZE);
        let id = t.push(TOP - SIZE - PAGE_SIZE, SIZE);
        t.get_mut(id).unwrap().state = ThreadState::Finished;
        t.switch_to(id);
    }
}
