//! Simulated process substrate for HEALERS.
//!
//! The paper's fault injectors and robustness wrappers operate on a real
//! Unix process: segmentation faults carry the faulting address, pages have
//! hardware protection bits, the heap allocator knows block boundaries, and
//! hangs are detected with a timeout. This crate reproduces all of that as
//! a deterministic, in-process simulation:
//!
//! * [`AddressSpace`] — a sparse paged 32-bit address space with per-page
//!   protection; every access either succeeds or produces a [`SimFault`]
//!   carrying the faulting address and access kind (the information the
//!   paper's adaptive test-case generators rely on),
//! * [`Heap`] — a `malloc`-style allocator with a block table (the basis of
//!   the wrapper's *stateful* checking) and an optional guard-page
//!   ("electric fence") placement mode used by the fault injector to grow
//!   arrays adaptively,
//! * [`FaultSite`] — fault provenance: the page-run and heap-block
//!   attribution of a faulting address (which page run was hit, which
//!   block was overrun, whether a guard page caught it),
//! * [`SimProcess`] — address space + heap + `errno` + a fuel budget that
//!   deterministically models the paper's hang timeout,
//! * [`run_in_child`] — fault containment: a call executes against a
//!   copy-on-write snapshot of the process image ([`WorldSnapshot`]), so
//!   a crashing call can never corrupt the caller's state, exactly like
//!   the paper's `fork()`ed child processes — and at the same
//!   share-until-written price.
//!
//! # Examples
//!
//! ```
//! use healers_simproc::SimProcess;
//!
//! let mut proc = SimProcess::new();
//! let buf = proc.heap_alloc(16).unwrap();
//! proc.mem.write_bytes(buf, b"hello").unwrap();
//! assert_eq!(proc.mem.read_bytes(buf, 5).unwrap(), b"hello");
//!
//! // Unmapped accesses fault with the faulting address, like SIGSEGV.
//! let fault = proc.mem.read_bytes(0xdead_0000, 1).unwrap_err();
//! assert_eq!(fault.segv_addr(), Some(0xdead_0000));
//! ```

pub mod heap;
pub mod mem;
pub mod proc;
pub mod provenance;
pub mod sandbox;
pub mod sched;
pub mod thread;
pub mod value;

pub use heap::{Heap, HeapBlock, HeapError, HeapMode};
pub use mem::{AccessKind, AddressSpace, CowStats, PageRun, Protection, SimFault, PAGE_SIZE};
pub use proc::{SimProcess, HEAP_BASE, INVALID_PTR, STACK_BASE, STACK_SIZE, STATIC_BASE};
pub use provenance::{BlockAttribution, CoverageSite, FaultSite};
pub use sandbox::{
    rollback, run_in_child, run_in_child_with, ChildResult, Containment, WorldSnapshot,
};
pub use sched::{Scheduler, MAX_WINDOW_BUDGET};
pub use thread::{SimThread, ThreadId, ThreadRegs, ThreadState, ThreadTable, MAX_THREADS};
pub use value::SimValue;

/// A simulated 32-bit address.
pub type Addr = u32;
