//! The simulated process: address space, heap, stack, statics, `errno`,
//! and the fuel budget that models hang detection.

use std::collections::BTreeMap;

use crate::heap::{Heap, HeapError, HeapMode};
use crate::mem::{AddressSpace, Protection, SimFault, PAGE_SIZE};
use crate::Addr;

/// Base of the static-data region (libc internal buffers, `errno`
/// storage, ctype tables, environment strings).
pub const STATIC_BASE: Addr = 0x0801_0000;
/// Size of the static-data region. Kept small so that cloning a
/// process image (fault containment) stays cheap.
pub const STATIC_SIZE: u32 = 0x0002_0000;
/// Base of the heap region.
pub const HEAP_BASE: Addr = 0x1000_0000;
/// End of the heap region (exclusive).
pub const HEAP_LIMIT: Addr = 0x7000_0000;
/// Top of the downward-growing stack.
pub const STACK_BASE: Addr = 0xbfff_f000;
/// Mapped stack size. Kept small so process clones stay cheap.
pub const STACK_SIZE: u32 = 16 * PAGE_SIZE;
/// A canonical pointer that is never mapped — the classic "invalid
/// non-null pointer" test value.
pub const INVALID_PTR: Addr = 0xdead_0000;

/// Default fuel budget per library call. One unit corresponds roughly to
/// one byte processed or one loop iteration; exhausting the budget raises
/// [`SimFault::FuelExhausted`], the deterministic analogue of the paper's
/// hang-detection timeout.
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// A simulated process image.
///
/// Cloning a `SimProcess` is copy-on-write: the page table, page frames,
/// and heap block table are reference-shared until written. This is how
/// the fault injector "spawns a child process" for each test case (§4.1)
/// — at `fork()`'s share-until-written price, not a full copy.
#[derive(Debug, Clone)]
pub struct SimProcess {
    /// The paged address space.
    pub mem: AddressSpace,
    /// The heap allocator.
    pub heap: Heap,
    /// The C `errno` cell.
    errno: i32,
    /// Fuel remaining for the current call.
    fuel_left: u64,
    /// Configured fuel budget per call.
    fuel_budget: u64,
    /// Bump cursor for static allocations.
    static_cursor: Addr,
    /// Named static buffers (e.g. `asctime`'s result buffer).
    statics: BTreeMap<String, Addr>,
    /// Bump cursor for stack "frames" handed to application code.
    stack_cursor: Addr,
}

impl SimProcess {
    /// A fresh process: stack and static regions mapped, heap in packed
    /// (production) mode.
    pub fn new() -> Self {
        let mut mem = AddressSpace::new();
        mem.map(STATIC_BASE, STATIC_SIZE, Protection::ReadWrite);
        mem.map(STACK_BASE - STACK_SIZE, STACK_SIZE, Protection::ReadWrite);
        SimProcess {
            mem,
            heap: Heap::new(HEAP_BASE, HEAP_LIMIT, HeapMode::Packed),
            errno: 0,
            fuel_left: DEFAULT_FUEL,
            fuel_budget: DEFAULT_FUEL,
            static_cursor: STATIC_BASE,
            statics: BTreeMap::new(),
            stack_cursor: STACK_BASE,
        }
    }

    /// A fresh process with the heap in guarded (electric-fence) mode, as
    /// the fault injector uses.
    pub fn new_guarded() -> Self {
        let mut p = SimProcess::new();
        p.heap.set_mode(HeapMode::Guarded);
        p
    }

    /// Current `errno` value.
    pub fn errno(&self) -> i32 {
        self.errno
    }

    /// Set `errno`.
    pub fn set_errno(&mut self, e: i32) {
        self.errno = e;
    }

    /// Allocate on the heap (read-write).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn heap_alloc(&mut self, size: u32) -> Result<Addr, HeapError> {
        self.heap.malloc(&mut self.mem, size)
    }

    /// Free a heap block.
    ///
    /// # Errors
    ///
    /// Propagates allocator consistency errors (invalid pointer / double
    /// free) for the caller to convert into an abort.
    pub fn heap_free(&mut self, addr: Addr) -> Result<(), HeapError> {
        self.heap.free(&mut self.mem, addr)
    }

    /// Carve `size` bytes from the static region (never freed). Used for
    /// libc-internal tables and buffers.
    ///
    /// # Panics
    ///
    /// Panics if the static region overflows — a simulator configuration
    /// bug, not an application error.
    pub fn static_alloc(&mut self, size: u32) -> Addr {
        let addr = self.static_cursor.next_multiple_of(8);
        assert!(
            addr + size <= STATIC_BASE + STATIC_SIZE,
            "static region exhausted"
        );
        self.static_cursor = addr + size;
        addr
    }

    /// Get or create a named static buffer of `size` bytes.
    pub fn named_static(&mut self, name: &str, size: u32) -> Addr {
        if let Some(&a) = self.statics.get(name) {
            return a;
        }
        let a = self.static_alloc(size);
        self.statics.insert(name.to_string(), a);
        a
    }

    /// Look up a named static buffer without creating it.
    pub fn named_static_get(&self, name: &str) -> Option<Addr> {
        self.statics.get(name).copied()
    }

    /// Carve `size` bytes of mapped stack space (for application-owned
    /// buffers in examples and workloads). Wraps around when exhausted.
    pub fn stack_alloc(&mut self, size: u32) -> Addr {
        let size = size.next_multiple_of(8);
        if self.stack_cursor - size < STACK_BASE - STACK_SIZE {
            self.stack_cursor = STACK_BASE;
        }
        self.stack_cursor -= size;
        self.stack_cursor
    }

    /// Whether `addr` is inside the mapped stack.
    pub fn in_stack(&self, addr: Addr) -> bool {
        (STACK_BASE - STACK_SIZE..STACK_BASE).contains(&addr)
    }

    /// Consume `n` units of fuel.
    ///
    /// # Errors
    ///
    /// [`SimFault::FuelExhausted`] once the per-call budget is spent —
    /// the caller treats this as a hang.
    pub fn tick(&mut self, n: u64) -> Result<(), SimFault> {
        if self.fuel_left < n {
            self.fuel_left = 0;
            return Err(SimFault::FuelExhausted);
        }
        self.fuel_left -= n;
        Ok(())
    }

    /// Reset the fuel budget (called at every library-call boundary).
    pub fn reset_fuel(&mut self) {
        self.fuel_left = self.fuel_budget;
    }

    /// Configure the per-call fuel budget.
    pub fn set_fuel_budget(&mut self, budget: u64) {
        self.fuel_budget = budget;
        self.fuel_left = budget;
    }

    /// Fuel consumed since the last reset.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_budget - self.fuel_left
    }

    /// Read a NUL-terminated C string, consuming fuel per byte.
    ///
    /// # Errors
    ///
    /// Faults if any byte before the terminator is unreadable, or with
    /// [`SimFault::FuelExhausted`] on unterminated gigantic regions.
    pub fn read_cstr(&mut self, addr: Addr) -> Result<Vec<u8>, SimFault> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            self.tick(1)?;
            let b = self.mem.read_u8(a)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a = a.wrapping_add(1);
        }
    }

    /// Write a NUL-terminated C string.
    ///
    /// # Errors
    ///
    /// Faults at the first unwritable byte (partial writes persist).
    pub fn write_cstr(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), SimFault> {
        self.mem.write_bytes(addr, bytes)?;
        self.mem.write_u8(addr + bytes.len() as u32, 0)
    }
}

impl Default for SimProcess {
    fn default() -> Self {
        SimProcess::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_process_layout() {
        let p = SimProcess::new();
        assert!(p.mem.probe_read(STATIC_BASE));
        assert!(p.mem.probe_write(STACK_BASE - 8));
        assert!(!p.mem.probe_read(0));
        assert!(!p.mem.probe_read(INVALID_PTR));
        assert_eq!(p.errno(), 0);
    }

    #[test]
    fn cstr_roundtrip() {
        let mut p = SimProcess::new();
        let a = p.heap_alloc(16).unwrap();
        p.write_cstr(a, b"hi there").unwrap();
        assert_eq!(p.read_cstr(a).unwrap(), b"hi there");
    }

    #[test]
    fn unterminated_cstr_hangs_or_faults() {
        let mut p = SimProcess::new_guarded();
        let a = p.heap_alloc(8).unwrap();
        p.mem.write_bytes(a, &[1; 8]).unwrap();
        // Guarded block: the read runs off the end and faults at the guard.
        let err = p.read_cstr(a).unwrap_err();
        assert_eq!(err.segv_addr(), Some(a + 8));
    }

    #[test]
    fn fuel_exhaustion_is_hang() {
        let mut p = SimProcess::new();
        p.set_fuel_budget(10);
        assert!(p.tick(5).is_ok());
        assert_eq!(p.tick(6).unwrap_err(), SimFault::FuelExhausted);
        p.reset_fuel();
        assert!(p.tick(10).is_ok());
    }

    #[test]
    fn named_statics_are_stable() {
        let mut p = SimProcess::new();
        let a = p.named_static("asctime_buf", 26);
        let b = p.named_static("asctime_buf", 26);
        assert_eq!(a, b);
        let c = p.named_static("other", 8);
        assert_ne!(a, c);
        assert_eq!(p.named_static_get("asctime_buf"), Some(a));
        assert_eq!(p.named_static_get("missing"), None);
    }

    #[test]
    fn stack_alloc_is_mapped() {
        let mut p = SimProcess::new();
        let a = p.stack_alloc(128);
        assert!(p.in_stack(a));
        p.mem.write_bytes(a, &[7; 128]).unwrap();
    }

    #[test]
    fn clone_is_independent() {
        let mut parent = SimProcess::new();
        let a = parent.heap_alloc(8).unwrap();
        parent.mem.write_u32(a, 1).unwrap();
        let mut child = parent.clone();
        child.mem.write_u32(a, 2).unwrap();
        child.set_errno(42);
        assert_eq!(parent.mem.read_u32(a).unwrap(), 1);
        assert_eq!(parent.errno(), 0);
        assert_eq!(child.mem.read_u32(a).unwrap(), 2);
    }
}
