//! The simulated process: address space, heap, threads (stacks,
//! registers, per-thread `errno`), statics, and the fuel budget that
//! models hang detection.

use std::collections::BTreeMap;

use crate::heap::{Heap, HeapError, HeapMode};
use crate::mem::{AddressSpace, Protection, SimFault, PAGE_SIZE};
use crate::thread::{SimThread, ThreadId, ThreadState, ThreadTable};
use crate::Addr;

/// Base of the static-data region (libc internal buffers, `errno`
/// storage, ctype tables, environment strings).
pub const STATIC_BASE: Addr = 0x0801_0000;
/// Size of the static-data region. Kept small so that cloning a
/// process image (fault containment) stays cheap.
pub const STATIC_SIZE: u32 = 0x0002_0000;
/// Base of the heap region.
pub const HEAP_BASE: Addr = 0x1000_0000;
/// End of the heap region (exclusive).
pub const HEAP_LIMIT: Addr = 0x7000_0000;
/// Top of the downward-growing stack.
pub const STACK_BASE: Addr = 0xbfff_f000;
/// Mapped stack size. Kept small so process clones stay cheap.
pub const STACK_SIZE: u32 = 16 * PAGE_SIZE;
/// A canonical pointer that is never mapped — the classic "invalid
/// non-null pointer" test value.
pub const INVALID_PTR: Addr = 0xdead_0000;

/// Default fuel budget per library call. One unit corresponds roughly to
/// one byte processed or one loop iteration; exhausting the budget raises
/// [`SimFault::FuelExhausted`], the deterministic analogue of the paper's
/// hang-detection timeout.
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// A simulated process image.
///
/// Cloning a `SimProcess` is copy-on-write: the page table, page frames,
/// and heap block table are reference-shared until written. This is how
/// the fault injector "spawns a child process" for each test case (§4.1)
/// — at `fork()`'s share-until-written price, not a full copy.
#[derive(Debug, Clone)]
pub struct SimProcess {
    /// The paged address space.
    pub mem: AddressSpace,
    /// The heap allocator.
    pub heap: Heap,
    /// The thread table: per-thread stacks, registers, and `errno`.
    /// Thread 0 (the main thread) always exists; single-threaded
    /// workloads never notice the table.
    threads: ThreadTable,
    /// Fuel remaining for the current call.
    fuel_left: u64,
    /// Configured fuel budget per call.
    fuel_budget: u64,
    /// Bump cursor for static allocations.
    static_cursor: Addr,
    /// Named static buffers (e.g. `asctime`'s result buffer).
    statics: BTreeMap<String, Addr>,
}

impl SimProcess {
    /// A fresh process: stack and static regions mapped, heap in packed
    /// (production) mode.
    pub fn new() -> Self {
        let mut mem = AddressSpace::new();
        mem.map(STATIC_BASE, STATIC_SIZE, Protection::ReadWrite);
        mem.map(STACK_BASE - STACK_SIZE, STACK_SIZE, Protection::ReadWrite);
        SimProcess {
            mem,
            heap: Heap::new(HEAP_BASE, HEAP_LIMIT, HeapMode::Packed),
            threads: ThreadTable::new(STACK_BASE, STACK_SIZE),
            fuel_left: DEFAULT_FUEL,
            fuel_budget: DEFAULT_FUEL,
            static_cursor: STATIC_BASE,
            statics: BTreeMap::new(),
        }
    }

    /// A fresh process with the heap in guarded (electric-fence) mode, as
    /// the fault injector uses.
    pub fn new_guarded() -> Self {
        let mut p = SimProcess::new();
        p.heap.set_mode(HeapMode::Guarded);
        p
    }

    /// Current `errno` value (of the current thread).
    pub fn errno(&self) -> i32 {
        self.threads.current().errno
    }

    /// Set the current thread's `errno`.
    pub fn set_errno(&mut self, e: i32) {
        self.threads.current_mut().errno = e;
    }

    /// Spawn a new simulated thread with its own stack window, one
    /// guard page below the previous thread's stack. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics past [`crate::thread::MAX_THREADS`] — callers that take
    /// thread counts from external input cap them first.
    pub fn spawn_thread(&mut self) -> ThreadId {
        let k = self.threads.len() as u32;
        let top = STACK_BASE - k * (STACK_SIZE + PAGE_SIZE);
        self.mem
            .map(top - STACK_SIZE, STACK_SIZE, Protection::ReadWrite);
        self.threads.push(top, STACK_SIZE)
    }

    /// Id of the currently running thread.
    pub fn current_thread(&self) -> ThreadId {
        self.threads.current_id()
    }

    /// Make `id` the current thread (a context switch). All subsequent
    /// `errno` and stack operations act on that thread.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or non-runnable thread — scheduling bugs,
    /// not application errors.
    pub fn switch_to(&mut self, id: ThreadId) {
        self.threads.switch_to(id);
    }

    /// Mark `id` finished (its stack stays mapped until joined). If it
    /// was the current thread, control returns to the main thread.
    pub fn finish_thread(&mut self, id: ThreadId) {
        if let Some(t) = self.threads.get_mut(id) {
            if t.state == ThreadState::Runnable {
                t.state = ThreadState::Finished;
            }
        }
        if self.threads.current_id() == id {
            self.threads.switch_to(0);
        }
    }

    /// Join a thread: reaps it if finished. Returns `true` once joined
    /// (idempotent), `false` while the thread is still runnable.
    pub fn join_thread(&mut self, id: ThreadId) -> bool {
        match self.threads.get_mut(id) {
            Some(t) if t.state == ThreadState::Finished => {
                t.state = ThreadState::Joined;
                true
            }
            Some(t) => t.state == ThreadState::Joined,
            None => false,
        }
    }

    /// Look up a thread by id.
    pub fn thread(&self, id: ThreadId) -> Option<&SimThread> {
        self.threads.get(id)
    }

    /// Iterate over all threads in id order (deterministic — used by
    /// the world digest).
    pub fn threads(&self) -> impl Iterator<Item = &SimThread> {
        self.threads.iter()
    }

    /// Number of threads ever spawned (including finished/joined).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Ids of all runnable threads, in id order.
    pub fn runnable_threads(&self) -> Vec<ThreadId> {
        self.threads.runnable()
    }

    /// Allocate on the heap (read-write).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn heap_alloc(&mut self, size: u32) -> Result<Addr, HeapError> {
        self.heap.malloc(&mut self.mem, size)
    }

    /// Free a heap block.
    ///
    /// # Errors
    ///
    /// Propagates allocator consistency errors (invalid pointer / double
    /// free) for the caller to convert into an abort.
    pub fn heap_free(&mut self, addr: Addr) -> Result<(), HeapError> {
        self.heap.free(&mut self.mem, addr)
    }

    /// Carve `size` bytes from the static region (never freed). Used for
    /// libc-internal tables and buffers.
    ///
    /// # Panics
    ///
    /// Panics if the static region overflows — a simulator configuration
    /// bug, not an application error.
    pub fn static_alloc(&mut self, size: u32) -> Addr {
        let addr = self.static_cursor.next_multiple_of(8);
        assert!(
            addr + size <= STATIC_BASE + STATIC_SIZE,
            "static region exhausted"
        );
        self.static_cursor = addr + size;
        addr
    }

    /// Get or create a named static buffer of `size` bytes.
    pub fn named_static(&mut self, name: &str, size: u32) -> Addr {
        if let Some(&a) = self.statics.get(name) {
            return a;
        }
        let a = self.static_alloc(size);
        self.statics.insert(name.to_string(), a);
        a
    }

    /// Look up a named static buffer without creating it.
    pub fn named_static_get(&self, name: &str) -> Option<Addr> {
        self.statics.get(name).copied()
    }

    /// Carve `size` bytes of mapped stack space (for application-owned
    /// buffers in examples and workloads) from the *current thread's*
    /// stack window. Wraps around when that window is exhausted.
    ///
    /// Because each thread bumps its own `sp`, the addresses a thread's
    /// steps receive depend only on that thread's own allocation order
    /// — not on how its steps interleave with other threads'. That is
    /// one of the properties the schedule-invariance tests lean on.
    pub fn stack_alloc(&mut self, size: u32) -> Addr {
        let size = size.next_multiple_of(8);
        let t = self.threads.current_mut();
        if t.regs.sp - size < t.stack_limit {
            t.regs.sp = t.stack_top;
        }
        t.regs.sp -= size;
        t.regs.sp
    }

    /// Whether `addr` is inside any thread's mapped stack window.
    pub fn in_stack(&self, addr: Addr) -> bool {
        self.threads.iter().any(|t| t.owns_stack(addr))
    }

    /// Consume `n` units of fuel.
    ///
    /// # Errors
    ///
    /// [`SimFault::FuelExhausted`] once the per-call budget is spent —
    /// the caller treats this as a hang.
    pub fn tick(&mut self, n: u64) -> Result<(), SimFault> {
        if self.fuel_left < n {
            self.fuel_left = 0;
            return Err(SimFault::FuelExhausted);
        }
        self.fuel_left -= n;
        Ok(())
    }

    /// Reset the fuel budget (called at every library-call boundary).
    pub fn reset_fuel(&mut self) {
        self.fuel_left = self.fuel_budget;
    }

    /// Configure the per-call fuel budget.
    pub fn set_fuel_budget(&mut self, budget: u64) {
        self.fuel_budget = budget;
        self.fuel_left = budget;
    }

    /// Fuel consumed since the last reset.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_budget - self.fuel_left
    }

    /// Read a NUL-terminated C string, consuming fuel per byte.
    ///
    /// # Errors
    ///
    /// Faults if any byte before the terminator is unreadable, or with
    /// [`SimFault::FuelExhausted`] on unterminated gigantic regions.
    pub fn read_cstr(&mut self, addr: Addr) -> Result<Vec<u8>, SimFault> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            self.tick(1)?;
            let b = self.mem.read_u8(a)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a = a.wrapping_add(1);
        }
    }

    /// Write a NUL-terminated C string.
    ///
    /// # Errors
    ///
    /// Faults at the first unwritable byte (partial writes persist).
    pub fn write_cstr(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), SimFault> {
        self.mem.write_bytes(addr, bytes)?;
        self.mem.write_u8(addr + bytes.len() as u32, 0)
    }
}

impl Default for SimProcess {
    fn default() -> Self {
        SimProcess::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_process_layout() {
        let p = SimProcess::new();
        assert!(p.mem.probe_read(STATIC_BASE));
        assert!(p.mem.probe_write(STACK_BASE - 8));
        assert!(!p.mem.probe_read(0));
        assert!(!p.mem.probe_read(INVALID_PTR));
        assert_eq!(p.errno(), 0);
    }

    #[test]
    fn cstr_roundtrip() {
        let mut p = SimProcess::new();
        let a = p.heap_alloc(16).unwrap();
        p.write_cstr(a, b"hi there").unwrap();
        assert_eq!(p.read_cstr(a).unwrap(), b"hi there");
    }

    #[test]
    fn unterminated_cstr_hangs_or_faults() {
        let mut p = SimProcess::new_guarded();
        let a = p.heap_alloc(8).unwrap();
        p.mem.write_bytes(a, &[1; 8]).unwrap();
        // Guarded block: the read runs off the end and faults at the guard.
        let err = p.read_cstr(a).unwrap_err();
        assert_eq!(err.segv_addr(), Some(a + 8));
    }

    #[test]
    fn fuel_exhaustion_is_hang() {
        let mut p = SimProcess::new();
        p.set_fuel_budget(10);
        assert!(p.tick(5).is_ok());
        assert_eq!(p.tick(6).unwrap_err(), SimFault::FuelExhausted);
        p.reset_fuel();
        assert!(p.tick(10).is_ok());
    }

    #[test]
    fn named_statics_are_stable() {
        let mut p = SimProcess::new();
        let a = p.named_static("asctime_buf", 26);
        let b = p.named_static("asctime_buf", 26);
        assert_eq!(a, b);
        let c = p.named_static("other", 8);
        assert_ne!(a, c);
        assert_eq!(p.named_static_get("asctime_buf"), Some(a));
        assert_eq!(p.named_static_get("missing"), None);
    }

    #[test]
    fn stack_alloc_is_mapped() {
        let mut p = SimProcess::new();
        let a = p.stack_alloc(128);
        assert!(p.in_stack(a));
        p.mem.write_bytes(a, &[7; 128]).unwrap();
    }

    #[test]
    fn clone_is_independent() {
        let mut parent = SimProcess::new();
        let a = parent.heap_alloc(8).unwrap();
        parent.mem.write_u32(a, 1).unwrap();
        let mut child = parent.clone();
        child.mem.write_u32(a, 2).unwrap();
        child.set_errno(42);
        assert_eq!(parent.mem.read_u32(a).unwrap(), 1);
        assert_eq!(parent.errno(), 0);
        assert_eq!(child.mem.read_u32(a).unwrap(), 2);
    }

    #[test]
    fn spawned_threads_have_disjoint_mapped_stacks() {
        let mut p = SimProcess::new();
        let t1 = p.spawn_thread();
        let t2 = p.spawn_thread();
        assert_eq!((t1, t2), (1, 2));

        let main_buf = p.stack_alloc(64);
        p.switch_to(t1);
        let t1_buf = p.stack_alloc(64);
        p.switch_to(t2);
        let t2_buf = p.stack_alloc(64);

        // All three live in their own windows, all mapped writable.
        for buf in [main_buf, t1_buf, t2_buf] {
            assert!(p.in_stack(buf));
            p.mem.write_bytes(buf, &[9; 64]).unwrap();
        }
        assert!(p.thread(0).unwrap().owns_stack(main_buf));
        assert!(p.thread(t1).unwrap().owns_stack(t1_buf));
        assert!(!p.thread(t1).unwrap().owns_stack(t2_buf));
        assert!(p.thread(t2).unwrap().owns_stack(t2_buf));

        // The guard page between stack windows stays unmapped.
        let gap = p.thread(t1).unwrap().stack_limit - 1;
        assert!(!p.mem.probe_read(gap));
    }

    #[test]
    fn errno_is_per_thread() {
        let mut p = SimProcess::new();
        let t1 = p.spawn_thread();
        p.set_errno(7);
        p.switch_to(t1);
        assert_eq!(p.errno(), 0);
        p.set_errno(22);
        p.switch_to(0);
        assert_eq!(p.errno(), 7);
        assert_eq!(p.thread(t1).unwrap().errno, 22);
    }

    #[test]
    fn thread_lifecycle_spawn_finish_join() {
        let mut p = SimProcess::new();
        let t1 = p.spawn_thread();
        assert!(!p.join_thread(t1), "runnable thread must not join");
        p.switch_to(t1);
        p.finish_thread(t1);
        // Finishing the current thread hands control back to main.
        assert_eq!(p.current_thread(), 0);
        assert_eq!(p.runnable_threads(), vec![0]);
        assert!(p.join_thread(t1));
        assert!(p.join_thread(t1), "join is idempotent");
        assert_eq!(p.thread_count(), 2);
    }

    #[test]
    fn clone_carries_per_thread_state() {
        let mut parent = SimProcess::new();
        let t1 = parent.spawn_thread();
        parent.switch_to(t1);
        parent.set_errno(5);
        let sp_before = parent.thread(t1).unwrap().regs.sp;
        let mut child = parent.clone();
        child.stack_alloc(32);
        child.set_errno(9);
        // Child diverged; parent's thread state is untouched.
        assert_eq!(parent.thread(t1).unwrap().regs.sp, sp_before);
        assert_eq!(parent.thread(t1).unwrap().errno, 5);
        assert_eq!(child.thread(t1).unwrap().errno, 9);
        assert!(child.thread(t1).unwrap().regs.sp < sp_before);
    }
}
