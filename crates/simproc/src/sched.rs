//! The deterministic seeded scheduler.
//!
//! All concurrency in the simulated process is *scheduled*, never
//! emergent: a [`Scheduler`] derives every preemption decision from a
//! single seed via a private xorshift64* stream, so the interleaving a
//! workload sees is a pure function of that seed. Two consequences the
//! rest of the system leans on:
//!
//! * **jobs-invariance** — the schedule depends only on the seed, not
//!   on which worker thread of the *host* fuzzer executes the sequence,
//!   so journals and pins are byte-identical at any `--jobs`;
//! * **replayability** — a TOCTOU finding's schedule can be re-derived
//!   (seeded mode) or carried verbatim in the sequence genome (explicit
//!   `preempt` lines), making races shrinkable regression tests instead
//!   of flakes.
//!
//! Decisions are intentionally tiny: *which runnable thread next*
//! (round-robin with a seeded starting bias) and *how many pending
//! other-thread steps may run inside a check-vs-call window* (the
//! window budget). Keeping the decision surface small is what lets the
//! schedule live in a sequence genome as a couple of integers.

use crate::thread::ThreadId;

/// Upper bound on a single check-vs-call window budget. Depth-one
/// windows with at most two pulled steps are enough to express every
/// two-thread TOCTOU shape (mutate-then-call, double-mutate) while
/// keeping the genome small and shrinking fast.
pub const MAX_WINDOW_BUDGET: u32 = 2;

/// A deterministic round-robin scheduler seeded from the master seed.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// xorshift64* state; never zero.
    state: u64,
    /// Round-robin cursor over runnable threads.
    rr: usize,
}

impl Scheduler {
    /// A scheduler whose entire decision stream is determined by
    /// `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Scheduler {
            state: seed | 1, // xorshift must not start at zero
            rr: (seed >> 33) as usize,
        }
    }

    /// Next raw pseudo-random word (xorshift64*).
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Pick the next thread to run from a runnable set (id order),
    /// round-robin. Returns `None` when nothing is runnable.
    pub fn pick(&mut self, runnable: &[ThreadId]) -> Option<ThreadId> {
        if runnable.is_empty() {
            return None;
        }
        let choice = runnable[self.rr % runnable.len()];
        self.rr = self.rr.wrapping_add(1);
        Some(choice)
    }

    /// Budget for one check-vs-call window: how many pending
    /// other-thread steps may execute between a wrapped call's checks
    /// and its library call. Zero (no preemption) stays the most likely
    /// outcome so most calls keep the paper's single-threaded shape.
    pub fn window_budget(&mut self, pending: usize) -> u32 {
        if pending == 0 {
            return 0;
        }
        let cap = (pending as u32).min(MAX_WINDOW_BUDGET);
        // 0..=cap with a bias toward 0: draw twice, take the min.
        let a = (self.next() % u64::from(cap + 1)) as u32;
        let b = (self.next() % u64::from(cap + 1)) as u32;
        a.min(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let mut a = Scheduler::from_seed(0xfeed);
        let mut b = Scheduler::from_seed(0xfeed);
        let runnable = [0u32, 1, 2];
        for _ in 0..64 {
            assert_eq!(a.pick(&runnable), b.pick(&runnable));
            assert_eq!(a.window_budget(3), b.window_budget(3));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Scheduler::from_seed(1);
        let mut b = Scheduler::from_seed(2);
        let budgets_a: Vec<u32> = (0..64).map(|_| a.window_budget(2)).collect();
        let budgets_b: Vec<u32> = (0..64).map(|_| b.window_budget(2)).collect();
        assert_ne!(budgets_a, budgets_b);
    }

    #[test]
    fn pick_is_round_robin_over_runnable() {
        let mut s = Scheduler::from_seed(0);
        let runnable = [3u32, 5];
        let picks: Vec<ThreadId> = (0..4).map(|_| s.pick(&runnable).unwrap()).collect();
        // Alternates between the two runnable ids (starting point seeded).
        assert_ne!(picks[0], picks[1]);
        assert_eq!(picks[0], picks[2]);
        assert_eq!(picks[1], picks[3]);
        assert_eq!(s.pick(&[]), None);
    }

    #[test]
    fn window_budget_respects_bounds() {
        let mut s = Scheduler::from_seed(9);
        assert_eq!(s.window_budget(0), 0);
        let mut seen_nonzero = false;
        for _ in 0..256 {
            let b = s.window_budget(5);
            assert!(b <= MAX_WINDOW_BUDGET);
            seen_nonzero |= b > 0;
        }
        assert!(seen_nonzero, "budget never left zero in 256 draws");
    }
}
