//! A `malloc`-style heap over the simulated address space.
//!
//! Two placement modes are supported, mirroring the two worlds of the
//! paper:
//!
//! * [`HeapMode::Packed`] — production `malloc`: blocks are packed
//!   tightly within mapped pages, so a buffer overflow **within the same
//!   page does not fault**. This is the regime where the paper argues its
//!   *stateful* table-based checking beats signal-handler probing (§8).
//! * [`HeapMode::Guarded`] — electric-fence placement: every block ends
//!   exactly at a page boundary with an inaccessible guard page after it,
//!   so the first out-of-bounds byte faults. The fault injector uses this
//!   to discover required array sizes adaptively (§4.1: "we use hardware
//!   memory protection to make sure that an access … generates a memory
//!   segmentation fault").
//!
//! All allocations are recorded in a block table, which is exactly the
//! "internal table" the robustness wrapper consults for stateful boundary
//! checks (§5.1).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::mem::{AddressSpace, Protection, PAGE_SIZE};
use crate::Addr;

/// Allocation placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapMode {
    /// Pack blocks tightly (production allocator behavior).
    Packed,
    /// Electric-fence placement: block end coincides with a page end and a
    /// guard page follows.
    Guarded,
}

/// Metadata for one allocated (or freed) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapBlock {
    /// Start address of the usable region.
    pub base: Addr,
    /// Usable size in bytes as requested by the caller.
    pub size: u32,
    /// Whether the block has been freed. Freed blocks are kept in the
    /// table (their pages are revoked) so double-frees can be diagnosed.
    pub free: bool,
}

/// Errors surfaced by the allocator itself (not simulated faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The heap region is exhausted.
    OutOfMemory,
    /// `free`/`realloc` was handed a pointer that is not an allocated
    /// block start. Real glibc aborts the process on this; the simulated
    /// libc converts this into [`crate::SimFault::Abort`].
    InvalidPointer {
        /// The offending pointer value.
        addr: Addr,
    },
    /// `free` was handed an already-freed block (double free).
    DoubleFree {
        /// The offending pointer value.
        addr: Addr,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory => write!(f, "out of memory"),
            HeapError::InvalidPointer { addr } => {
                write!(f, "free(): invalid pointer {addr:#010x}")
            }
            HeapError::DoubleFree { addr } => write!(f, "free(): double free {addr:#010x}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// The heap allocator.
///
/// `Clone` is cheap: the block table is `Arc`-shared (copy-on-write via
/// [`Arc::make_mut`]) and every other field is a few words, so a world
/// snapshot shares the table until the child allocates or frees.
#[derive(Debug, Clone)]
pub struct Heap {
    base: Addr,
    limit: Addr,
    /// Bump cursor for fresh page ranges.
    next_page: Addr,
    /// Cursor inside the current packed page range.
    packed_cursor: Option<(Addr, u32)>, // (region start, bytes used)
    mode: HeapMode,
    blocks: Arc<BTreeMap<Addr, HeapBlock>>,
    /// Total bytes handed out and not yet freed.
    live_bytes: u64,
}

const PACKED_REGION_PAGES: u32 = 16;
const ALIGN: u32 = 8;

impl Heap {
    /// A heap managing `[base, limit)` in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned or the range is empty.
    pub fn new(base: Addr, limit: Addr, mode: HeapMode) -> Self {
        assert_eq!(base % PAGE_SIZE, 0, "heap base must be page aligned");
        assert!(base < limit, "heap range must be non-empty");
        Heap {
            base,
            limit,
            next_page: base,
            packed_cursor: None,
            mode,
            blocks: Arc::new(BTreeMap::new()),
            live_bytes: 0,
        }
    }

    /// A copy sharing no block-table storage with `self` (the reference
    /// deep-copy containment path; plain `clone()` is copy-on-write).
    pub fn deep_clone(&self) -> Heap {
        let mut h = self.clone();
        h.blocks = Arc::new((*self.blocks).clone());
        h
    }

    /// The placement mode.
    pub fn mode(&self) -> HeapMode {
        self.mode
    }

    /// Switch placement modes (affects future allocations only).
    pub fn set_mode(&mut self, mode: HeapMode) {
        self.mode = mode;
        if mode == HeapMode::Guarded {
            self.packed_cursor = None;
        }
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Allocate `size` bytes (zero-size allocations are legal and receive
    /// a distinct, inaccessible-after pointer). Pages are mapped
    /// read-write.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if the heap range is exhausted.
    pub fn malloc(&mut self, mem: &mut AddressSpace, size: u32) -> Result<Addr, HeapError> {
        self.alloc_with_prot(mem, size, Protection::ReadWrite)
    }

    /// Allocate with explicit page protection. The fault injector uses
    /// this to create read-only and write-only test arrays.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if the heap range is exhausted.
    pub fn alloc_with_prot(
        &mut self,
        mem: &mut AddressSpace,
        size: u32,
        prot: Protection,
    ) -> Result<Addr, HeapError> {
        let addr = match self.mode {
            HeapMode::Guarded => self.place_guarded(mem, size, prot)?,
            HeapMode::Packed => {
                if prot == Protection::ReadWrite {
                    self.place_packed(mem, size)?
                } else {
                    // Non-RW blocks need their own pages regardless of mode.
                    self.place_guarded(mem, size, prot)?
                }
            }
        };
        Arc::make_mut(&mut self.blocks).insert(
            addr,
            HeapBlock {
                base: addr,
                size,
                free: false,
            },
        );
        self.live_bytes += u64::from(size);
        Ok(addr)
    }

    fn take_pages(&mut self, pages: u32) -> Result<Addr, HeapError> {
        let bytes = pages.checked_mul(PAGE_SIZE).ok_or(HeapError::OutOfMemory)?;
        let start = self.next_page;
        let end = start.checked_add(bytes).ok_or(HeapError::OutOfMemory)?;
        if end > self.limit {
            return Err(HeapError::OutOfMemory);
        }
        self.next_page = end;
        Ok(start)
    }

    /// Guarded placement: block ends exactly at the end of its last page;
    /// the following page is left unmapped so the very first byte past the
    /// block faults.
    fn place_guarded(
        &mut self,
        mem: &mut AddressSpace,
        size: u32,
        prot: Protection,
    ) -> Result<Addr, HeapError> {
        let data_pages = size.div_ceil(PAGE_SIZE).max(1);
        // +1 page of gap that stays unmapped as the guard.
        let region = self.take_pages(data_pages + 1)?;
        mem.map(region, data_pages * PAGE_SIZE, prot);
        let end = region + data_pages * PAGE_SIZE;
        let addr = end - size;
        // Align down within the page if needed; keep end-alignment exact
        // when size is not 8-aligned by preferring fault-precision over
        // alignment (the injector never requires aligned test arrays).
        Ok(addr.max(region))
    }

    /// Packed placement: bump-allocate inside shared RW page regions.
    fn place_packed(&mut self, mem: &mut AddressSpace, size: u32) -> Result<Addr, HeapError> {
        let need = size.max(1).next_multiple_of(ALIGN);
        let region_bytes = PACKED_REGION_PAGES * PAGE_SIZE;
        if need > region_bytes {
            // Large allocation: give it its own pages (packed allocators
            // do this too), but without a guard gap.
            let pages = need.div_ceil(PAGE_SIZE);
            let region = self.take_pages(pages)?;
            mem.map(region, pages * PAGE_SIZE, Protection::ReadWrite);
            return Ok(region);
        }
        if let Some((region, used)) = self.packed_cursor {
            if used + need <= region_bytes {
                self.packed_cursor = Some((region, used + need));
                return Ok(region + used);
            }
        }
        let region = self.take_pages(PACKED_REGION_PAGES)?;
        mem.map(region, region_bytes, Protection::ReadWrite);
        self.packed_cursor = Some((region, need));
        Ok(region)
    }

    /// Free a block.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidPointer`] if `addr` is not a block start, or
    /// [`HeapError::DoubleFree`] if the block is already free — callers
    /// (the simulated `free`) convert these into aborts, like glibc's
    /// consistency checks.
    pub fn free(&mut self, mem: &mut AddressSpace, addr: Addr) -> Result<(), HeapError> {
        // Check before unsharing so a failed free never clones the table.
        let block = self
            .blocks
            .get(&addr)
            .ok_or(HeapError::InvalidPointer { addr })?;
        if block.free {
            return Err(HeapError::DoubleFree { addr });
        }
        let block = Arc::make_mut(&mut self.blocks).get_mut(&addr).unwrap();
        block.free = true;
        let size = block.size;
        self.live_bytes -= u64::from(size);
        // Revoke access so use-after-free faults. Guarded blocks own their
        // pages; packed blocks share pages with neighbors, so only whole
        // owned pages are revoked (authentic: packed use-after-free often
        // does NOT fault on real machines — the injector and the Ballista
        // suite rely on guarded placement to surface it).
        if self.mode == HeapMode::Guarded {
            let data_pages = size.div_ceil(PAGE_SIZE).max(1);
            let region_start = addr / PAGE_SIZE * PAGE_SIZE;
            mem.protect(region_start, data_pages * PAGE_SIZE, Protection::None);
        }
        Ok(())
    }

    /// Reallocate a block, preserving contents up to the smaller size.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] from lookup or allocation.
    pub fn realloc(
        &mut self,
        mem: &mut AddressSpace,
        addr: Addr,
        new_size: u32,
    ) -> Result<Addr, HeapError> {
        let block = *self
            .blocks
            .get(&addr)
            .ok_or(HeapError::InvalidPointer { addr })?;
        if block.free {
            return Err(HeapError::InvalidPointer { addr });
        }
        let new_addr = self.malloc(mem, new_size)?;
        let copy = block.size.min(new_size);
        if copy > 0 {
            // Both blocks are live RW memory; a fault here is a simulator
            // bug, not an application fault.
            let bytes = mem
                .read_bytes(addr, copy)
                .expect("realloc source must be readable");
            mem.write_bytes(new_addr, &bytes)
                .expect("realloc destination must be writable");
        }
        self.free(mem, addr)
            .expect("realloc source must be freeable");
        Ok(new_addr)
    }

    /// The live block containing `addr`, if any — the wrapper's stateful
    /// boundary check (§5.1: "the wrapper consults its table to locate the
    /// memory block that contains the buffer").
    pub fn block_containing(&self, addr: Addr) -> Option<HeapBlock> {
        let (_, block) = self.blocks.range(..=addr).next_back()?;
        if !block.free && addr >= block.base && addr - block.base < block.size.max(1) {
            Some(*block)
        } else {
            None
        }
    }

    /// The block whose base is exactly `addr`, live or freed.
    pub fn block_at(&self, addr: Addr) -> Option<HeapBlock> {
        self.blocks.get(&addr).copied()
    }

    /// The block — live *or freed* — whose base is nearest at or below
    /// `addr`. This is the attribution query behind fault provenance:
    /// a faulting address just past a block's end, or inside a freed
    /// block's revoked pages, names that block even though
    /// [`Heap::block_containing`] (live blocks only) returns `None`.
    pub fn nearest_block_at_or_below(&self, addr: Addr) -> Option<HeapBlock> {
        self.blocks.range(..=addr).next_back().map(|(_, b)| *b)
    }

    /// Whether `addr` falls inside the heap's managed range.
    pub fn contains_range(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.limit
    }

    /// Iterate over all live blocks.
    pub fn live_blocks(&self) -> impl Iterator<Item = &HeapBlock> {
        self.blocks.values().filter(|b| !b.free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: HeapMode) -> (AddressSpace, Heap) {
        let mem = AddressSpace::new();
        let heap = Heap::new(0x1000_0000, 0x2000_0000, mode);
        (mem, heap)
    }

    #[test]
    fn guarded_block_faults_one_past_end() {
        let (mut mem, mut heap) = setup(HeapMode::Guarded);
        let p = heap.malloc(&mut mem, 44).unwrap();
        // All 44 bytes accessible…
        mem.write_bytes(p, &[0xab; 44]).unwrap();
        // …and byte 44 faults exactly (end-of-page placement).
        let err = mem.read_u8(p + 44).unwrap_err();
        assert_eq!(err.segv_addr(), Some(p + 44));
        assert_eq!(p % PAGE_SIZE, (PAGE_SIZE - 44) % PAGE_SIZE);
    }

    #[test]
    fn guarded_zero_size_block_faults_immediately() {
        let (mut mem, mut heap) = setup(HeapMode::Guarded);
        let p = heap.malloc(&mut mem, 0).unwrap();
        let err = mem.read_u8(p).unwrap_err();
        assert_eq!(err.segv_addr(), Some(p));
    }

    #[test]
    fn packed_blocks_share_pages() {
        let (mut mem, mut heap) = setup(HeapMode::Packed);
        let a = heap.malloc(&mut mem, 16).unwrap();
        let b = heap.malloc(&mut mem, 16).unwrap();
        assert_eq!(b, a + 16);
        // Overflowing `a` by a few bytes does NOT fault (same page)…
        assert!(mem.write_bytes(a, &[1; 20]).is_ok());
        // …but the block table knows the true bounds.
        assert_eq!(heap.block_containing(a + 8).unwrap().base, a);
        assert_eq!(heap.block_containing(a + 17).unwrap().base, b);
    }

    #[test]
    fn free_and_double_free() {
        let (mut mem, mut heap) = setup(HeapMode::Guarded);
        let p = heap.malloc(&mut mem, 100).unwrap();
        heap.free(&mut mem, p).unwrap();
        assert_eq!(
            heap.free(&mut mem, p),
            Err(HeapError::DoubleFree { addr: p })
        );
        assert_eq!(
            heap.free(&mut mem, 0x123),
            Err(HeapError::InvalidPointer { addr: 0x123 })
        );
        // Use-after-free faults in guarded mode.
        assert!(mem.read_u8(p).is_err());
    }

    #[test]
    fn block_containing_respects_bounds() {
        let (mut mem, mut heap) = setup(HeapMode::Guarded);
        let p = heap.malloc(&mut mem, 32).unwrap();
        assert_eq!(heap.block_containing(p).unwrap().size, 32);
        assert_eq!(heap.block_containing(p + 31).unwrap().size, 32);
        assert!(heap.block_containing(p + 32).is_none());
        heap.free(&mut mem, p).unwrap();
        assert!(heap.block_containing(p).is_none());
    }

    #[test]
    fn nearest_block_at_or_below_attributes_overruns_and_freed_blocks() {
        let (mut mem, mut heap) = setup(HeapMode::Guarded);
        let a = heap.malloc(&mut mem, 32).unwrap();
        let b = heap.malloc(&mut mem, 16).unwrap();
        assert!(b > a);

        // One past `a`'s end: no containing block, but attribution works.
        assert!(heap.block_containing(a + 32).is_none());
        assert_eq!(heap.nearest_block_at_or_below(a + 32).unwrap().base, a);
        // Below every block: nothing to attribute.
        assert!(heap.nearest_block_at_or_below(a - 1).is_none());

        // Freed blocks stay attributable (use-after-free provenance).
        heap.free(&mut mem, b).unwrap();
        let hit = heap.nearest_block_at_or_below(b + 4).unwrap();
        assert_eq!(hit.base, b);
        assert!(hit.free);
    }

    #[test]
    fn realloc_preserves_contents() {
        let (mut mem, mut heap) = setup(HeapMode::Packed);
        let p = heap.malloc(&mut mem, 8).unwrap();
        mem.write_bytes(p, b"abcdefgh").unwrap();
        let q = heap.realloc(&mut mem, p, 16).unwrap();
        assert_eq!(mem.read_bytes(q, 8).unwrap(), b"abcdefgh");
        assert!(heap.block_at(p).unwrap().free);
        assert_eq!(heap.block_containing(q).unwrap().size, 16);
    }

    #[test]
    fn readonly_allocation() {
        let (mut mem, mut heap) = setup(HeapMode::Packed);
        let p = heap
            .alloc_with_prot(&mut mem, 64, Protection::ReadOnly)
            .unwrap();
        assert!(mem.read_u8(p).is_ok());
        assert!(mem.write_u8(p, 1).is_err());
    }

    #[test]
    fn live_bytes_accounting() {
        let (mut mem, mut heap) = setup(HeapMode::Packed);
        let p = heap.malloc(&mut mem, 100).unwrap();
        let _q = heap.malloc(&mut mem, 50).unwrap();
        assert_eq!(heap.live_bytes(), 150);
        heap.free(&mut mem, p).unwrap();
        assert_eq!(heap.live_bytes(), 50);
        assert_eq!(heap.live_blocks().count(), 1);
    }

    #[test]
    fn out_of_memory() {
        let mut mem = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 0x1000_0000 + 8 * PAGE_SIZE, HeapMode::Guarded);
        // Each guarded alloc takes 2 pages; the 5th fails.
        for _ in 0..4 {
            heap.malloc(&mut mem, 8).unwrap();
        }
        assert_eq!(heap.malloc(&mut mem, 8), Err(HeapError::OutOfMemory));
    }

    #[test]
    fn large_packed_allocation_gets_own_pages() {
        let (mut mem, mut heap) = setup(HeapMode::Packed);
        let big = PACKED_REGION_PAGES * PAGE_SIZE + 1;
        let p = heap.malloc(&mut mem, big).unwrap();
        assert_eq!(p % PAGE_SIZE, 0);
        assert!(mem.write_u8(p + big - 1, 1).is_ok());
    }
}
