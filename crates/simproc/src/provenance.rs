//! Fault provenance: attributing a faulting address to its memory
//! surroundings.
//!
//! A bare `SIGSEGV at 0x10002fd8` tells an operator very little. The
//! simulated machine knows much more at the instant of the fault: the
//! page-table context of the address ([`PageRun`]) and the heap block
//! the access most plausibly belongs to. [`FaultSite`] bundles both
//! into one record — "the write landed on the guard page two bytes
//! past the 44-byte block at `0x10002fd4`" — which is what
//! `healers explain` prints for every crashing test case.
//!
//! Attribution heuristics, in order:
//!
//! 1. a block (live or freed) *containing* the address — in-bounds
//!    faults on protected pages, and use-after-free on revoked pages;
//! 2. the nearest block ending at or below the address, provided the
//!    fault is less than one page past its end — overrun attribution.
//!    When that page is additionally inaccessible and the block is
//!    live, the fault is flagged as a **guard-page overrun**: the
//!    electric-fence placement did its job (§4.1).
//!
//! Addresses farther from any block (e.g. the canonical
//! `0xdead_0000` invalid pointer) get no block attribution at all —
//! naming a block megabytes away would mislead more than it informs.

use std::fmt;

use crate::heap::{Heap, HeapBlock};
use crate::mem::{AccessKind, PageRun, Protection, SimFault, PAGE_SIZE};
use crate::proc::SimProcess;
use crate::Addr;

/// Everything the simulator can say about one faulting access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// The faulting address.
    pub addr: Addr,
    /// Whether the faulting access was a read or a write.
    pub access: AccessKind,
    /// Page-table context of the address.
    pub run: PageRun,
    /// The heap block the access is attributed to, if any.
    pub block: Option<HeapBlock>,
    /// Whether this is an overrun of a live block onto an
    /// inaccessible page — the electric-fence signature.
    pub guard_overrun: bool,
}

impl FaultSite {
    /// Resolve provenance for a fault against the process image it
    /// occurred in. `None` for faults that carry no address
    /// (arithmetic exceptions, aborts, fuel exhaustion).
    pub fn resolve(fault: &SimFault, proc: &SimProcess) -> Option<FaultSite> {
        let SimFault::Segv { addr, access } = fault else {
            return None;
        };
        Some(FaultSite::resolve_addr(*addr, *access, proc))
    }

    /// Abstract this fault into its address-free [`CoverageSite`] — the
    /// coverage-map key used by the sequence fuzzer. Two faults with
    /// the same site are "the same kind of crash" regardless of where
    /// the allocator happened to place the blocks involved.
    pub fn coverage_site(&self) -> CoverageSite {
        CoverageSite {
            access: self.access,
            prot: self.run.prot,
            preempted: false,
            attribution: match &self.block {
                _ if self.guard_overrun => BlockAttribution::GuardOverrun,
                Some(b) if b.free => BlockAttribution::Freed,
                Some(b) if self.addr >= b.base + b.size => BlockAttribution::PastLive,
                Some(_) => BlockAttribution::Live,
                None if self.addr < PAGE_SIZE => BlockAttribution::NullPage,
                None => BlockAttribution::None,
            },
        }
    }

    /// Resolve provenance for a known faulting address.
    pub fn resolve_addr(addr: Addr, access: AccessKind, proc: &SimProcess) -> FaultSite {
        let run = proc.mem.page_run(addr);
        let block = attribute_block(&proc.heap, addr);
        let inaccessible = matches!(run.prot, None | Some(Protection::None));
        let guard_overrun =
            inaccessible && block.is_some_and(|b| !b.free && addr >= b.base + b.size);
        FaultSite {
            addr,
            access,
            run,
            block,
            guard_overrun,
        }
    }
}

/// How a [`CoverageSite`] attributes the faulting address to the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockAttribution {
    /// No nearby block: a wild or otherwise unattributable address.
    None,
    /// No nearby block and the address is on the zero page: the
    /// canonical null-pointer dereference.
    NullPage,
    /// Inside a live block (a protection fault, not an overrun).
    Live,
    /// Past the end of a live block, but the landing page is
    /// accessible enough that it is not a guard-page catch.
    PastLive,
    /// Inside (or just past) a freed block: use-after-free.
    Freed,
    /// Overrun of a live block onto an inaccessible page — the
    /// electric-fence signature.
    GuardOverrun,
}

impl BlockAttribution {
    /// Stable lowercase token, used in coverage-map renderings.
    pub fn label(self) -> &'static str {
        match self {
            BlockAttribution::None => "wild",
            BlockAttribution::NullPage => "null",
            BlockAttribution::Live => "live-block",
            BlockAttribution::PastLive => "past-live",
            BlockAttribution::Freed => "freed-block",
            BlockAttribution::GuardOverrun => "guard-overrun",
        }
    }
}

/// An address-free abstraction of a [`FaultSite`]: what kind of access
/// hit what kind of page, attributed to what kind of block. This is
/// the fuzzer's coverage signal — it is **stable across heap layouts**
/// (it contains no addresses or sizes), so re-running a sequence after
/// a snapshot rollback, or under a different allocation order, yields
/// the identical site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoverageSite {
    /// Whether the faulting access was a read or a write.
    pub access: AccessKind,
    /// Protection of the landing page run (`None` = unmapped hole).
    pub prot: Option<Protection>,
    /// Heap attribution class.
    pub attribution: BlockAttribution,
    /// Schedule-edge component: `true` when the faulting call was
    /// preempted inside its check-vs-call window (or the fault occurred
    /// *in* such a window). A fault that only reproduces with this flag
    /// set is a TOCTOU finding — single-threaded execution cannot
    /// express it. Kept last so site ordering is still dominated by the
    /// access/protection/attribution triple.
    pub preempted: bool,
}

impl fmt::Display for CoverageSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let access = match self.access {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        let prot = match self.prot {
            None => "unmapped",
            Some(Protection::None) => "inaccessible",
            Some(Protection::ReadOnly) => "read-only",
            Some(Protection::ReadWrite) => "read-write",
            Some(Protection::WriteOnly) => "write-only",
        };
        write!(f, "{access}:{prot}:{}", self.attribution.label())?;
        if self.preempted {
            write!(f, ":preempted")?;
        }
        Ok(())
    }
}

/// The block a faulting address belongs to: containing (live or
/// freed), or overrun by less than a page.
fn attribute_block(heap: &Heap, addr: Addr) -> Option<HeapBlock> {
    let block = heap.nearest_block_at_or_below(addr)?;
    let end = block.base + block.size;
    let contains = addr - block.base < block.size.max(1);
    let overruns = addr >= end && addr - end < PAGE_SIZE;
    (contains || overruns).then_some(block)
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.access {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        write!(f, "{what} fault at {:#010x} in {}", self.addr, self.run)?;
        let Some(block) = &self.block else {
            return Ok(());
        };
        let end = block.base + block.size;
        if self.guard_overrun {
            write!(
                f,
                "; guard page after live block {:#010x}+{}B — overrun by {} byte(s)",
                block.base,
                block.size,
                self.addr - end + 1
            )
        } else if self.addr < end || block.size == 0 && self.addr == block.base {
            write!(
                f,
                "; inside {} block {:#010x}+{}B at offset {}",
                if block.free { "freed" } else { "live" },
                block.base,
                block.size,
                self.addr - block.base
            )
        } else {
            write!(
                f,
                "; {} byte(s) past {} block {:#010x}+{}B",
                self.addr - end + 1,
                if block.free { "freed" } else { "live" },
                block.base,
                block.size
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapMode;

    fn guarded() -> SimProcess {
        let mut p = SimProcess::new();
        p.heap.set_mode(HeapMode::Guarded);
        p
    }

    #[test]
    fn guard_page_overrun_names_run_and_block() {
        let mut proc = guarded();
        let p = proc.heap_alloc(44).unwrap();
        let fault = proc.mem.read_u8(p + 44).unwrap_err();
        let site = FaultSite::resolve(&fault, &proc).unwrap();
        assert_eq!(site.addr, p + 44);
        assert_eq!(site.access, AccessKind::Read);
        assert_eq!(site.run.prot, None);
        assert_eq!(site.block.unwrap().base, p);
        assert!(site.guard_overrun);
        let line = site.to_string();
        assert!(line.contains("unmapped run"), "{line}");
        assert!(line.contains("guard page after live block"), "{line}");
        assert!(line.contains("overrun by 1 byte(s)"), "{line}");
    }

    #[test]
    fn protection_fault_inside_a_block_is_not_an_overrun() {
        let mut proc = guarded();
        let p = proc
            .heap
            .alloc_with_prot(&mut proc.mem, 64, Protection::ReadOnly)
            .unwrap();
        let fault = proc.mem.write_u8(p + 3, 1).unwrap_err();
        let site = FaultSite::resolve(&fault, &proc).unwrap();
        assert_eq!(site.run.prot, Some(Protection::ReadOnly));
        assert!(!site.guard_overrun);
        let line = site.to_string();
        assert!(line.contains("write fault"), "{line}");
        assert!(line.contains("read-only run"), "{line}");
        assert!(line.contains("inside live block"), "{line}");
        assert!(line.contains("offset 3"), "{line}");
    }

    #[test]
    fn use_after_free_names_the_freed_block() {
        let mut proc = guarded();
        let p = proc.heap_alloc(100).unwrap();
        proc.heap_free(p).unwrap();
        let fault = proc.mem.read_u8(p + 10).unwrap_err();
        let site = FaultSite::resolve(&fault, &proc).unwrap();
        assert!(site.block.unwrap().free);
        assert!(!site.guard_overrun, "freed blocks are not guard overruns");
        assert!(site.to_string().contains("inside freed block"));
    }

    #[test]
    fn far_away_addresses_get_no_block_attribution() {
        let mut proc = guarded();
        let _ = proc.heap_alloc(16).unwrap();
        let fault = proc.mem.read_u8(crate::proc::INVALID_PTR).unwrap_err();
        let site = FaultSite::resolve(&fault, &proc).unwrap();
        assert_eq!(site.block, None);
        assert_eq!(site.run.prot, None);
        // Null-pointer faults likewise name no block.
        let null = proc.mem.read_u8(0).unwrap_err();
        let site = FaultSite::resolve(&null, &proc).unwrap();
        assert_eq!(site.block, None);
        assert_eq!(site.run.start, 0);
    }

    #[test]
    fn coverage_sites_abstract_away_addresses() {
        let mut proc = guarded();
        let a = proc.heap_alloc(44).unwrap();
        let b = proc.heap_alloc(44).unwrap();
        assert_ne!(a, b);
        // Two overruns of different blocks at different addresses are
        // the same coverage site.
        let fa = proc.mem.read_u8(a + 44).unwrap_err();
        let fb = proc.mem.read_u8(b + 44).unwrap_err();
        let sa = FaultSite::resolve(&fa, &proc).unwrap().coverage_site();
        let sb = FaultSite::resolve(&fb, &proc).unwrap().coverage_site();
        assert_eq!(sa, sb);
        assert_eq!(sa.attribution, BlockAttribution::GuardOverrun);
        assert_eq!(sa.to_string(), "read:unmapped:guard-overrun");
        // A null write is its own site.
        let null = proc.mem.write_u8(0, 1).unwrap_err();
        let site = FaultSite::resolve(&null, &proc).unwrap().coverage_site();
        assert_eq!(site.attribution, BlockAttribution::NullPage);
        assert_eq!(site.to_string(), "write:unmapped:null");
        // Use-after-free names the freed-block class.
        proc.heap_free(a).unwrap();
        let uaf = proc.mem.read_u8(a + 3).unwrap_err();
        let site = FaultSite::resolve(&uaf, &proc).unwrap().coverage_site();
        assert_eq!(site.attribution, BlockAttribution::Freed);
        // Wild pointers get no block attribution.
        let wild = proc.mem.read_u8(crate::proc::INVALID_PTR).unwrap_err();
        let site = FaultSite::resolve(&wild, &proc).unwrap().coverage_site();
        assert_eq!(site.attribution, BlockAttribution::None);
        assert_eq!(site.to_string(), "read:unmapped:wild");
    }

    #[test]
    fn addressless_faults_have_no_provenance() {
        let proc = SimProcess::new();
        assert_eq!(FaultSite::resolve(&SimFault::Fpe, &proc), None);
        assert_eq!(FaultSite::resolve(&SimFault::FuelExhausted, &proc), None);
        assert_eq!(
            FaultSite::resolve(&SimFault::Abort { reason: "x".into() }, &proc),
            None
        );
    }
}
