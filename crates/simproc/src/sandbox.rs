//! Fault containment: run a call against a cloned process image.
//!
//! The paper's fault injector "spawns a child process … the child sets a
//! signal handler for segmentation faults and then calls the function"
//! (§4.1), because some faults cannot be intercepted in-process and a
//! crashing call must never corrupt the injector. The simulation gets the
//! same guarantee by cloning the world before the call: whatever the call
//! does — partial writes, allocator corruption, a fault — happens to the
//! clone only.

use crate::mem::SimFault;
use crate::value::SimValue;

/// The raw result of a sandboxed call, before robustness classification.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildResult {
    /// The call returned normally with this value.
    Returned(SimValue),
    /// The call died with a fault (segv / fpe / abort / fuel exhaustion).
    Faulted(SimFault),
}

impl ChildResult {
    /// The returned value, if the call completed.
    pub fn value(&self) -> Option<SimValue> {
        match self {
            ChildResult::Returned(v) => Some(*v),
            ChildResult::Faulted(_) => None,
        }
    }

    /// The fault, if the call died.
    pub fn fault(&self) -> Option<&SimFault> {
        match self {
            ChildResult::Faulted(f) => Some(f),
            ChildResult::Returned(_) => None,
        }
    }
}

/// Run `call` against a clone of `world`, returning the outcome together
/// with the child image (so the caller can inspect `errno`, output
/// buffers, or the fault site). The parent `world` is untouched.
pub fn run_in_child<W, F>(world: &W, call: F) -> (ChildResult, W)
where
    W: Clone,
    F: FnOnce(&mut W) -> Result<SimValue, SimFault>,
{
    let mut child = world.clone();
    let result = match call(&mut child) {
        Ok(v) => ChildResult::Returned(v),
        Err(f) => ChildResult::Faulted(f),
    };
    (result, child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::SimProcess;

    #[test]
    fn parent_survives_child_crash() {
        let mut parent = SimProcess::new();
        let buf = parent.heap_alloc(4).unwrap();
        parent.mem.write_u32(buf, 7).unwrap();

        let (result, child) = run_in_child(&parent, |p: &mut SimProcess| {
            // Scribble, then crash.
            p.mem.write_u32(buf, 999)?;
            p.mem.read_u8(0)?; // null deref
            Ok(SimValue::Void)
        });

        assert!(matches!(
            result,
            ChildResult::Faulted(SimFault::Segv { addr: 0, .. })
        ));
        // Child saw the scribble; parent did not.
        assert_eq!(child.mem.read_u32(buf).unwrap(), 999);
        assert_eq!(parent.mem.read_u32(buf).unwrap(), 7);
    }

    #[test]
    fn successful_call_returns_value() {
        let parent = SimProcess::new();
        let (result, child) = run_in_child(&parent, |p: &mut SimProcess| {
            p.set_errno(22);
            Ok(SimValue::Int(-1))
        });
        assert_eq!(result.value(), Some(SimValue::Int(-1)));
        assert_eq!(child.errno(), 22);
        assert!(result.fault().is_none());
    }
}
