//! Fault containment: run a call against a snapshot of the process image.
//!
//! The paper's fault injector "spawns a child process … the child sets a
//! signal handler for segmentation faults and then calls the function"
//! (§4.1), because some faults cannot be intercepted in-process and a
//! crashing call must never corrupt the injector. The simulation gets the
//! same guarantee by snapshotting the world before the call: whatever the
//! call does — partial writes, allocator corruption, a fault — happens to
//! the snapshot only.
//!
//! Real HEALERS paid `fork()`'s copy-on-write price rather than a full
//! copy; so does this module. [`WorldSnapshot::snapshot`] is O(1) —
//! page frames and tables are reference-shared and private copies fault
//! in on first write — and discarding the child ("restore") costs only
//! the dirty pages it actually touched. The pre-CoW behaviour survives
//! as [`Containment::DeepClone`] / [`WorldSnapshot::deep_clone`], kept
//! as the reference implementation for differential tests and the
//! snapshot benchmark baseline.

use crate::mem::{CowStats, SimFault};
use crate::proc::SimProcess;
use crate::value::SimValue;

/// The raw result of a sandboxed call, before robustness classification.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildResult {
    /// The call returned normally with this value.
    Returned(SimValue),
    /// The call died with a fault (segv / fpe / abort / fuel exhaustion).
    Faulted(SimFault),
}

impl ChildResult {
    /// The returned value, if the call completed.
    pub fn value(&self) -> Option<SimValue> {
        match self {
            ChildResult::Returned(v) => Some(*v),
            ChildResult::Faulted(_) => None,
        }
    }

    /// The fault, if the call died.
    pub fn fault(&self) -> Option<&SimFault> {
        match self {
            ChildResult::Faulted(f) => Some(f),
            ChildResult::Returned(_) => None,
        }
    }
}

/// A world that supports cheap copy-on-write snapshots for fault
/// containment, alongside the reference deep-copy path.
///
/// Implemented by [`SimProcess`] and by `healers-libc`'s `World`; any
/// wrapper type that contains one of those can forward to it.
pub trait WorldSnapshot: Clone {
    /// An O(1) copy-on-write snapshot of the world. Writes to either
    /// image after the split fault in private page copies; neither image
    /// can observe the other's mutations.
    fn snapshot(&self) -> Self;

    /// A full deep copy sharing no storage with `self` — the pre-CoW
    /// containment behaviour, kept for differential testing and as the
    /// benchmark baseline.
    fn deep_clone(&self) -> Self;

    /// The cumulative copy-on-write counters of this image. A child's
    /// divergence cost is `child.cow_stats().delta_since(&parent.cow_stats())`.
    fn cow_stats(&self) -> CowStats;
}

impl WorldSnapshot for SimProcess {
    fn snapshot(&self) -> Self {
        let mut child = self.clone();
        child.mem = self.mem.snapshot();
        child
    }

    fn deep_clone(&self) -> Self {
        let mut child = self.clone();
        child.mem = self.mem.deep_clone();
        child.heap = self.heap.deep_clone();
        child
    }

    fn cow_stats(&self) -> CowStats {
        self.mem.cow_stats()
    }
}

/// How [`run_in_child_with`] captures the parent image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Containment {
    /// Copy-on-write snapshot: O(1) capture, O(dirty pages) divergence.
    #[default]
    Cow,
    /// Full deep clone of the world per call — the pre-snapshot
    /// behaviour, kept for differential testing and benchmarking.
    DeepClone,
}

/// Run `call` against a copy-on-write snapshot of `world`, returning the
/// outcome together with the child image (so the caller can inspect
/// `errno`, output buffers, the fault site, or the CoW counters). The
/// parent `world` is untouched: keeping it *is* the restore, and costs
/// only the dirty pages the child faulted in.
pub fn run_in_child<W, F>(world: &W, call: F) -> (ChildResult, W)
where
    W: WorldSnapshot,
    F: FnOnce(&mut W) -> Result<SimValue, SimFault>,
{
    run_in_child_with(world, Containment::Cow, call)
}

/// [`run_in_child`] with an explicit containment mechanism.
pub fn run_in_child_with<W, F>(world: &W, containment: Containment, call: F) -> (ChildResult, W)
where
    W: WorldSnapshot,
    F: FnOnce(&mut W) -> Result<SimValue, SimFault>,
{
    let mut child = match containment {
        Containment::Cow => world.snapshot(),
        Containment::DeepClone => world.deep_clone(),
    };
    let result = match call(&mut child) {
        Ok(v) => ChildResult::Returned(v),
        Err(f) => ChildResult::Faulted(f),
    };
    (result, child)
}

/// Discard a child image, returning the copy-on-write activity that was
/// attributable to it (snapshot taken, pages shared at the split, private
/// pages faulted in, table unsharings). Dropping the child frees exactly
/// its private copies — the O(dirty pages) restore.
pub fn rollback<W: WorldSnapshot>(parent: &W, child: W) -> CowStats {
    let delta = child.cow_stats().delta_since(&parent.cow_stats());
    drop(child);
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::SimProcess;

    #[test]
    fn parent_survives_child_crash() {
        let mut parent = SimProcess::new();
        let buf = parent.heap_alloc(4).unwrap();
        parent.mem.write_u32(buf, 7).unwrap();

        let (result, child) = run_in_child(&parent, |p: &mut SimProcess| {
            // Scribble, then crash.
            p.mem.write_u32(buf, 999)?;
            p.mem.read_u8(0)?; // null deref
            Ok(SimValue::Void)
        });

        assert!(matches!(
            result,
            ChildResult::Faulted(SimFault::Segv { addr: 0, .. })
        ));
        // Child saw the scribble; parent did not.
        assert_eq!(child.mem.read_u32(buf).unwrap(), 999);
        assert_eq!(parent.mem.read_u32(buf).unwrap(), 7);
    }

    #[test]
    fn cow_and_deep_clone_containment_agree() {
        let mut parent = SimProcess::new();
        let buf = parent.heap_alloc(16).unwrap();
        parent.mem.write_bytes(buf, b"0123456789abcdef").unwrap();

        let run = |containment| {
            let (result, child) = run_in_child_with(&parent, containment, |p: &mut SimProcess| {
                p.mem.write_bytes(buf, b"XY")?;
                p.mem.read_u8(0xdead_0000)?;
                Ok(SimValue::Void)
            });
            (result, child.mem.read_bytes(buf, 16).unwrap())
        };
        let (cow_result, cow_bytes) = run(Containment::Cow);
        let (deep_result, deep_bytes) = run(Containment::DeepClone);
        assert_eq!(cow_result, deep_result);
        assert_eq!(cow_bytes, deep_bytes);
        // Parent untouched either way.
        assert_eq!(parent.mem.read_bytes(buf, 16).unwrap(), b"0123456789abcdef");
    }

    #[test]
    fn rollback_reports_dirty_page_cost() {
        let mut parent = SimProcess::new();
        let buf = parent.heap_alloc(4).unwrap();
        parent.mem.write_u32(buf, 7).unwrap();

        let (_, child) = run_in_child(&parent, |p: &mut SimProcess| {
            p.mem.write_u32(buf, 999)?; // dirties exactly one page
            Ok(SimValue::Void)
        });
        let cost = rollback(&parent, child);
        assert_eq!(cost.snapshots, 1);
        assert_eq!(cost.pages_copied, 1);
        assert!(cost.pages_shared as usize >= parent.mem.mapped_pages());

        // An untouched child rolls back with zero copied pages.
        let (_, child) = run_in_child(&parent, |_| Ok(SimValue::Void));
        assert_eq!(rollback(&parent, child).pages_copied, 0);
    }

    #[test]
    fn successful_call_returns_value() {
        let parent = SimProcess::new();
        let (result, child) = run_in_child(&parent, |p: &mut SimProcess| {
            p.set_errno(22);
            Ok(SimValue::Int(-1))
        });
        assert_eq!(result.value(), Some(SimValue::Int(-1)));
        assert_eq!(child.errno(), 22);
        assert!(result.fault().is_none());
    }
}
