//! Sparse paged address space with per-page protection.
//!
//! Page frames are copy-on-write: [`AddressSpace::snapshot`] is O(1) (it
//! bumps reference counts on a persistent page table), writes fault
//! private page copies in on demand, and discarding a snapshot costs
//! O(dirty pages) — the same economics as the `fork()` the paper's fault
//! injectors rely on for cheap containment.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::Addr;

/// Page size of the simulated machine, in bytes (matching i386 Linux).
pub const PAGE_SIZE: u32 = 4096;

/// Per-page protection bits, mirroring `mprotect` modes. Write-only pages
/// exist on the simulated machine because the paper's type hierarchy
/// distinguishes `WONLY_FIXED[s]` regions (real hardware rarely supports
/// them, but the abstraction is exactly what the fault injector probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protection {
    /// Mapped but inaccessible (like `PROT_NONE`); used for guard pages.
    None,
    /// Readable only.
    ReadOnly,
    /// Readable and writable.
    ReadWrite,
    /// Writable only.
    WriteOnly,
}

impl Protection {
    /// Whether reads are permitted.
    pub fn allows_read(self) -> bool {
        matches!(self, Protection::ReadOnly | Protection::ReadWrite)
    }

    /// Whether writes are permitted.
    pub fn allows_write(self) -> bool {
        matches!(self, Protection::ReadWrite | Protection::WriteOnly)
    }
}

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A failure raised by the simulated machine — the analogue of a fatal
/// signal delivered to a real process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFault {
    /// Segmentation fault: an access to `addr` was not permitted. Carries
    /// the faulting address — the paper's adaptive generators use it to
    /// decide which argument caused a crash and how to adjust it.
    Segv {
        /// The address whose access faulted.
        addr: Addr,
        /// Whether the faulting access was a read or a write.
        access: AccessKind,
    },
    /// Arithmetic fault (SIGFPE), e.g. integer division by zero.
    Fpe,
    /// The callee deliberately aborted (SIGABRT), e.g. glibc's heap
    /// consistency checks in `free`.
    Abort {
        /// Diagnostic printed by the aborting code.
        reason: String,
    },
    /// The fuel budget was exhausted — the deterministic analogue of the
    /// paper's hang-detection timeout.
    FuelExhausted,
}

impl SimFault {
    /// The faulting address, if this is a segmentation fault.
    pub fn segv_addr(&self) -> Option<Addr> {
        match self {
            SimFault::Segv { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// Whether this fault is a hang (fuel exhaustion) rather than a crash.
    pub fn is_hang(&self) -> bool {
        matches!(self, SimFault::FuelExhausted)
    }

    /// Whether this fault is an abort.
    pub fn is_abort(&self) -> bool {
        matches!(self, SimFault::Abort { .. })
    }
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::Segv { addr, access } => {
                let what = match access {
                    AccessKind::Read => "read",
                    AccessKind::Write => "write",
                };
                write!(f, "segmentation fault ({what} at {addr:#010x})")
            }
            SimFault::Fpe => write!(f, "arithmetic exception"),
            SimFault::Abort { reason } => write!(f, "abort: {reason}"),
            SimFault::FuelExhausted => write!(f, "hang (fuel exhausted)"),
        }
    }
}

impl std::error::Error for SimFault {}

/// The all-zero page frame shared by every fresh mapping, like the
/// kernel's shared zero page: `map` never allocates or memsets a frame,
/// and the first write to such a page faults in a private copy.
fn zero_frame() -> Arc<[u8; PAGE_SIZE as usize]> {
    static ZERO: OnceLock<Arc<[u8; PAGE_SIZE as usize]>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0u8; PAGE_SIZE as usize]))
        .clone()
}

#[derive(Clone)]
struct Page {
    // Protection lives beside the frame (not inside it) so `protect`
    // never copies page contents.
    prot: Protection,
    data: Arc<[u8; PAGE_SIZE as usize]>,
}

impl Page {
    fn new(prot: Protection) -> Self {
        Page {
            prot,
            data: zero_frame(),
        }
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page {{ prot: {:?} }}", self.prot)
    }
}

/// Copy-on-write activity counters, carried by every [`AddressSpace`].
///
/// Counters only ever grow, and a snapshot inherits its parent's values,
/// so the work attributable to one snapshot's lifetime is the child
/// counter minus the parent counter at snapshot time
/// ([`CowStats::delta_since`]). All counts are deterministic for a given
/// operation sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Snapshots taken via [`AddressSpace::snapshot`].
    pub snapshots: u64,
    /// Pages shared (reference-counted, not copied) across all snapshots.
    pub pages_shared: u64,
    /// Private page frames faulted in by writes to shared frames —
    /// including first writes to the shared zero frame.
    pub pages_copied: u64,
    /// Page-table structure unsharings (one per diverging mapping
    /// operation after a snapshot; entries are pointer-sized).
    pub table_clones: u64,
}

impl CowStats {
    /// The activity since `base` was captured (field-wise saturating
    /// subtraction; a child's counters never trail its parent's).
    pub fn delta_since(&self, base: &CowStats) -> CowStats {
        CowStats {
            snapshots: self.snapshots.saturating_sub(base.snapshots),
            pages_shared: self.pages_shared.saturating_sub(base.pages_shared),
            pages_copied: self.pages_copied.saturating_sub(base.pages_copied),
            table_clones: self.table_clones.saturating_sub(base.table_clones),
        }
    }

    /// Accumulate another delta into this one.
    pub fn absorb(&mut self, other: &CowStats) {
        let CowStats {
            snapshots,
            pages_shared,
            pages_copied,
            table_clones,
        } = other;
        self.snapshots += snapshots;
        self.pages_shared += pages_shared;
        self.pages_copied += pages_copied;
        self.table_clones += table_clones;
    }
}

/// A maximal run of contiguous pages sharing one protection — or one
/// maximal unmapped hole — as reported by [`AddressSpace::page_run`].
/// This is the page-table context of a faulting address: "the store
/// landed in a 3-page read-only run" or "the load fell in the unmapped
/// hole after the last heap mapping".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRun {
    /// First byte of the run (page aligned).
    pub start: Addr,
    /// Number of pages in the run (at least 1).
    pub pages: u32,
    /// The run's protection; `None` for an unmapped hole.
    pub prot: Option<Protection>,
}

impl PageRun {
    /// Last byte of the run, inclusive (the exclusive end of a run
    /// touching the top of memory would not fit in 32 bits).
    pub fn last(&self) -> Addr {
        self.start + (self.pages * PAGE_SIZE - 1)
    }

    /// Whether `addr` falls inside the run.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr <= self.last()
    }

    /// A short human-readable description of the run's accessibility.
    pub fn describe_prot(&self) -> &'static str {
        match self.prot {
            None => "unmapped",
            Some(Protection::None) => "inaccessible",
            Some(Protection::ReadOnly) => "read-only",
            Some(Protection::ReadWrite) => "read-write",
            Some(Protection::WriteOnly) => "write-only",
        }
    }
}

impl fmt::Display for PageRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} run {:#010x}+{}p",
            self.describe_prot(),
            self.start,
            self.pages
        )
    }
}

/// A sparse, paged 32-bit address space with copy-on-write snapshots.
///
/// Page 0 is never mapped, so null-pointer dereferences fault exactly as on
/// a real Unix machine.
///
/// `Clone` is O(1): the page table and every frame are `Arc`-shared, and
/// mutation unshares lazily ([`Arc::make_mut`]) — the table structure on
/// the first mapping change, each 4 KiB frame on the first write to it.
/// Use [`AddressSpace::snapshot`] rather than `clone()` when the copy
/// models fault containment, so the [`CowStats`] telemetry records it.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    pages: Arc<BTreeMap<u32, Page>>,
    cow: CowStats,
}

fn page_of(addr: Addr) -> u32 {
    addr / PAGE_SIZE
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// An O(1) copy-on-write snapshot: both images share every page frame
    /// and the page table itself until one of them writes or remaps.
    /// The snapshot inherits the parent's [`CowStats`] plus a record of
    /// its own creation, so the total cost of its divergence is
    /// `child.cow_stats().delta_since(&parent.cow_stats())`.
    pub fn snapshot(&self) -> AddressSpace {
        let mut child = self.clone();
        child.cow.snapshots += 1;
        child.cow.pages_shared += self.pages.len() as u64;
        child
    }

    /// A full deep copy sharing no frames with `self` — the pre-CoW
    /// containment behaviour, kept as the reference implementation for
    /// differential tests and benchmarks.
    pub fn deep_clone(&self) -> AddressSpace {
        let pages: BTreeMap<u32, Page> = self
            .pages
            .iter()
            .map(|(&n, page)| {
                (
                    n,
                    Page {
                        prot: page.prot,
                        data: Arc::new(*page.data),
                    },
                )
            })
            .collect();
        AddressSpace {
            pages: Arc::new(pages),
            cow: self.cow,
        }
    }

    /// The copy-on-write activity counters accumulated so far.
    pub fn cow_stats(&self) -> CowStats {
        self.cow
    }

    /// The page table, unshared for mutation (counted as a table clone
    /// when a structure copy actually happens).
    fn pages_mut(&mut self) -> &mut BTreeMap<u32, Page> {
        if Arc::strong_count(&self.pages) > 1 {
            self.cow.table_clones += 1;
        }
        Arc::make_mut(&mut self.pages)
    }

    /// Map `len` bytes starting at `addr` (rounded out to page boundaries)
    /// with protection `prot`. Remapping an already-mapped page resets its
    /// contents to zero.
    ///
    /// # Panics
    ///
    /// Panics if the region would include page 0 (the null page) or wrap
    /// around the address space — both indicate a bug in the simulator.
    pub fn map(&mut self, addr: Addr, len: u32, prot: Protection) {
        assert!(len > 0, "cannot map an empty region");
        let first = page_of(addr);
        let last = page_of(
            addr.checked_add(len - 1)
                .expect("mapping wraps address space"),
        );
        assert!(first > 0, "cannot map the null page");
        let pages = self.pages_mut();
        for p in first..=last {
            pages.insert(p, Page::new(prot));
        }
    }

    /// Unmap all pages overlapping `[addr, addr+len)`.
    pub fn unmap(&mut self, addr: Addr, len: u32) {
        if len == 0 {
            return;
        }
        let first = page_of(addr);
        let last = page_of(addr + (len - 1));
        let pages = self.pages_mut();
        for p in first..=last {
            pages.remove(&p);
        }
    }

    /// Change the protection of all pages overlapping `[addr, addr+len)`.
    /// Pages that are not mapped are ignored. Protection lives in the
    /// page-table entry, not the frame, so this never copies page data.
    pub fn protect(&mut self, addr: Addr, len: u32, prot: Protection) {
        if len == 0 {
            return;
        }
        let first = page_of(addr);
        let last = page_of(addr + (len - 1));
        let pages = self.pages_mut();
        for p in first..=last {
            if let Some(page) = pages.get_mut(&p) {
                page.prot = prot;
            }
        }
    }

    /// Whether `addr` lies in a mapped page (regardless of protection).
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.pages.contains_key(&page_of(addr))
    }

    /// Non-faulting probe: whether one byte at `addr` is readable. This is
    /// the primitive behind the wrapper's *stateless* memory validation
    /// (the paper tests one byte per page via a signal handler).
    pub fn probe_read(&self, addr: Addr) -> bool {
        self.pages
            .get(&page_of(addr))
            .map(|p| p.prot.allows_read())
            .unwrap_or(false)
    }

    /// Non-faulting probe: whether one byte at `addr` is writable.
    pub fn probe_write(&self, addr: Addr) -> bool {
        self.pages
            .get(&page_of(addr))
            .map(|p| p.prot.allows_write())
            .unwrap_or(false)
    }

    /// The protection of the page containing `addr`, if mapped.
    pub fn protection_at(&self, addr: Addr) -> Option<Protection> {
        self.pages.get(&page_of(addr)).map(|p| p.prot)
    }

    /// Bulk range probe: whether every byte of `[addr, addr+len)`
    /// permits the required access. Equivalent to probing
    /// [`AddressSpace::probe_read`]/[`AddressSpace::probe_write`] on
    /// each byte, but resolved with a *single* page-table range seek
    /// followed by a sequential walk over the resident pages — one
    /// lookup per contiguous run instead of one (or two) per page.
    ///
    /// Zero-length contract (pinned): a probe for zero bytes — or for
    /// no access at all (`!need_read && !need_write`) — asserts
    /// nothing about memory and is satisfied at *any* address: mapped,
    /// unmapped, or guard page alike. This is exactly what the
    /// byte-at-a-time reference loop decides, since it iterates zero
    /// times. A range that would wrap the 32-bit address space is not
    /// satisfiable (the wrapped portion would land on the never-mapped
    /// null page).
    ///
    /// Unlike [`find_nul`](AddressSpace::find_nul), this kernel never
    /// scans resident bytes — access rights are a per-page property, so
    /// the walk costs one page-table entry per page regardless of
    /// `len`.
    pub fn probe_range(&self, addr: Addr, len: u32, need_read: bool, need_write: bool) -> bool {
        if len == 0 || (!need_read && !need_write) {
            return true;
        }
        let Some(end) = addr.checked_add(len - 1) else {
            return false;
        };
        let first = page_of(addr);
        let last = page_of(end);
        let mut expect = first;
        for (&p, page) in self.pages.range(first..=last) {
            if p != expect {
                return false; // hole in the mapping
            }
            if (need_read && !page.prot.allows_read()) || (need_write && !page.prot.allows_write())
            {
                return false;
            }
            if p == last {
                return true;
            }
            expect = p + 1;
        }
        false // the mapping ends before `last`
    }

    /// Bulk NUL scan: the index of the first zero byte at
    /// `addr..=addr+max_index`, requiring every byte up to and
    /// including the terminator to be readable (and writable when
    /// `need_write`). Bytes past the terminator are never probed.
    ///
    /// Equivalent to the byte-at-a-time probe-then-read loop, but the
    /// page table is walked once per contiguous accessible run and the
    /// resident page bytes are scanned word-wise ([`find_nul_in`]).
    /// Returns `None` when an inaccessible byte precedes the
    /// terminator or no terminator lies within the index budget — a
    /// scan running off the top of the address space fails like the
    /// byte loop does, since the next byte would wrap to the null
    /// page.
    pub fn find_nul(&self, addr: Addr, max_index: u32, need_write: bool) -> Option<u32> {
        // Last byte the budget allows us to examine; clamping (rather
        // than failing) on overflow keeps byte-loop equivalence: the
        // loop scans up to 0xffff_ffff and then fails at the wrap.
        let budget_end = addr.saturating_add(max_index);
        let first = page_of(addr);
        let mut expect = first;
        for (&p, page) in self.pages.range(first..=page_of(budget_end)) {
            if p != expect {
                return None;
            }
            if !page.prot.allows_read() || (need_write && !page.prot.allows_write()) {
                return None;
            }
            let page_base = p * PAGE_SIZE;
            let start = addr.max(page_base);
            let end = budget_end.min(page_base + (PAGE_SIZE - 1));
            let lo = (start - page_base) as usize;
            let hi = (end - page_base) as usize;
            if let Some(i) = find_nul_in(&page.data[lo..=hi]) {
                return Some(start - addr + i as u32);
            }
            if end == budget_end {
                return None; // budget exhausted without a terminator
            }
            expect = p + 1;
        }
        None
    }

    /// Length of the maximal accessible byte run starting at `addr`,
    /// bounded by `max`: the largest `n <= max` such that every byte
    /// of `[addr, addr+n)` permits the required access. The discovery
    /// half of [`probe_range`](AddressSpace::probe_range): instead of
    /// a yes/no on a known length, it finds the length a clamped
    /// substitute may safely use. Page-table walk only — one entry per
    /// contiguous run, no byte scans.
    pub fn accessible_run(&self, addr: Addr, max: u32, need_read: bool, need_write: bool) -> u32 {
        if max == 0 {
            return 0;
        }
        if !need_read && !need_write {
            return max;
        }
        // A budget past the top of the address space clamps: the wrap
        // would land on the never-mapped null page anyway.
        let end = addr.saturating_add(max - 1);
        let first = page_of(addr);
        let mut expect = first;
        let mut last_ok: Option<Addr> = None;
        for (&p, page) in self.pages.range(first..=page_of(end)) {
            if p != expect {
                break; // hole in the mapping
            }
            if (need_read && !page.prot.allows_read()) || (need_write && !page.prot.allows_write())
            {
                break;
            }
            last_ok = Some((p * PAGE_SIZE + (PAGE_SIZE - 1)).min(end));
            expect = p + 1;
        }
        match last_ok {
            Some(e) => e - addr + 1,
            None => 0,
        }
    }

    /// Copy up to `len` bytes from `src` to `dst`, stopping early at
    /// the first unreadable source byte or unwritable destination byte
    /// — never faulting, never writing past either bound. Returns the
    /// count copied. The bounded-copy primitive repair mode uses to
    /// move a wild argument's accessible prefix into a safe substitute
    /// buffer.
    pub fn bounded_copy(&mut self, dst: Addr, src: Addr, len: u32) -> u32 {
        let n = self
            .accessible_run(src, len, true, false)
            .min(self.accessible_run(dst, len, false, true));
        for i in 0..n {
            let Ok(b) = self.read_u8(src + i) else {
                return i;
            };
            if self.write_u8(dst + i, b).is_err() {
                return i;
            }
        }
        n
    }

    /// Number of mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// The maximal run of contiguous pages around `addr` sharing its
    /// page's protection — or, for an unmapped `addr`, the maximal
    /// unmapped hole containing it. This is the page-table half of
    /// fault provenance: it tells a report *what kind of memory* a
    /// faulting access landed in and how far that region extends.
    pub fn page_run(&self, addr: Addr) -> PageRun {
        let p = page_of(addr);
        match self.pages.get(&p) {
            Some(page) => {
                let prot = page.prot;
                let mut first = p;
                for (&q, pg) in self.pages.range(..p).rev() {
                    if q + 1 == first && pg.prot == prot {
                        first = q;
                    } else {
                        break;
                    }
                }
                let mut last = p;
                for (&q, pg) in self.pages.range(p + 1..) {
                    if q == last + 1 && pg.prot == prot {
                        last = q;
                    } else {
                        break;
                    }
                }
                PageRun {
                    start: first * PAGE_SIZE,
                    pages: last - first + 1,
                    prot: Some(prot),
                }
            }
            None => {
                let first = self
                    .pages
                    .range(..p)
                    .next_back()
                    .map(|(&q, _)| q + 1)
                    .unwrap_or(0);
                let last = self
                    .pages
                    .range(p + 1..)
                    .next()
                    .map(|(&q, _)| q - 1)
                    .unwrap_or(page_of(Addr::MAX));
                PageRun {
                    start: first * PAGE_SIZE,
                    pages: last - first + 1,
                    prot: None,
                }
            }
        }
    }

    fn check(&self, addr: Addr, access: AccessKind) -> Result<(), SimFault> {
        let ok = match access {
            AccessKind::Read => self.probe_read(addr),
            AccessKind::Write => self.probe_write(addr),
        };
        if ok {
            Ok(())
        } else {
            Err(SimFault::Segv { addr, access })
        }
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Faults with [`SimFault::Segv`] if the byte is not readable.
    pub fn read_u8(&self, addr: Addr) -> Result<u8, SimFault> {
        self.check(addr, AccessKind::Read)?;
        let page = &self.pages[&page_of(addr)];
        Ok(page.data[(addr % PAGE_SIZE) as usize])
    }

    /// Write one byte. Writing a frame shared with a snapshot (or the
    /// zero frame) first faults in a private 4 KiB copy.
    ///
    /// # Errors
    ///
    /// Faults with [`SimFault::Segv`] if the byte is not writable.
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), SimFault> {
        self.check(addr, AccessKind::Write)?;
        let table_shared = Arc::strong_count(&self.pages) > 1;
        let frame_copied = {
            let pages = Arc::make_mut(&mut self.pages);
            let page = pages.get_mut(&page_of(addr)).unwrap();
            let shared = Arc::strong_count(&page.data) > 1;
            Arc::make_mut(&mut page.data)[(addr % PAGE_SIZE) as usize] = value;
            shared
        };
        if table_shared {
            self.cow.table_clones += 1;
        }
        if frame_copied {
            self.cow.pages_copied += 1;
        }
        Ok(())
    }

    /// Read `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults at the first inaccessible byte, reporting its exact address —
    /// partial progress is discarded, as with a real fault.
    pub fn read_bytes(&self, addr: Addr, len: u32) -> Result<Vec<u8>, SimFault> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = addr.checked_add(i).ok_or(SimFault::Segv {
                addr: u32::MAX,
                access: AccessKind::Read,
            })?;
            out.push(self.read_u8(a)?);
        }
        Ok(out)
    }

    /// Write `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults at the first non-writable byte. Bytes before the fault *are*
    /// written — exactly the partial-write behavior a real buffer overflow
    /// exhibits before the signal arrives.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), SimFault> {
        for (i, b) in bytes.iter().enumerate() {
            let a = addr.checked_add(i as u32).ok_or(SimFault::Segv {
                addr: u32::MAX,
                access: AccessKind::Write,
            })?;
            self.write_u8(a, *b)?;
        }
        Ok(())
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Faults if any of the four bytes is unreadable.
    pub fn read_u32(&self, addr: Addr) -> Result<u32, SimFault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Write a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Faults if any of the four bytes is unwritable.
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> Result<(), SimFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Read a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// Faults if any of the four bytes is unreadable.
    pub fn read_i32(&self, addr: Addr) -> Result<i32, SimFault> {
        Ok(self.read_u32(addr)? as i32)
    }

    /// Write a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// Faults if any of the four bytes is unwritable.
    pub fn write_i32(&mut self, addr: Addr, value: i32) -> Result<(), SimFault> {
        self.write_u32(addr, value as u32)
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Faults if either byte is unreadable.
    pub fn read_u16(&self, addr: Addr) -> Result<u16, SimFault> {
        let b = self.read_bytes(addr, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Write a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Faults if either byte is unwritable.
    pub fn write_u16(&mut self, addr: Addr, value: u16) -> Result<(), SimFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Read a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Faults if any of the eight bytes is unreadable.
    pub fn read_f64(&self, addr: Addr) -> Result<f64, SimFault> {
        let b = self.read_bytes(addr, 8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Write a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Faults if any of the eight bytes is unwritable.
    pub fn write_f64(&mut self, addr: Addr, value: f64) -> Result<(), SimFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }
}

/// Superword NUL search over resident bytes. 32-byte chunks are
/// examined as four 64-bit words with the classic zero-in-word trick
/// (`(w - 0x0101…) & !w & 0x8080…`); the OR of the four flag words
/// decides in a single branch whether the whole chunk is zero-free,
/// which lets the compiler keep the loads flowing without a
/// per-word branch. The 8-byte word loop handles the chunk tail and
/// the byte loop the final sub-word remainder, so every width agrees
/// with the byte-at-a-time reference by construction. Index of the
/// first zero byte, if any.
pub fn find_nul_in(haystack: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    #[inline(always)]
    fn zero_flags(chunk: &[u8]) -> u64 {
        let word = u64::from_le_bytes(chunk.try_into().unwrap());
        word.wrapping_sub(LO) & !word & HI
    }
    let mut wide = haystack.chunks_exact(32);
    let mut offset = 0;
    for chunk in &mut wide {
        let f0 = zero_flags(&chunk[0..8]);
        let f1 = zero_flags(&chunk[8..16]);
        let f2 = zero_flags(&chunk[16..24]);
        let f3 = zero_flags(&chunk[24..32]);
        if (f0 | f1 | f2 | f3) != 0 {
            // Borrow propagation can raise false flags, but only above
            // a true zero byte; in little-endian order the lowest flag
            // of the first flagged word is therefore the first zero.
            let (word_off, flags) = if f0 != 0 {
                (0, f0)
            } else if f1 != 0 {
                (8, f1)
            } else if f2 != 0 {
                (16, f2)
            } else {
                (24, f3)
            };
            return Some(offset + word_off + (flags.trailing_zeros() / 8) as usize);
        }
        offset += 32;
    }
    let mut chunks = wide.remainder().chunks_exact(8);
    for chunk in &mut chunks {
        let flags = zero_flags(chunk);
        if flags != 0 {
            return Some(offset + (flags.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == 0)
        .map(|i| offset + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_page_faults() {
        let m = AddressSpace::new();
        let err = m.read_u8(0).unwrap_err();
        assert_eq!(
            err,
            SimFault::Segv {
                addr: 0,
                access: AccessKind::Read
            }
        );
    }

    #[test]
    fn map_read_write_roundtrip() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4096, Protection::ReadWrite);
        m.write_u32(0x1000, 0xdeadbeef).unwrap();
        assert_eq!(m.read_u32(0x1000).unwrap(), 0xdeadbeef);
    }

    #[test]
    fn protection_enforced() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4096, Protection::ReadOnly);
        assert!(m.read_u8(0x1000).is_ok());
        let err = m.write_u8(0x1000, 1).unwrap_err();
        assert_eq!(err.segv_addr(), Some(0x1000));

        m.protect(0x1000, 4096, Protection::WriteOnly);
        assert!(m.write_u8(0x1000, 1).is_ok());
        assert!(m.read_u8(0x1000).is_err());
    }

    #[test]
    fn fault_reports_exact_address() {
        let mut m = AddressSpace::new();
        // One mapped page followed by an unmapped one: a read crossing the
        // boundary must fault exactly at the first unmapped byte. This is
        // the property the adaptive array generator depends on.
        m.map(0x2000, 4096, Protection::ReadWrite);
        let err = m.read_bytes(0x2ffe, 8).unwrap_err();
        assert_eq!(err.segv_addr(), Some(0x3000));
    }

    #[test]
    fn partial_writes_persist_before_fault() {
        let mut m = AddressSpace::new();
        m.map(0x2000, 4096, Protection::ReadWrite);
        let err = m.write_bytes(0x2ffe, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(err.segv_addr(), Some(0x3000));
        assert_eq!(m.read_bytes(0x2ffe, 2).unwrap(), vec![1, 2]);
    }

    #[test]
    fn unmap_revokes_access() {
        let mut m = AddressSpace::new();
        m.map(0x5000, 4096, Protection::ReadWrite);
        assert!(m.probe_read(0x5000));
        m.unmap(0x5000, 4096);
        assert!(!m.probe_read(0x5000));
        assert!(m.read_u8(0x5000).is_err());
    }

    #[test]
    fn guard_page_protection_none() {
        let mut m = AddressSpace::new();
        m.map(0x7000, 4096, Protection::None);
        assert!(m.is_mapped(0x7000));
        assert!(!m.probe_read(0x7000));
        assert!(!m.probe_write(0x7000));
    }

    #[test]
    fn multibyte_little_endian() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4096, Protection::ReadWrite);
        m.write_u32(0x1010, 0x11223344).unwrap();
        assert_eq!(m.read_u8(0x1010).unwrap(), 0x44);
        assert_eq!(m.read_u16(0x1010).unwrap(), 0x3344);
        m.write_f64(0x1020, 2.5).unwrap();
        assert_eq!(m.read_f64(0x1020).unwrap(), 2.5);
    }

    #[test]
    fn remap_zeroes_contents() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4096, Protection::ReadWrite);
        m.write_u8(0x1000, 0xff).unwrap();
        m.map(0x1000, 4096, Protection::ReadWrite);
        assert_eq!(m.read_u8(0x1000).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "null page")]
    fn mapping_null_page_panics() {
        let mut m = AddressSpace::new();
        m.map(0, 4096, Protection::ReadWrite);
    }

    #[test]
    fn accessible_run_and_bounded_copy_respect_bounds() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 2 * 4096, Protection::ReadWrite);
        m.map(0x3000, 4096, Protection::ReadOnly);
        // 0x4000 unmapped.
        assert_eq!(m.accessible_run(0x1000, 64, true, false), 64);
        assert_eq!(m.accessible_run(0x2ff0, 8192, true, false), 0x1010);
        assert_eq!(m.accessible_run(0x2ff0, 8192, true, true), 16);
        assert_eq!(m.accessible_run(0x3ff0, 8192, true, false), 16);
        assert_eq!(m.accessible_run(0x4000, 16, true, false), 0);
        assert_eq!(m.accessible_run(0x1000, 0, true, false), 0);
        assert_eq!(
            m.accessible_run(0x4000, 16, false, false),
            16,
            "a no-access run asserts nothing, like probe_range"
        );

        // The copy stops at the writable end of the destination...
        m.write_bytes(0x1000, b"abcdefgh").unwrap();
        assert_eq!(m.bounded_copy(0x2ffa, 0x1000, 8), 6);
        assert_eq!(m.read_bytes(0x2ffa, 6).unwrap(), b"abcdef");
        assert_eq!(m.read_u8(0x3000).unwrap(), 0, "never writes past the bound");
        // ...and at the readable end of the source.
        assert_eq!(m.bounded_copy(0x1100, 0x3ffc, 16), 4);
        assert_eq!(m.bounded_copy(0x1100, 0x4000, 8), 0);
    }

    #[test]
    fn probe_range_matches_per_byte_probes() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 2 * 4096, Protection::ReadWrite);
        m.map(0x3000, 4096, Protection::ReadOnly);
        // 0x4000 unmapped, then a guard page and another RW page.
        m.map(0x5000, 4096, Protection::None);
        m.map(0x6000, 4096, Protection::ReadWrite);

        // Within one mapping, across a permission boundary, across a
        // hole, and across a guard page.
        assert!(m.probe_range(0x1004, 8188, true, true)); // RW run to 0x3000
        assert!(m.probe_range(0x1004, 12284, true, false)); // RW+RO read to 0x4000
        assert!(!m.probe_range(0x1004, 12284, true, true)); // RO breaks write
        assert!(!m.probe_range(0x1004, 12285, true, false)); // into the hole
        assert!(!m.probe_range(0x3ffc, 8, true, false)); // runs into the hole
        assert!(!m.probe_range(0x5ffc, 8, true, false)); // starts on the guard
        assert!(!m.probe_range(0x4ffc, 8, false, true)); // unmapped start
                                                         // Zero length is trivially fine, even at an unmapped address.
        assert!(m.probe_range(0x4000, 0, true, true));
        // Wrapping ranges are unsatisfiable.
        assert!(!m.probe_range(0xffff_fff0, 32, true, false));
        // The pinned zero-length contract: satisfied everywhere the
        // byte loop would iterate zero times — a mapped RW page, a
        // read-only page even for writes, an unmapped hole, a guard
        // page, and the very top of the address space.
        assert!(m.probe_range(0x1004, 0, true, true)); // mapped
        assert!(m.probe_range(0x3000, 0, true, true)); // RO, write asked
        assert!(m.probe_range(0x4800, 0, true, false)); // unmapped
        assert!(m.probe_range(0x5000, 0, true, true)); // guard page
        assert!(m.probe_range(u32::MAX, 0, true, true)); // address top
        assert!(m.probe_range(0, 0, true, true)); // null page
                                                  // No-access probes are vacuous the same way, at any length.
        assert!(m.probe_range(0x4800, 123, false, false));
        assert!(m.probe_range(0x5000, 4096, false, false));
        // Single byte at the very top of a mapping.
        assert!(m.probe_range(0x2fff, 1, true, true));
        assert!(!m.probe_range(0x2fff, 2, false, true));
    }

    #[test]
    fn find_nul_scans_across_pages_and_respects_budget() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 2 * 4096, Protection::ReadWrite);
        for a in 0x1000..0x2010u32 {
            m.write_u8(a, b'x').unwrap();
        }
        m.write_u8(0x2010, 0).unwrap(); // NUL 0x1010 bytes in

        let len = 0x2010 - 0x1000;
        assert_eq!(m.find_nul(0x1000, len, false), Some(len)); // exactly at budget
        assert_eq!(m.find_nul(0x1000, len + 1, false), Some(len));
        assert_eq!(m.find_nul(0x1000, len - 1, false), None); // one short
        assert_eq!(m.find_nul(0x1004, len, true), Some(len - 4));

        // A read-only page fails the writable scan but not the read one.
        m.protect(0x2000, 4096, Protection::ReadOnly);
        assert_eq!(m.find_nul(0x1000, len, false), Some(len));
        assert_eq!(m.find_nul(0x1000, len, true), None);

        // Unmapped byte before the terminator.
        m.unmap(0x2000, 4096);
        assert_eq!(m.find_nul(0x1000, 2 * 4096, false), None);
        // NUL before the boundary is still found.
        m.write_u8(0x1fff, 0).unwrap();
        assert_eq!(m.find_nul(0x1000, 2 * 4096, false), Some(0xfff));
        // Unmapped start address.
        assert_eq!(m.find_nul(0x2000, 16, false), None);
        assert_eq!(m.find_nul(0, 16, false), None);
    }

    #[test]
    fn find_nul_at_the_address_space_top_fails_like_the_byte_loop() {
        let mut m = AddressSpace::new();
        let top = u32::MAX - (PAGE_SIZE - 1);
        m.map(top, PAGE_SIZE, Protection::ReadWrite);
        for a in top..=u32::MAX {
            m.write_u8(a, b'x').unwrap();
        }
        // No terminator before the wrap: None, even with a huge budget.
        assert_eq!(m.find_nul(u32::MAX - 8, u32::MAX, false), None);
        // A terminator below the top is found despite the overflowing
        // budget.
        m.write_u8(u32::MAX, 0).unwrap();
        assert_eq!(m.find_nul(u32::MAX - 8, u32::MAX, false), Some(8));
    }

    #[test]
    fn find_nul_in_word_scan_matches_position() {
        assert_eq!(find_nul_in(b""), None);
        assert_eq!(find_nul_in(b"abc"), None);
        assert_eq!(find_nul_in(b"\0"), Some(0));
        assert_eq!(find_nul_in(b"abc\0def"), Some(3));
        assert_eq!(find_nul_in(b"abcdefgh\0"), Some(8));
        assert_eq!(find_nul_in(b"abcdefghijk\0mno\0"), Some(11));
        // High-bit bytes must not read as zeros.
        assert_eq!(find_nul_in(&[0x80u8; 16]), None);
        assert_eq!(find_nul_in(&[0xff, 0xff, 0, 0xff]), Some(2));
        // Exhaustive position check across the 32-byte superword, the
        // 8-byte word tail, and the byte tail: every NUL position in
        // every haystack length around the chunk boundaries.
        for len in 0..=100 {
            for n in 0..len {
                let mut v = vec![0xa5u8; len];
                v[n] = 0;
                assert_eq!(find_nul_in(&v), Some(n), "len {len} position {n}");
            }
            assert_eq!(find_nul_in(&vec![0xa5u8; len]), None, "len {len}");
        }
        // The first of several NULs wins, whichever words they land in.
        for (a, b) in [(0, 31), (7, 8), (15, 16), (30, 31), (5, 70)] {
            let mut v = vec![0xa5u8; 96];
            v[b] = 0;
            v[a] = 0;
            assert_eq!(find_nul_in(&v), Some(a), "first of {a},{b}");
        }
    }

    #[test]
    fn page_run_merges_contiguous_same_protection_pages() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 3 * 4096, Protection::ReadWrite);
        m.map(0x4000, 4096, Protection::ReadOnly);
        m.map(0x6000, 4096, Protection::ReadWrite);

        // Middle of the RW run: the whole run, not just one page.
        let run = m.page_run(0x2abc);
        assert_eq!(run.start, 0x1000);
        assert_eq!(run.pages, 3);
        assert_eq!(run.prot, Some(Protection::ReadWrite));
        assert_eq!(run.last(), 0x3fff);
        assert!(run.contains(0x1000) && run.contains(0x3fff));
        assert!(!run.contains(0x4000));

        // A protection change breaks the run even without a hole.
        let ro = m.page_run(0x4123);
        assert_eq!(
            (ro.start, ro.pages, ro.prot),
            (0x4000, 1, Some(Protection::ReadOnly))
        );

        // The hole between 0x5000 and 0x6000 is a 1-page unmapped run.
        let hole = m.page_run(0x5800);
        assert_eq!((hole.start, hole.pages, hole.prot), (0x5000, 1, None));
        assert_eq!(hole.describe_prot(), "unmapped");

        // The hole below the first mapping starts at address 0.
        let low = m.page_run(0x0123);
        assert_eq!((low.start, low.prot), (0, None));
        assert_eq!(low.pages, 1);

        // The hole above the last mapping extends to the top of memory.
        let high = m.page_run(0xdead_0000);
        assert_eq!(high.start, 0x7000);
        assert_eq!(high.last(), u32::MAX);
        assert_eq!(high.prot, None);
    }

    #[test]
    fn page_run_display_names_protection_and_extent() {
        let mut m = AddressSpace::new();
        m.map(0x7000, 2 * 4096, Protection::None);
        let run = m.page_run(0x7004);
        assert_eq!(run.to_string(), "inaccessible run 0x00007000+2p");
    }

    #[test]
    fn snapshot_shares_frames_until_written() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4 * 4096, Protection::ReadWrite);
        m.write_u32(0x1000, 0xdeadbeef).unwrap();
        let base = m.cow_stats();

        let mut child = m.snapshot();
        let at_split = child.cow_stats().delta_since(&base);
        assert_eq!(at_split.snapshots, 1);
        assert_eq!(at_split.pages_shared, 4);
        assert_eq!(at_split.pages_copied, 0);

        // Child reads see parent data without any copying.
        assert_eq!(child.read_u32(0x1000).unwrap(), 0xdeadbeef);
        assert_eq!(child.cow_stats().delta_since(&base).pages_copied, 0);

        // First write to a shared frame faults in exactly one private
        // copy; further writes to the same page are free.
        child.write_u32(0x1000, 0xcafe).unwrap();
        child.write_u32(0x1100, 0x1234).unwrap();
        let after = child.cow_stats().delta_since(&base);
        assert_eq!(after.pages_copied, 1);
        assert_eq!(after.table_clones, 1);

        // Divergence is invisible to the parent, and vice versa.
        assert_eq!(m.read_u32(0x1000).unwrap(), 0xdeadbeef);
        m.write_u32(0x2000, 7).unwrap();
        assert!(child.read_u32(0x2000).unwrap() != 7 || child.read_u32(0x2000).unwrap() == 0);
        assert_eq!(child.read_u32(0x2000).unwrap(), 0);
    }

    #[test]
    fn protect_and_unmap_never_copy_frames() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4 * 4096, Protection::ReadWrite);
        let base = m.cow_stats();
        let mut child = m.snapshot();
        child.protect(0x1000, 4096, Protection::ReadOnly);
        child.unmap(0x2000, 4096);
        child.map(0x9000, 4096, Protection::ReadWrite);
        let delta = child.cow_stats().delta_since(&base);
        assert_eq!(delta.pages_copied, 0, "mapping ops must not copy data");
        assert!(delta.table_clones >= 1);
        // Parent mappings are untouched.
        assert!(m.probe_write(0x1000));
        assert!(m.probe_read(0x2000));
        assert!(!m.is_mapped(0x9000));
    }

    #[test]
    fn fresh_pages_share_the_zero_frame() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 16 * 4096, Protection::ReadWrite);
        // Mapping allocated no frames; the first write to each page
        // faults in a private copy of the shared zero frame.
        let base = m.cow_stats();
        m.write_u8(0x1000, 1).unwrap();
        m.write_u8(0x2000, 2).unwrap();
        m.write_u8(0x2001, 3).unwrap();
        assert_eq!(m.cow_stats().delta_since(&base).pages_copied, 2);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut m = AddressSpace::new();
        m.map(0x1000, 4096, Protection::ReadWrite);
        m.write_u8(0x1000, 0xaa).unwrap();
        let base = m.cow_stats();
        let mut copy = m.deep_clone();
        // Writes to the copy are private and cost no CoW page faults —
        // everything was already copied up front.
        copy.write_u8(0x1000, 0xbb).unwrap();
        assert_eq!(copy.cow_stats().delta_since(&base).pages_copied, 0);
        assert_eq!(m.read_u8(0x1000).unwrap(), 0xaa);
        assert_eq!(copy.read_u8(0x1000).unwrap(), 0xbb);
    }

    #[test]
    fn snapshot_of_snapshot_composes() {
        let mut gen0 = AddressSpace::new();
        gen0.map(0x1000, 4096, Protection::ReadWrite);
        gen0.write_u8(0x1000, 1).unwrap();
        let gen1 = gen0.snapshot();
        let mut gen2 = gen1.snapshot();
        gen2.write_u8(0x1000, 3).unwrap();
        assert_eq!(gen0.read_u8(0x1000).unwrap(), 1);
        assert_eq!(gen1.read_u8(0x1000).unwrap(), 1);
        assert_eq!(gen2.read_u8(0x1000).unwrap(), 3);
        let delta = gen2.cow_stats().delta_since(&gen0.cow_stats());
        assert_eq!(delta.snapshots, 2);
    }

    #[test]
    fn cow_stats_absorb_is_exhaustive() {
        let mut total = CowStats::default();
        let delta = CowStats {
            snapshots: 1,
            pages_shared: 2,
            pages_copied: 3,
            table_clones: 4,
        };
        total.absorb(&delta);
        total.absorb(&delta);
        assert_eq!(
            total,
            CowStats {
                snapshots: 2,
                pages_shared: 4,
                pages_copied: 6,
                table_clones: 8,
            }
        );
        assert_eq!(delta.delta_since(&delta), CowStats::default());
    }

    #[test]
    fn display_formats() {
        let f = SimFault::Segv {
            addr: 0x1234,
            access: AccessKind::Write,
        };
        assert!(f.to_string().contains("write"));
        assert!(SimFault::FuelExhausted.is_hang());
        assert!(SimFault::Abort {
            reason: "free(): invalid pointer".into()
        }
        .is_abort());
    }
}
