//! Adaptive fault injection (§3.3–§4).
//!
//! For every global function of the library, HEALERS generates a
//! specialized **fault injector**: a program that calls the function with
//! a sequence of test cases — each tagged with a fundamental type from
//! the extensible hierarchy — and from the outcomes computes
//!
//! * the **robust argument type** of every argument (§4.3),
//! * the **error return code** class and `errno` convention (§3.3),
//! * the **safe/unsafe attribute** (§3.4).
//!
//! Test-case generation is *adaptive*: when a call crashes, the injector
//! asks the generators whether the faulting address belongs to one of
//! their test values; the owning generator may adjust the value (most
//! importantly, the fixed-size array generator grows a guard-page-backed
//! array until the faults stop — discovering, e.g., that `asctime` needs
//! exactly 44 readable bytes). Every call runs against a cloned process
//! image, so a crashing call can never corrupt the injector (§4.1).
//!
//! # Examples
//!
//! ```
//! use healers_inject::FaultInjector;
//! use healers_libc::Libc;
//! use healers_typesys::TypeExpr;
//!
//! let libc = Libc::standard();
//! let report = FaultInjector::new(&libc, "asctime").unwrap().run();
//! assert_eq!(report.args[0].robust.robust, TypeExpr::RArrayNull(44));
//! assert!(!report.safe);
//! ```

pub mod case;
pub mod errcode;
pub mod generators;
pub mod injector;
pub mod mutator;
pub mod select_gen;
pub mod vector_campaign;

pub use case::{classify_child_result, CallRecord, TestCase};
pub use errcode::{ErrCodeClass, ErrCodeReport};
pub use generators::TestCaseGenerator;
pub use injector::{ArgReport, FaultInjector, InjectionReport};
pub use mutator::WindowMutator;
pub use select_gen::{benign_arg, benign_args, generator_for};
pub use vector_campaign::{run_vector_campaign, VectorReport};
