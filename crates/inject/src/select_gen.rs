//! Generator selection (§4.1: "the fault-injector generator uses the C
//! argument type to select at least one test case generator for each
//! argument … we also permit the addition of new test case generators
//! that contain specific test cases for certain types").
//!
//! Selection is driven by the parameter's C type, refined by
//! parameter-name heuristics for `const char *` (mode strings, paths)
//! and integer parameters (descriptors, baud rates).

use healers_ctypes::{CType, FunctionPrototype, Param};
use healers_libc::World;
use healers_simproc::SimValue;

use crate::generators::{
    ArrayGen, DirGen, FdGen, FileGen, IntGen, ModeGen, PathGen, SpeedGen, StringGen,
    TestCaseGenerator,
};

fn name_contains(param: &Param, needles: &[&str]) -> bool {
    match &param.name {
        Some(n) => {
            let lower = n.to_lowercase();
            needles.iter().any(|needle| lower.contains(needle))
        }
        None => false,
    }
}

/// Pick the test-case generator for one parameter of `function`.
pub fn generator_for(function: &str, index: usize, param: &Param) -> Box<dyn TestCaseGenerator> {
    let _ = (function, index);
    match &param.ty {
        CType::Pointer { pointee, is_const } => match pointee.as_ref() {
            CType::Named(n) if n == "FILE" => Box::new(FileGen::new()),
            CType::Named(n) if n == "DIR" => Box::new(DirGen::new()),
            CType::Primitive(healers_ctypes::Primitive::Char) if *is_const => {
                if name_contains(param, &["mode"]) {
                    Box::new(ModeGen::new())
                } else if name_contains(param, &["file", "path", "name", "old", "new", "dir"]) {
                    Box::new(PathGen::new())
                } else {
                    Box::new(StringGen::new())
                }
            }
            _ => Box::new(ArrayGen::new()),
        },
        ty if ty.is_arithmetic() => {
            if name_contains(param, &["fd", "fildes"]) {
                Box::new(FdGen::new())
            } else if name_contains(param, &["speed"]) {
                Box::new(SpeedGen::new())
            } else if name_contains(param, &["base"]) {
                Box::new(IntGen::with_benign(10))
            } else if name_contains(param, &["whence"]) {
                Box::new(IntGen::with_benign(0))
            } else if name_contains(param, &["size", "len", "nbyte", "nmemb"])
                || param.name.as_deref().map(|n| n.trim_start_matches('_')) == Some("n")
            {
                // Count parameters: a benign value of 1 would let the
                // callee return before touching its buffer arguments,
                // blinding the other campaigns; 64 exercises them.
                Box::new(IntGen::with_benign(64))
            } else {
                Box::new(IntGen::new())
            }
        }
        // Anything else (function pointers, unknown named types):
        // treat as generic memory.
        _ => Box::new(ArrayGen::new()),
    }
}

/// The injector's benign value for one parameter: whatever the
/// selected generator would pass in the campaign's baseline call,
/// materialized (allocated) in `world`. Deterministic for a given
/// world state — generators carry no randomness.
pub fn benign_arg(proto: &FunctionPrototype, index: usize, world: &mut World) -> SimValue {
    generator_for(&proto.name, index, &proto.params[index]).benign(world)
}

/// The injector's full benign argument vector for a prototype — the
/// exact baseline call an injection campaign would start from. Shared
/// with the sequence fuzzer so "a benign call to f" means the same
/// thing in both tools.
pub fn benign_args(proto: &FunctionPrototype, world: &mut World) -> Vec<SimValue> {
    (0..proto.params.len())
        .map(|i| benign_arg(proto, i, world))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use healers_libc::Libc;

    fn param_of(libc: &Libc, func: &str, i: usize) -> Param {
        libc.get(func).unwrap().proto.params[i].clone()
    }

    #[test]
    fn file_and_dir_pointers_get_specific_generators() {
        let libc = Libc::standard();
        assert_eq!(
            generator_for("fclose", 0, &param_of(&libc, "fclose", 0)).name(),
            "file-pointer"
        );
        assert_eq!(
            generator_for("closedir", 0, &param_of(&libc, "closedir", 0)).name(),
            "dir-pointer"
        );
    }

    #[test]
    fn const_char_heuristics() {
        let libc = Libc::standard();
        // fopen(filename, modes)
        assert_eq!(
            generator_for("fopen", 0, &param_of(&libc, "fopen", 0)).name(),
            "path-string"
        );
        assert_eq!(
            generator_for("fopen", 1, &param_of(&libc, "fopen", 1)).name(),
            "mode-string"
        );
        // strcpy's src is a plain string.
        assert_eq!(
            generator_for("strcpy", 1, &param_of(&libc, "strcpy", 1)).name(),
            "c-string"
        );
        // strcpy's dst is a writable buffer.
        assert_eq!(
            generator_for("strcpy", 0, &param_of(&libc, "strcpy", 0)).name(),
            "fixed-size-array"
        );
    }

    #[test]
    fn integer_heuristics() {
        let libc = Libc::standard();
        assert_eq!(
            generator_for("close", 0, &param_of(&libc, "close", 0)).name(),
            "file-descriptor"
        );
        assert_eq!(
            generator_for("cfsetispeed", 1, &param_of(&libc, "cfsetispeed", 1)).name(),
            "baud-speed"
        );
        assert_eq!(
            generator_for("strtol", 2, &param_of(&libc, "strtol", 2)).name(),
            "integer"
        );
        assert_eq!(
            generator_for("abs", 0, &param_of(&libc, "abs", 0)).name(),
            "integer"
        );
    }

    #[test]
    fn benign_args_make_a_successful_call() {
        let libc = Libc::standard();
        let mut world = healers_libc::World::new_guarded();
        for func in ["strcpy", "fread", "tcsetattr", "snprintf"] {
            let proto = libc.get(func).unwrap().proto.clone();
            let args = benign_args(&proto, &mut world);
            assert_eq!(args.len(), proto.params.len());
            let result = libc.call(&mut world, func, &args);
            assert!(result.is_ok(), "benign {func} faulted: {result:?}");
        }
    }

    #[test]
    fn struct_pointers_get_array_generator() {
        let libc = Libc::standard();
        assert_eq!(
            generator_for("asctime", 0, &param_of(&libc, "asctime", 0)).name(),
            "fixed-size-array"
        );
        assert_eq!(
            generator_for("tcsetattr", 2, &param_of(&libc, "tcsetattr", 2)).name(),
            "fixed-size-array"
        );
    }
}
