//! Canned racing-thread bodies for check-vs-call (TOCTOU) windows.
//!
//! A robustness wrapper validates its arguments *then* calls the
//! library; a concurrent thread can invalidate an argument between the
//! two. A [`WindowMutator`] is the body of that concurrent thread,
//! reduced to the one call that matters: revoke the resource the
//! victim's check just blessed. The executor (fuzz) and the TOCTOU
//! scenario runner (ballista) schedule these deterministically inside a
//! victim's window — there is no real concurrency anywhere, which is
//! what makes every race replayable from a seed.
//!
//! This module is deliberately wrapper-agnostic: mutators call the
//! library directly (a racing application thread is not obliged to go
//! through anyone's wrapper), so it lives here with the other
//! test-case machinery rather than next to the wrapper.

use healers_libc::{Libc, World};
use healers_simproc::{SimFault, SimValue};

/// One canned racing-thread body: the call a hostile (or merely
/// unlucky) sibling thread makes inside a victim's check-vs-call
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMutator {
    /// `free(target)` — the classic use-after-check: the victim's
    /// pointer check saw a live heap block.
    FreeArg,
    /// `realloc(target, n)` — shrink the block under the victim so a
    /// size that passed the region check now overruns.
    ShrinkArg(u32),
    /// `fclose(target)` — revoke a `FILE *` the stream check blessed.
    CloseStream,
    /// `closedir(target)` — revoke a `DIR *` the dir check blessed.
    CloseDir,
}

impl WindowMutator {
    /// Every mutator shape, in a fixed order (scenario tables iterate
    /// this, so the order is part of the deterministic surface).
    pub const ALL: [WindowMutator; 4] = [
        WindowMutator::FreeArg,
        WindowMutator::ShrinkArg(8),
        WindowMutator::CloseStream,
        WindowMutator::CloseDir,
    ];

    /// Stable lowercase label for reports and journal lines.
    pub fn label(&self) -> &'static str {
        match self {
            WindowMutator::FreeArg => "free",
            WindowMutator::ShrinkArg(_) => "realloc-shrink",
            WindowMutator::CloseStream => "fclose",
            WindowMutator::CloseDir => "closedir",
        }
    }

    /// The library function this mutator calls.
    pub fn function(&self) -> &'static str {
        match self {
            WindowMutator::FreeArg => "free",
            WindowMutator::ShrinkArg(_) => "realloc",
            WindowMutator::CloseStream => "fclose",
            WindowMutator::CloseDir => "closedir",
        }
    }

    /// The argument vector for [`function`](Self::function) against
    /// `target` — callers that route the mutation through an
    /// interposing wrapper (every thread of a preloaded process does)
    /// build the call themselves from this.
    pub fn args(&self, target: SimValue) -> Vec<SimValue> {
        match self {
            WindowMutator::ShrinkArg(n) => vec![target, SimValue::Int(i64::from(*n))],
            _ => vec![target],
        }
    }

    /// Run the mutation against `target` on the *current* thread (the
    /// caller is responsible for switching to the racing thread first),
    /// straight against the library.
    ///
    /// # Errors
    ///
    /// Propagates the library call's own fault — a mutator that crashes
    /// is itself a finding for whoever scheduled it.
    pub fn run(
        &self,
        libc: &Libc,
        world: &mut World,
        target: SimValue,
    ) -> Result<SimValue, SimFault> {
        libc.call(world, self.function(), &self.args(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_functions_are_stable() {
        for m in WindowMutator::ALL {
            assert!(!m.label().is_empty());
            let libc = Libc::standard();
            assert!(
                libc.get(m.function()).is_some(),
                "{} must be exported",
                m.function()
            );
        }
    }

    #[test]
    fn free_mutator_revokes_a_live_block() {
        let libc = Libc::standard();
        let mut w = World::new_guarded();
        let block = libc.call(&mut w, "malloc", &[SimValue::Int(16)]).unwrap();
        WindowMutator::FreeArg.run(&libc, &mut w, block).unwrap();
        // The freed block is gone: strlen over it faults.
        assert!(libc.call(&mut w, "strlen", &[block]).is_err());
    }

    #[test]
    fn shrink_mutator_moves_the_goalposts() {
        let libc = Libc::standard();
        let mut w = World::new_guarded();
        let block = libc.call(&mut w, "malloc", &[SimValue::Int(64)]).unwrap();
        let shrunk = WindowMutator::ShrinkArg(8)
            .run(&libc, &mut w, block)
            .unwrap();
        // Writing the original 64 bytes through the shrunk block faults.
        assert!(libc
            .call(
                &mut w,
                "memset",
                &[shrunk, SimValue::Int(7), SimValue::Int(64)]
            )
            .is_err());
    }
}
