//! The per-function fault injector (§4.1, §4.3) and its report.

use healers_ctypes::FunctionPrototype;
use healers_libc::{Libc, World};
use healers_simproc::{run_in_child, CowStats, FaultSite, SimValue, WorldSnapshot};
use healers_trace::recorder::flight;
use healers_typesys::{robust_type, Observation, RobustType, SelectionCriterion, TypeExpr};

use crate::case::{classify_child_result, CallRecord};
use crate::errcode::{classify_error_returns, ErrCodeReport};
use crate::generators::TestCaseGenerator;
use crate::select_gen::generator_for;

/// Maximum adaptive retries for a single test case (the paper retries
/// "a finite number of times").
pub const MAX_RETRIES_PER_CASE: usize = 8192;

/// Fuel budget per injected call — the hang-detection timeout.
pub const INJECTION_FUEL: u64 = 200_000;

/// Robust-type result for a single argument.
#[derive(Debug, Clone)]
pub struct ArgReport {
    /// Generator used for this argument.
    pub generator: &'static str,
    /// All observations gathered for this argument.
    pub observations: Vec<Observation>,
    /// Candidate universe the generator contributed.
    pub universe: Vec<TypeExpr>,
    /// The selected robust type.
    pub robust: RobustType,
}

/// Everything the injector learned about one function — the input to
/// function-declaration generation.
#[derive(Debug, Clone)]
pub struct InjectionReport {
    /// Function name.
    pub function: String,
    /// The function's prototype.
    pub proto: FunctionPrototype,
    /// Per-argument results.
    pub args: Vec<ArgReport>,
    /// Error-return-code classification (§3.3).
    pub errcode: ErrCodeReport,
    /// `false` iff at least one test case crashed, hung or aborted
    /// (§3.4: such functions are *unsafe* and need wrapping).
    pub safe: bool,
    /// Raw call records (diagnostics, Table 1 tooling).
    pub records: Vec<CallRecord>,
    /// Total sandboxed calls performed.
    pub calls: usize,
    /// Total adaptive adjustments performed.
    pub adaptive_retries: usize,
    /// Total fuel consumed across all sandboxed calls (hang-detection
    /// budget units; see [`INJECTION_FUEL`]).
    pub fuel_used: u64,
    /// Copy-on-write containment cost summed over all sandboxed calls:
    /// one snapshot per call, pages shared at each split, private pages
    /// the calls dirtied (equal to the pages discarded on rollback).
    pub cow: CowStats,
}

/// A fault injector specialized to one library function.
pub struct FaultInjector<'l> {
    libc: &'l Libc,
    name: String,
    proto: FunctionPrototype,
    criterion: SelectionCriterion,
    fuel: u64,
}

impl<'l> FaultInjector<'l> {
    /// Create the injector for `name`, or `None` if the library does not
    /// export it.
    pub fn new(libc: &'l Libc, name: &str) -> Option<Self> {
        let proto = libc.get(name)?.proto.clone();
        Some(FaultInjector {
            libc,
            name: name.to_string(),
            proto,
            criterion: SelectionCriterion::SuccessfulReturns,
            fuel: INJECTION_FUEL,
        })
    }

    /// Use a different robust-type selection criterion.
    pub fn with_criterion(mut self, criterion: SelectionCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Use a different hang-detection fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Run the full campaign and compute the report.
    pub fn run(&self) -> InjectionReport {
        let mut world = World::new_guarded();
        world.proc.set_fuel_budget(self.fuel);
        // The environment is part of the test surface: functions that
        // read the controlling terminal (gets) must find input there.
        world.kernel.type_input(0, b"healers stdin line\n");
        let func = self.libc.get(&self.name).expect("checked in new()");

        let mut gens: Vec<Box<dyn TestCaseGenerator>> = self
            .proto
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| generator_for(&self.name, i, p))
            .collect();
        let benign: Vec<SimValue> = gens.iter_mut().map(|g| g.benign(&mut world)).collect();

        let mut records: Vec<CallRecord> = Vec::new();
        let mut calls = 0usize;
        let mut adaptive_retries = 0usize;
        // Resolved once per campaign; each fault is then one relaxed add.
        let m_faults = healers_trace::metrics::global().counter("inject_faults_total");

        let mut fuel_used = 0u64;
        let mut cow = CowStats::default();
        let mut invoke = |world: &World, args: &[SimValue]| {
            calls += 1;
            let (result, child) = run_in_child(world, |w: &mut World| {
                w.proc.set_errno(0);
                w.proc.reset_fuel();
                func.invoke(w, args)
            });
            fuel_used += child.proc.fuel_used();
            let (outcome, returned, errno) = classify_child_result(&result, &child);
            let fault_addr = result.fault().and_then(|f| f.segv_addr());
            // Provenance must be resolved against the *child* image —
            // the faulting page run and heap block exist in the snapshot
            // the call mutated, not in the pristine parent.
            let provenance = result
                .fault()
                .and_then(|f| FaultSite::resolve(f, &child.proc));
            cow.absorb(&child.cow_stats().delta_since(&world.cow_stats()));
            (outcome, returned, errno, fault_addr, provenance)
        };

        // Baseline call with all-benign arguments (also the only call
        // for zero-argument functions).
        {
            let (outcome, returned, errno, _, provenance) = invoke(&world, &benign);
            if let Some(site) = &provenance {
                m_faults.inc();
                flight().record(
                    "fault-injected",
                    &self.name,
                    &format!("benign baseline — {site}"),
                );
            }
            records.push(CallRecord {
                arg_index: None,
                fundamental: TypeExpr::IntZero, // placeholder, unused for baseline
                outcome,
                returned,
                errno,
                label: "benign baseline".to_string(),
                provenance,
            });
        }

        // Per-argument campaigns with adaptive retry.
        for i in 0..gens.len() {
            let mut pending = gens[i].initial_cases(&mut world);
            let mut ran_followups = false;
            loop {
                for case in std::mem::take(&mut pending) {
                    let mut case = case;
                    let mut retries = 0usize;
                    loop {
                        let mut args = benign.clone();
                        args[i] = case.value;
                        let (outcome, returned, errno, fault_addr, provenance) =
                            invoke(&world, &args);
                        if outcome.is_failure() {
                            if let Some(addr) = fault_addr {
                                if retries < MAX_RETRIES_PER_CASE && gens[i].owns_fault(addr) {
                                    if let Some(adjusted) = gens[i].adjust(&mut world, &case, addr)
                                    {
                                        case = adjusted;
                                        retries += 1;
                                        adaptive_retries += 1;
                                        continue;
                                    }
                                }
                            }
                        }
                        gens[i].observe(&case, outcome);
                        // Only resolved faults enter the flight
                        // recorder — the benign majority of injected
                        // calls would otherwise drown the ring.
                        if let Some(site) = &provenance {
                            m_faults.inc();
                            flight().record(
                                "fault-injected",
                                &self.name,
                                &format!("arg {i} {} — {site}", case.label),
                            );
                        }
                        records.push(CallRecord {
                            arg_index: Some(i),
                            fundamental: case.fundamental,
                            outcome,
                            returned,
                            errno,
                            label: case.label.clone(),
                            provenance,
                        });
                        break;
                    }
                }
                if ran_followups {
                    break;
                }
                pending = gens[i].followup_cases(&mut world);
                ran_followups = true;
                if pending.is_empty() {
                    break;
                }
            }
        }

        // Robust types per argument.
        let args: Vec<ArgReport> = gens
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let observations: Vec<Observation> = records
                    .iter()
                    .filter(|r| r.arg_index == Some(i))
                    .map(|r| Observation::new(r.fundamental, r.outcome))
                    .collect();
                let universe = g.universe();
                let robust = robust_type(&universe, &observations, self.criterion);
                ArgReport {
                    generator: g.name(),
                    observations,
                    universe,
                    robust,
                }
            })
            .collect();

        let errcode = classify_error_returns(&self.proto.ret, &records);
        let safe = !records.iter().any(|r| r.outcome.is_failure());

        InjectionReport {
            function: self.name.clone(),
            proto: self.proto.clone(),
            args,
            errcode,
            safe,
            records,
            calls,
            adaptive_retries,
            fuel_used,
            cow,
        }
    }

    /// A canonical text rendering of everything the injection outcome
    /// depends on: the prototype, the selected generator and candidate
    /// universe per argument, the selection criterion, and the injector
    /// constants. Two functions with equal signatures produce equal
    /// declarations, which makes this the natural key for persistent
    /// declaration caches (the campaign orchestrator fingerprints it).
    pub fn signature(&self) -> String {
        use std::fmt::Write as _;
        let mut sig = String::new();
        let _ = writeln!(sig, "proto extern {};", self.proto);
        for (i, p) in self.proto.params.iter().enumerate() {
            let g = generator_for(&self.name, i, p);
            let universe: Vec<String> = g.universe().iter().map(|t| t.notation()).collect();
            let _ = writeln!(sig, "arg{i} {} [{}]", g.name(), universe.join(" "));
        }
        let _ = writeln!(
            sig,
            "criterion {:?} fuel {} retries {}",
            self.criterion, self.fuel, MAX_RETRIES_PER_CASE
        );
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errcode::ErrCodeClass;
    use healers_typesys::TypeExpr::*;

    fn report(name: &str) -> InjectionReport {
        let libc = Libc::standard();
        FaultInjector::new(&libc, name).unwrap().run()
    }

    #[test]
    fn asctime_reproduces_figure_2() {
        let r = report("asctime");
        // Robust argument type: R_ARRAY_NULL[44].
        assert_eq!(r.args[0].robust.robust, RArrayNull(44));
        assert!(r.args[0].robust.safe);
        // Error return code: NULL with errno EINVAL, consistently.
        assert_eq!(r.errcode.class, ErrCodeClass::Consistent);
        assert_eq!(r.errcode.error_value, Some(SimValue::NULL));
        assert_eq!(r.errcode.errno_value, healers_os::errno::EINVAL);
        // asctime is unsafe (it crashed for some inputs).
        assert!(!r.safe);
        // The adaptive generator did real work.
        assert!(r.adaptive_retries >= 44, "retries {}", r.adaptive_retries);
    }

    #[test]
    fn ctime_needs_four_readable_bytes() {
        let r = report("ctime");
        assert_eq!(r.args[0].robust.robust, RArray(4));
    }

    #[test]
    fn mktime_needs_read_write_access() {
        let r = report("mktime");
        assert_eq!(r.args[0].robust.robust, RwArray(44));
    }

    #[test]
    fn cfset_speed_asymmetry_is_discovered() {
        // §6: "while function cfsetispeed only needs write access to its
        // argument, function cfsetospeed needs both read and write
        // access."
        let ri = report("cfsetispeed");
        let ro = report("cfsetospeed");
        match ri.args[0].robust.robust {
            WArray(s) => assert!(s >= 56, "ispeed size {s}"),
            other => panic!("cfsetispeed robust type {other}"),
        }
        match ro.args[0].robust.robust {
            RwArray(s) => assert!(s >= 12, "ospeed size {s}"),
            other => panic!("cfsetospeed robust type {other}"),
        }
        // Speed argument: only valid baud constants avoid the error
        // return, but no crash ever — so the speed arg is unconstrained.
        assert_eq!(ri.args[1].robust.admitted_crashes, 0);
    }

    #[test]
    fn fopen_mode_string_findings() {
        // §6: "fopen and freopen crash when the mode string is invalid
        // but can cope with invalid file names."
        let r = report("fopen");
        // The overlong mode string crashed:
        assert!(r.records.iter().any(|rec| rec.arg_index == Some(1)
            && rec.fundamental == NtsRw(40)
            && rec.outcome.is_failure()));
        // Invalid file *names* (content) did not crash; invalid file
        // name *pointers* did.
        assert!(r.records.iter().any(|rec| rec.arg_index == Some(0)
            && rec.fundamental == NtsRw(12)
            && !rec.outcome.is_failure()));
        // The robust mode type bounds the string length.
        assert_eq!(r.args[1].robust.robust, NtsMax(7));
    }

    #[test]
    fn fflush_has_no_error_return_code() {
        // §6: fflush is "supposed to set errno" but the injector finds
        // no error return code.
        let r = report("fflush");
        assert_eq!(r.errcode.class, ErrCodeClass::NoErrorReturnCodeFound);
        assert!(!r.safe);
    }

    #[test]
    fn fdopen_and_freopen_are_inconsistent() {
        // §6/Table 1: exactly the two functions with inconsistent error
        // return codes.
        for name in ["fdopen", "freopen"] {
            let r = report(name);
            assert_eq!(r.errcode.class, ErrCodeClass::Inconsistent, "{name}");
        }
    }

    #[test]
    fn strlen_needs_a_string() {
        let r = report("strlen");
        assert_eq!(r.args[0].robust.robust, Nts);
        assert!(!r.safe);
    }

    #[test]
    fn closedir_selects_the_uncheckable_open_dir_type() {
        let r = report("closedir");
        assert_eq!(r.args[0].robust.robust, OpenDir);
        assert!(!r.safe);
    }

    #[test]
    fn fclose_requires_an_open_file() {
        let r = report("fclose");
        assert_eq!(r.args[0].robust.robust, OpenFile);
    }

    #[test]
    fn the_robust_scalar_functions_are_safe() {
        let libc = Libc::standard();
        for name in [
            "close", "dup", "dup2", "lseek", "isatty", "sleep", "umask", "abs", "labs",
        ] {
            let r = FaultInjector::new(&libc, name).unwrap().run();
            assert!(r.safe, "{name} should be safe");
        }
    }

    #[test]
    fn void_functions_classified_no_return_code() {
        let r = report("rewind");
        assert_eq!(r.errcode.class, ErrCodeClass::NoReturnCode);
    }

    #[test]
    fn stat_discovers_the_88_byte_out_buffer() {
        let r = report("stat");
        match r.args[1].robust.robust {
            WArray(s) | RwArray(s) => assert_eq!(s, 88),
            other => panic!("stat buf robust type {other}"),
        }
    }

    #[test]
    fn crashing_records_carry_fault_provenance() {
        let r = report("strcpy");
        // Every segfaulting record resolved a fault site; addressless
        // failures (hangs, aborts) and returns carry none.
        let crashes: Vec<_> = r
            .records
            .iter()
            .filter(|rec| rec.outcome == healers_typesys::Outcome::Crash)
            .collect();
        assert!(!crashes.is_empty());
        assert!(crashes.iter().any(|rec| rec.provenance.is_some()));
        assert!(r
            .records
            .iter()
            .filter(|rec| rec.outcome.returned())
            .all(|rec| rec.provenance.is_none()));
        // At least one fault is attributed to a concrete heap block —
        // a protection fault inside a test array or a guard-page
        // overrun past one.
        assert!(
            r.records
                .iter()
                .filter_map(|rec| rec.provenance.as_ref())
                .any(|site| site.block.is_some()),
            "no fault attributed to a heap block"
        );
    }

    #[test]
    fn unknown_function_yields_none() {
        let libc = Libc::standard();
        assert!(FaultInjector::new(&libc, "no_such").is_none());
    }

    #[test]
    fn zero_argument_functions_run_one_call() {
        let r = report("getpid");
        assert!(r.safe);
        assert_eq!(r.calls, 1);
        assert!(r.args.is_empty());
    }

    #[test]
    fn every_injected_call_is_contained_by_one_snapshot() {
        let r = report("asctime");
        assert_eq!(r.cow.snapshots, r.calls as u64);
        assert!(r.cow.pages_shared > 0);
        assert!(
            r.cow.pages_copied > 0,
            "asctime writes its static buffer, so pages must fault in"
        );
    }
}
